"""Unit tests for counted resources and FIFO stores."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        log = []

        def proc(name):
            yield resource.acquire()
            log.append((sim.now, name))
            yield sim.timeout(1.0)
            resource.release()

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert log == [(0.0, "a"), (0.0, "b")]

    def test_fifo_queueing_over_capacity(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        log = []

        def proc(name):
            yield resource.acquire()
            log.append((sim.now, name))
            yield sim.timeout(2.0)
            resource.release()

        for name in ("a", "b", "c"):
            sim.spawn(proc(name))
        sim.run()
        assert log == [(0.0, "a"), (2.0, "b"), (4.0, "c")]

    def test_release_on_idle_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_use_helper_acquires_and_releases(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def proc():
            yield sim.spawn(resource.use(3.0))

        sim.spawn(proc())
        sim.run()
        assert sim.now == 3.0
        assert resource.in_use == 0

    def test_utilization_full_single_user(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def proc():
            yield resource.acquire()
            yield sim.timeout(10.0)
            resource.release()

        sim.spawn(proc())
        sim.run()
        assert resource.utilization() == pytest.approx(1.0)

    def test_queue_length_counts_waiters(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def holder():
            yield resource.acquire()
            yield sim.timeout(5.0)
            resource.release()

        def waiter():
            yield resource.acquire()
            resource.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run(until=1.0)
        assert resource.queue_length == 2
        sim.run()
        assert resource.queue_length == 0

    def test_total_wait_time_accumulates(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def proc():
            yield resource.acquire()
            yield sim.timeout(4.0)
            resource.release()

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert resource.total_wait_time == pytest.approx(4.0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        log = []

        def getter():
            item = yield store.get()
            log.append(item)

        sim.spawn(getter())
        sim.run()
        assert log == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        log = []

        def getter():
            item = yield store.get()
            log.append((sim.now, item))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert log == [(3.0, "late")]

    def test_fifo_order_of_items(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        log = []

        def getter():
            for _ in range(5):
                item = yield store.get()
                log.append(item)

        sim.spawn(getter())
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_multiple_getters_served_fifo(self):
        sim = Simulator()
        store = Store(sim)
        log = []

        def getter(name):
            item = yield store.get()
            log.append((name, item))

        sim.spawn(getter("first"))
        sim.spawn(getter("second"))
        sim.run()
        store.put(1)
        store.put(2)
        sim.run()
        assert log == [("first", 1), ("second", 2)]

    def test_len_counts_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2
