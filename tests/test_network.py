"""Tests for the flow-level network fabric (max-min fair sharing)."""

import pytest

from repro.cluster import Fabric, analytic_transfer_time
from repro.sim import Simulator


def make_fabric(sim, nodes=4, gbps=10.0, latency=1e-4):
    bytes_per_sec = gbps * 1e9 / 8.0
    return Fabric(
        sim,
        egress_capacity={i: bytes_per_sec for i in range(nodes)},
        latency_s=latency,
    )


def run_transfer(sim, fabric, src, dst, size):
    """Helper: start a transfer, run to completion, return finish time."""
    done = {}

    def proc():
        yield fabric.transfer(src, dst, size)
        done["t"] = sim.now

    sim.spawn(proc())
    sim.run()
    return done["t"]


class TestSingleTransfer:
    def test_serialisation_plus_latency(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=1e-3)
        size = 1.25e9  # exactly 1 second at 10 Gbps
        finish = run_transfer(sim, fabric, 0, 1, size)
        assert finish == pytest.approx(1.0 + 1e-3, rel=1e-6)

    def test_zero_bytes_costs_latency_only(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=5e-4)
        finish = run_transfer(sim, fabric, 0, 1, 0.0)
        assert finish == pytest.approx(5e-4)

    def test_loopback_costs_latency_only(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=5e-4)
        finish = run_transfer(sim, fabric, 2, 2, 1e12)
        assert finish == pytest.approx(5e-4)

    def test_unknown_nodes_rejected(self):
        sim = Simulator()
        fabric = make_fabric(sim, nodes=2)
        with pytest.raises(KeyError):
            fabric.transfer(0, 99, 100.0)
        with pytest.raises(KeyError):
            fabric.transfer(99, 0, 100.0)

    def test_negative_size_rejected(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        with pytest.raises(ValueError):
            fabric.transfer(0, 1, -1.0)


class TestContention:
    def test_two_flows_same_egress_halve(self):
        """Two equal flows out of one NIC take twice as long."""
        sim = Simulator()
        fabric = make_fabric(sim, latency=0.0)
        size = 1.25e9  # 1 second alone
        times = {}

        def proc(name, dst):
            yield fabric.transfer(0, dst, size)
            times[name] = sim.now

        sim.spawn(proc("a", 1))
        sim.spawn(proc("b", 2))
        sim.run()
        assert times["a"] == pytest.approx(2.0, rel=1e-6)
        assert times["b"] == pytest.approx(2.0, rel=1e-6)

    def test_two_flows_same_ingress_halve(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=0.0)
        size = 1.25e9
        times = {}

        def proc(name, src):
            yield fabric.transfer(src, 3, size)
            times[name] = sim.now

        sim.spawn(proc("a", 0))
        sim.spawn(proc("b", 1))
        sim.run()
        assert times["a"] == pytest.approx(2.0, rel=1e-6)

    def test_disjoint_flows_do_not_interfere(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=0.0)
        size = 1.25e9
        times = {}

        def proc(name, src, dst):
            yield fabric.transfer(src, dst, size)
            times[name] = sim.now

        sim.spawn(proc("a", 0, 1))
        sim.spawn(proc("b", 2, 3))
        sim.run()
        assert times["a"] == pytest.approx(1.0, rel=1e-6)
        assert times["b"] == pytest.approx(1.0, rel=1e-6)

    def test_late_arrival_shares_fairly(self):
        """Flow B arriving at t=1 shares the NIC; A finishes later than alone."""
        sim = Simulator()
        fabric = make_fabric(sim, latency=0.0)
        size = 2.5e9  # 2 seconds alone
        times = {}

        def flow_a():
            yield fabric.transfer(0, 1, size)
            times["a"] = sim.now

        def flow_b():
            yield sim.timeout(1.0)
            yield fabric.transfer(0, 2, size)
            times["b"] = sim.now

        sim.spawn(flow_a())
        sim.spawn(flow_b())
        sim.run()
        # A: 1s alone (half done) + 2s sharing = finishes at 3.0.
        assert times["a"] == pytest.approx(3.0, rel=1e-5)
        # B: shares for 2s (half done), then 1s alone: finishes at 4.0.
        assert times["b"] == pytest.approx(4.0, rel=1e-5)

    def test_bytes_conserved(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=0.0)
        total = 0.0
        for i, size in enumerate((1e6, 2e6, 3e6)):
            total += size
            sim.spawn(self._one(sim, fabric, i % 3, (i + 1) % 3, size))
        sim.run()
        assert fabric.total_bytes_delivered == pytest.approx(total, rel=1e-6)
        assert fabric.active_transfers == 0

    @staticmethod
    def _one(sim, fabric, src, dst, size):
        yield fabric.transfer(src, dst, size)


class TestAnalyticTransferTime:
    def test_matches_event_fabric_single_flow(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency=1e-3)
        size = 5e8
        event_time = run_transfer(sim, fabric, 0, 1, size)
        analytic = analytic_transfer_time(size, 10e9 / 8, 1e-3, sharers=1)
        assert event_time == pytest.approx(analytic, rel=1e-6)

    def test_sharers_scale_linearly(self):
        t1 = analytic_transfer_time(1e9, 1e9, 0.0, sharers=1)
        t4 = analytic_transfer_time(1e9, 1e9, 0.0, sharers=4)
        assert t4 == pytest.approx(4 * t1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analytic_transfer_time(1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            analytic_transfer_time(1.0, 1.0, 0.0, sharers=0)
