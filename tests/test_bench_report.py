"""Tests for the benchmark report/gate script (``scripts/bench_report.py``)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "bench_report.py"
_spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
bench_report = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_report", bench_report)
_spec.loader.exec_module(bench_report)


@pytest.fixture
def results():
    return {
        "schema": "bench-p3/v3",
        "quick": False,
        "propose": {"n=64": {"incremental_ms": 4.0, "speedup": 3.0}},
        "large": {
            "n=1024": {"exact_ms": 900.0, "sparse_ms": 30.0, "speedup": 30.0},
            "n=4096": {"exact_ms": 4000.0, "sparse_ms": 40.0, "speedup": 100.0},
        },
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestRender:
    def test_large_section_renders_after_propose(self, results):
        text = bench_report.render(results)
        assert "## large" in text
        assert "n=4096" in text
        assert text.index("## propose") < text.index("## large")

    def test_service_section_renders_in_preferred_order(self, results):
        results["service"] = {
            "seed=0": {"warm_vs_cold": 4.05, "cold_sessions_per_hour": 2.27},
            "sessions_per_hour": {"warm_vs_cold": 2.93},
        }
        assert "service" in bench_report.PREFERRED_SECTION_ORDER
        text = bench_report.render(results)
        assert "## service" in text
        assert text.index("## large") < text.index("## service")

    def test_sweep_section_renders_last_in_preferred_order(self, results):
        results["drift"] = {"seed=0": {"recovery_speedup": 10.96}}
        results["sweep"] = {
            "optimum": {"scalar_ms": 331.6, "batch_ms": 47.8, "speedup": 6.93},
            "demo:resnet:random": {"median": 0.48, "iqr": 0.06},
        }
        assert "sweep" in bench_report.PREFERRED_SECTION_ORDER
        text = bench_report.render(results)
        assert "## sweep" in text
        assert text.index("## drift") < text.index("## sweep")
        assert "6.93" in text


class TestCheck:
    def test_ratio_gate_passes_and_fails(self, tmp_path, results, capsys):
        baseline = _write(tmp_path, "base.json", results)
        worse = json.loads(json.dumps(results))
        worse["large"]["n=1024"]["speedup"] = 10.0
        current = _write(tmp_path, "cur.json", worse)
        argv = [
            "check", "--baseline", baseline, "--current", current,
            "--metric", "large/n=1024/speedup",
        ]
        assert bench_report.main(argv + ["--min-ratio", "0.25"]) == 0
        assert bench_report.main(argv + ["--min-ratio", "0.5"]) == 1

    def test_value_gate_needs_no_baseline(self, tmp_path, results):
        current = _write(tmp_path, "cur.json", results)
        argv = ["check", "--current", current, "--metric", "large/n=4096/speedup"]
        assert bench_report.main(argv + ["--min-value", "5.0"]) == 0
        assert bench_report.main(argv + ["--min-value", "500.0"]) == 1
        assert (
            bench_report.main(
                ["check", "--current", current,
                 "--metric", "large/n=1024/sparse_ms", "--max-value", "100.0"]
            )
            == 0
        )

    def test_exactly_one_bound_required(self, tmp_path, results):
        current = _write(tmp_path, "cur.json", results)
        argv = ["check", "--current", current, "--metric", "large/n=4096/speedup"]
        assert bench_report.main(argv) == 2
        assert bench_report.main(argv + ["--min-value", "1", "--max-value", "2"]) == 2

    def test_ratio_without_baseline_is_usage_error(self, tmp_path, results):
        current = _write(tmp_path, "cur.json", results)
        assert (
            bench_report.main(
                ["check", "--current", current,
                 "--metric", "large/n=4096/speedup", "--min-ratio", "0.5"]
            )
            == 2
        )

    def test_missing_section_fails_with_named_metric(self, tmp_path, results, capsys):
        stale = {k: v for k, v in results.items() if k != "large"}
        baseline = _write(tmp_path, "base.json", stale)
        current = _write(tmp_path, "cur.json", stale)
        code = bench_report.main(
            ["check", "--baseline", baseline, "--current", current,
             "--metric", "large/n=1024/speedup", "--min-ratio", "0.5"]
        )
        captured = capsys.readouterr().out
        assert code == 2
        assert "large/n=1024/speedup" in captured
        assert "regenerate" in captured
        assert "Traceback" not in captured

    def test_missing_metric_names_current_file(self, tmp_path, results, capsys):
        stale = {k: v for k, v in results.items() if k != "large"}
        current = _write(tmp_path, "cur.json", stale)
        code = bench_report.main(
            ["check", "--current", current,
             "--metric", "large/n=1024/speedup", "--min-value", "1.0"]
        )
        captured = capsys.readouterr().out
        assert code == 2
        assert f"current file {current!r}" in captured
        assert "baseline file" not in captured

    def test_missing_metric_names_stale_baseline(self, tmp_path, results, capsys):
        stale = {k: v for k, v in results.items() if k != "large"}
        baseline = _write(tmp_path, "base.json", stale)
        current = _write(tmp_path, "cur.json", results)
        code = bench_report.main(
            ["check", "--baseline", baseline, "--current", current,
             "--metric", "large/n=1024/speedup", "--min-ratio", "0.5"]
        )
        captured = capsys.readouterr().out
        assert code == 2
        assert f"baseline file {baseline!r}" in captured
        assert "committed baseline" in captured
        assert "current file" not in captured
