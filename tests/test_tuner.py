"""Tests for MLConfigTuner: the BO tuner with early termination."""

import pytest

from repro.baselines import RandomSearch, default_strategy
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import MLConfigTuner, TuningBudget
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload

NODES = 8
WORKLOAD = get_workload("resnet50-imagenet")


def make_env(seed=0, **kwargs):
    return TrainingEnvironment(WORKLOAD, homogeneous(NODES), seed=seed, **kwargs)


def space():
    return ml_config_space(NODES)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MLConfigTuner(short_probe_fraction=0.0)
        with pytest.raises(ValueError):
            MLConfigTuner(short_probe_fraction=1.0)
        with pytest.raises(ValueError):
            MLConfigTuner(rejection_margin=-0.1)

    def test_name_reflects_acquisition(self):
        assert "eipc" in MLConfigTuner().name
        assert MLConfigTuner(name="custom").name == "custom"


class TestTuningQuality:
    def test_beats_default_config_substantially(self):
        tuned = MLConfigTuner(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=20), seed=0
        )
        default = default_strategy().run(
            make_env(), space(), TuningBudget(max_trials=1), seed=0
        )
        assert tuned.best_objective > 1.5 * default.best_objective

    def test_at_least_matches_random_search(self):
        tuned = MLConfigTuner(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=20), seed=0
        )
        random = RandomSearch().run(
            make_env(), space(), TuningBudget(max_trials=20), seed=0
        )
        assert tuned.best_objective >= 0.95 * random.best_objective

    def test_respects_budget(self):
        result = MLConfigTuner(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=9), seed=0
        )
        assert result.num_trials == 9


class TestEarlyTermination:
    def test_counter_increments(self):
        tuner = MLConfigTuner(early_termination=True, seed=0)
        tuner.run(make_env(), space(), TuningBudget(max_trials=25), seed=0)
        assert tuner.probes_terminated_early > 0

    def test_disabled_means_no_short_probes(self):
        tuner = MLConfigTuner(early_termination=False, seed=0)
        env = make_env()
        result = tuner.run(env, space(), TuningBudget(max_trials=15), seed=0)
        assert tuner.probes_terminated_early == 0
        # One env.measure per trial exactly.
        assert env.trials_run == result.num_trials

    def test_rejected_probe_costs_less_than_full_probe(self):
        """Unit-level cost property: a gated-out probe is charged only the
        short prefix.  (End-to-end totals are not comparable across ET
        on/off because the search trajectories diverge.)"""
        from repro.configspace import from_training_config
        from repro.mlsim import TrainingConfig

        bad = from_training_config(
            TrainingConfig(num_workers=2, num_ps=1, batch_per_worker=4)
        )
        # Reference: what the bad config costs to probe fully.
        full_cost = make_env(noise_cv=0.0).measure(
            TrainingConfig.from_dict(bad)
        ).probe_cost_s

        tuner = MLConfigTuner(early_termination=True, seed=0)
        tuner._incumbent = 1e9  # everything is dominated: always reject
        env = make_env(noise_cv=0.0)
        gated = tuner.measure(env, bad)
        assert tuner.probes_terminated_early == 1
        # Compare the measurement parts: both probes pay the same fixed
        # job-startup overhead, the saving is in the iterations run.
        from repro.mlsim import STARTUP_OVERHEAD_S

        assert (gated.probe_cost_s - STARTUP_OVERHEAD_S) < 0.5 * (
            full_cost - STARTUP_OVERHEAD_S
        )

    def test_promoted_probe_charged_one_startup(self):
        """A promoted probe costs about one full probe, not two."""
        from repro.configspace import from_training_config
        from repro.mlsim import TrainingConfig

        good = from_training_config(
            TrainingConfig(num_workers=6, num_ps=2, batch_per_worker=32)
        )
        full_cost = make_env(noise_cv=0.0).measure(
            TrainingConfig.from_dict(good)
        ).probe_cost_s

        tuner = MLConfigTuner(early_termination=True, seed=0)
        tuner._incumbent = 1e-9  # everything beats it: always promote
        env = make_env(noise_cv=0.0)
        promoted = tuner.measure(env, good)
        assert tuner.probes_terminated_early == 0
        assert promoted.probe_cost_s == pytest.approx(full_cost, rel=0.05)

    def test_quality_not_destroyed(self):
        """ET still finds a configuration far better than the default.

        (A head-to-head against no-ET on one seed is dominated by search
        trajectory variance; ablation A2 measures that trade-off over
        repeats.)"""
        with_et = MLConfigTuner(early_termination=True, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=25), seed=0
        )
        default = default_strategy().run(
            make_env(), space(), TuningBudget(max_trials=1), seed=0
        )
        assert with_et.best_objective > 1.5 * default.best_objective

    def test_rejected_probes_recorded_with_short_cost(self):
        tuner = MLConfigTuner(early_termination=True, seed=0)
        env = make_env()
        result = tuner.run(env, space(), TuningBudget(max_trials=25), seed=0)
        if tuner.probes_terminated_early == 0:
            pytest.skip("no probes terminated in this run")
        costs = sorted(
            t.measurement.probe_cost_s for t in result.history.successful()
        )
        # Short probes cost materially less than full probes.
        assert costs[0] < 0.6 * costs[-1]

    def test_env_accounting_matches_history(self):
        """env.total_probe_cost_s must equal the history's total cost."""
        tuner = MLConfigTuner(early_termination=True, seed=0)
        env = make_env()
        result = tuner.run(env, space(), TuningBudget(max_trials=20), seed=0)
        assert env.total_probe_cost_s == pytest.approx(result.total_cost_s)


class TestAcquisitionVariants:
    @pytest.mark.parametrize("acquisition", ["ei", "pi", "ucb", "eipc"])
    def test_all_acquisitions_run(self, acquisition):
        result = MLConfigTuner(acquisition=acquisition, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=12), seed=0
        )
        assert result.num_trials == 12
        assert result.best_objective > 0
