"""Smoke tests for the cheap experiment functions and table rendering.

The heavy sweeps (T3, F2-F5, A1-A3) are exercised by the benchmark suite;
here we verify the light experiments produce well-formed tables fast.
"""

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentTable,
    clear_experiment_cache,
    exp_t1_config_space,
    exp_t2_workloads,
)


class TestLightExperiments:
    def test_t1_table_structure(self):
        table = exp_t1_config_space(nodes=8)
        assert table.exp_id == "T1"
        rendered = table.render()
        assert "num_workers" in rendered
        assert "TOTAL" in rendered
        # One row per knob + total.
        assert len(table.rows) == 10

    def test_t1_scales_with_nodes(self):
        small = exp_t1_config_space(nodes=4)
        large = exp_t1_config_space(nodes=32)
        def total(table):
            return table.rows[-1][-1]
        assert total(large) > total(small)

    def test_t2_covers_suite(self):
        from repro.workloads import SUITE

        table = exp_t2_workloads()
        assert len(table.rows) == len(SUITE)
        names = {row[0] for row in table.rows}
        assert names == set(SUITE)

    def test_registry_contains_all_ids(self):
        expected = {
            "T1", "T2", "T3",
            "F1", "F2", "F3", "F4", "F5", "F6",
            "P1", "P2", "P4",
            "A1", "A2", "A3",
            "E1", "E2", "V1",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_render_includes_notes(self):
        table = ExperimentTable(
            exp_id="X0",
            title="demo",
            headers=["a"],
            rows=[[1]],
            notes="remember this",
        )
        assert "remember this" in table.render()
        assert "[X0]" in table.render()

    def test_cache_clears(self):
        clear_experiment_cache()  # must not raise
