"""Tests for the Bayesian-optimisation proposal engine."""

import numpy as np
import pytest

from repro.configspace import ConfigSpace, FloatParameter, IntParameter
from repro.core import TrialHistory
from repro.core.bo import BayesianProposer
from repro.mlsim import Measurement, TrainingConfig


def toy_space():
    return ConfigSpace([FloatParameter("x", 0.0, 1.0), FloatParameter("y", 0.0, 1.0)])


def toy_objective(config):
    """Smooth unimodal surface with optimum at (0.7, 0.3)."""
    return -((config["x"] - 0.7) ** 2) - (config["y"] - 0.3) ** 2


def record(history, config, objective, ok=True, cost=10.0):
    measurement = Measurement(
        config=TrainingConfig(),
        ok=ok,
        fidelity="analytic",
        objective=objective if ok else None,
        probe_cost_s=cost,
    )
    history.record(config, measurement)


class TestInitialDesign:
    def test_first_proposals_come_from_design(self):
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=5, seed=0)
        rng = np.random.default_rng(0)
        history = TrialHistory()
        points = []
        for _ in range(5):
            config = proposer.propose(history, rng)
            points.append(config)
            record(history, config, toy_objective(config))
        # Latin hypercube: x values stratified across [0, 1].
        xs = sorted(p["x"] for p in points)
        assert xs[0] < 0.3 and xs[-1] > 0.7

    def test_design_is_deterministic_per_seed(self):
        space = toy_space()
        a = BayesianProposer(space, n_initial=4, seed=9)
        b = BayesianProposer(space, n_initial=4, seed=9)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        assert a.propose(TrialHistory(), rng1) == b.propose(TrialHistory(), rng2)


class TestModelBasedProposals:
    def test_concentrates_near_optimum(self):
        """After enough observations, proposals cluster near the optimum."""
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=6, n_candidates=256, seed=1)
        rng = np.random.default_rng(1)
        history = TrialHistory()
        for _ in range(18):
            config = proposer.propose(history, rng)
            record(history, config, toy_objective(config))
        late = history.trials[-4:]
        distances = [
            ((t.config["x"] - 0.7) ** 2 + (t.config["y"] - 0.3) ** 2) ** 0.5
            for t in late
        ]
        assert min(distances) < 0.2

    def test_beats_random_search_on_toy_surface(self):
        space = toy_space()
        rng = np.random.default_rng(2)
        proposer = BayesianProposer(space, n_initial=5, n_candidates=256, seed=2)
        bo_history = TrialHistory()
        for _ in range(15):
            config = proposer.propose(bo_history, rng)
            record(bo_history, config, toy_objective(config))

        random_history = TrialHistory()
        random_rng = np.random.default_rng(2)
        for _ in range(15):
            config = space.sample(random_rng)
            record(random_history, config, toy_objective(config))

        assert bo_history.best_objective() >= random_history.best_objective()

    def test_failed_trials_are_avoided(self):
        """A failing half-space should be proposed into less and less."""
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=6, n_candidates=256, seed=3)
        rng = np.random.default_rng(3)
        history = TrialHistory()
        for _ in range(20):
            config = proposer.propose(history, rng)
            ok = config["x"] < 0.5  # right half crashes
            record(history, config, toy_objective(config) if ok else None, ok=ok)
        late_failures = sum(1 for t in history.trials[-6:] if not t.ok)
        assert late_failures <= 3

    def test_proposals_respect_constraints(self):
        space = ConfigSpace(
            [IntParameter("a", 1, 10), IntParameter("b", 1, 10)],
            constraints={"sum": lambda c: c["a"] + c["b"] <= 10},
        )
        proposer = BayesianProposer(space, n_initial=4, n_candidates=64, seed=4)
        rng = np.random.default_rng(4)
        history = TrialHistory()
        for _ in range(10):
            config = proposer.propose(history, rng)
            assert space.is_valid(config)
            record(history, config, float(-abs(config["a"] - 7)))

    def test_all_failures_falls_back_to_sampling(self):
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=3, seed=5)
        rng = np.random.default_rng(5)
        history = TrialHistory()
        for _ in range(6):
            config = proposer.propose(history, rng)
            record(history, config, None, ok=False)
        config = proposer.propose(history, rng)
        assert space.is_valid(config)

    def test_diagnostics_populated_after_model_fit(self):
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=3, n_candidates=64, seed=6)
        rng = np.random.default_rng(6)
        history = TrialHistory()
        for _ in range(5):
            config = proposer.propose(history, rng)
            record(history, config, toy_objective(config))
        assert "incumbent" in proposer.last_fit_diagnostics
        assert "acquisition_value" in proposer.last_fit_diagnostics


class TestCostAware:
    def test_eipc_prefers_cheaper_region_when_ei_ties(self):
        """With a strong cost gradient, eipc shifts proposals cheap-ward."""
        space = toy_space()
        rng = np.random.default_rng(7)

        def run(acquisition):
            proposer = BayesianProposer(
                space, acquisition=acquisition, n_initial=6, n_candidates=128, seed=7
            )
            history = TrialHistory()
            inner_rng = np.random.default_rng(7)
            for _ in range(14):
                config = proposer.propose(history, inner_rng)
                # Flat objective, cost grows steeply with x.
                record(history, config, 1.0 + 0.01 * config["y"],
                       cost=1.0 + 100.0 * config["x"])
            return history

        eipc = run("eipc")
        mean_x = np.mean([t.config["x"] for t in eipc.trials[6:]])
        assert mean_x < 0.6  # pulled toward the cheap region

    def test_validation(self):
        space = toy_space()
        with pytest.raises(ValueError):
            BayesianProposer(space, n_initial=1)
        with pytest.raises(ValueError):
            BayesianProposer(space, n_candidates=2)
        with pytest.raises(KeyError):
            BayesianProposer(space, acquisition="nope")


class TestLogObjectiveOption:
    def test_log_transform_activates_for_positive_objectives(self):
        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, log_objective="auto", seed=0
        )
        rng = np.random.default_rng(0)
        history = TrialHistory()
        for _ in range(6):
            config = proposer.propose(history, rng)
            record(history, config, 10.0 + config["x"])  # strictly positive
        assert proposer._log_active

    def test_log_transform_skipped_for_negative_objectives(self):
        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, log_objective="auto", seed=0
        )
        rng = np.random.default_rng(0)
        history = TrialHistory()
        for _ in range(6):
            config = proposer.propose(history, rng)
            record(history, config, toy_objective(config))  # negative values
        assert not proposer._log_active

    def test_never_is_default_and_off(self):
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=3, n_candidates=64, seed=0)
        assert proposer.log_objective == "never"
        with pytest.raises(ValueError):
            BayesianProposer(space, log_objective="sometimes")


class TestPersistentSurrogate:
    """The proposer must reuse (and extend) its surrogate across calls."""

    def _history(self, space, n, seed=0):
        rng = np.random.default_rng(seed)
        history = TrialHistory()
        for _ in range(n):
            config = space.sample(rng)
            record(history, config, toy_objective(config))
        return history

    def test_surrogate_extended_across_growing_history(self):
        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, refit_every=100, seed=0
        )
        rng = np.random.default_rng(0)
        history = self._history(space, 6)
        proposer.propose(history, rng)  # first model fit (hyper refit)
        first = proposer._objective_cache.gp
        assert first is not None
        assert first.num_observations == 6
        for _ in range(3):
            config = proposer.propose(history, rng)
            record(history, config, toy_objective(config))
        # Same GP object, grown by pure appends — never rebuilt.  The last
        # propose saw 8 rows (its own result is recorded after it returns).
        assert proposer._objective_cache.gp is first
        assert first.num_observations == 8
        assert first.extend_fallbacks == 0

    def test_constant_liar_batch_extends_one_cached_factor(self):
        from repro.core.parallel import propose_batch

        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, refit_every=100, seed=0
        )
        rng = np.random.default_rng(1)
        history = self._history(space, 8, seed=1)
        proposer.propose(history, rng)  # warm the cache (one refit)
        cached = proposer._objective_cache.gp
        batch = propose_batch(proposer, history, rng, 4)
        assert len(batch) == 4
        # The k fantasy proposals extended the same factor; the last call
        # saw the history plus k-1 fantasies.
        assert proposer._objective_cache.gp is cached
        assert cached.num_observations == 8 + 3

    def test_fantasies_do_not_advance_refit_cadence(self):
        from repro.core.parallel import propose_batch

        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, refit_every=3, seed=2
        )
        rng = np.random.default_rng(2)
        history = self._history(space, 6, seed=2)
        proposer.propose(history, rng)
        refit_mark = proposer._last_refit_at
        # A wide batch appends many fantasies, but the cadence counts real
        # trials only: no mid-round refit may fire.
        propose_batch(proposer, history, rng, 8)
        assert proposer._last_refit_at == refit_mark

    def test_reuse_disabled_rebuilds_per_call(self):
        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, reuse_surrogate=False, seed=3
        )
        rng = np.random.default_rng(3)
        history = self._history(space, 6, seed=3)
        proposer.propose(history, rng)
        first = proposer._objective_cache.gp
        config = proposer.propose(history, rng)
        assert space.is_valid(config)
        assert proposer._objective_cache.gp is not first

    def test_non_append_history_change_falls_back_to_rebuild(self):
        space = toy_space()
        proposer = BayesianProposer(
            space, n_initial=3, n_candidates=64, refit_every=100, seed=4
        )
        rng = np.random.default_rng(4)
        history = self._history(space, 6, seed=4)
        proposer.propose(history, rng)
        first = proposer._objective_cache.gp
        # A *failure* changes the penalty target of every failed row and is
        # itself appended; a later success then changes the penalty again,
        # rewriting an existing row — no longer a pure append.
        record(history, space.sample(rng), None, ok=False)
        proposer.propose(history, rng)
        record(history, space.sample(rng), -5.0)
        config = proposer.propose(history, rng)
        assert space.is_valid(config)
        # Correctness: whatever route was taken, the surrogate matches the
        # full training set.
        assert proposer._objective_cache.gp.num_observations == len(history)
        assert first.num_observations <= len(history)

    def test_lml_diagnostic_matches_surrogate_cache(self):
        space = toy_space()
        proposer = BayesianProposer(space, n_initial=3, n_candidates=64, seed=5)
        rng = np.random.default_rng(5)
        history = self._history(space, 7, seed=5)
        proposer.propose(history, rng)
        surrogate = proposer._objective_cache.gp
        assert proposer.last_fit_diagnostics["lml"] == pytest.approx(
            surrogate.log_marginal_likelihood()
        )


class TestTierSwitchover:
    """Exact→sparse surrogate switchover as the history crosses the threshold."""

    def _history(self, space, n, seed=0):
        rng = np.random.default_rng(seed)
        history = TrialHistory()
        for _ in range(n):
            config = space.sample(rng)
            record(history, config, toy_objective(config))
        return history

    def test_cache_switches_tier_at_crossing(self):
        """The cached surrogate changes class the trial the threshold is hit,
        even with hyper-refits parked far in the future."""
        from repro.core.gp import GaussianProcess, SparseGaussianProcess

        space = toy_space()
        proposer = BayesianProposer(
            space,
            n_initial=3,
            n_candidates=32,
            refit_every=10**9,
            sparse_threshold=20,
            max_inducing=16,
            seed=0,
        )
        rng = np.random.default_rng(0)
        history = self._history(space, 16)
        proposer.propose(history, rng)
        assert type(proposer._objective_cache.gp) is GaussianProcess
        while len(history) < 26:
            config = proposer.propose(history, rng)
            n_seen = len(history)  # the propose saw the pre-record history
            record(history, config, toy_objective(config))
            gp = proposer._objective_cache.gp
            assert isinstance(gp, SparseGaussianProcess) == (n_seen >= 20)
            assert gp.num_observations == n_seen

    def test_proposals_deterministic_across_threshold(self):
        """Two identical proposers stay in lockstep through the switchover."""
        space = toy_space()

        def run():
            proposer = BayesianProposer(
                space,
                n_initial=3,
                n_candidates=32,
                sparse_threshold=20,
                max_inducing=16,
                seed=7,
            )
            rng = np.random.default_rng(7)
            history = self._history(space, 4, seed=7)
            configs = []
            for _ in range(22):
                config = proposer.propose(history, rng)
                configs.append(config)
                record(history, config, toy_objective(config))
            return configs

        assert run() == run()

    def test_below_threshold_matches_exact_only_proposer(self):
        """The default threshold leaves small-history behaviour bit-identical
        to a proposer with the sparse tier disabled."""
        space = toy_space()

        def run(sparse_threshold):
            proposer = BayesianProposer(
                space,
                n_initial=3,
                n_candidates=32,
                sparse_threshold=sparse_threshold,
                seed=3,
            )
            rng = np.random.default_rng(3)
            history = self._history(space, 4, seed=3)
            configs = []
            for _ in range(8):
                config = proposer.propose(history, rng)
                configs.append(config)
                record(history, config, toy_objective(config))
            return configs

        assert run(512) == run(None)

    def test_sparse_tier_batch_proposals_extend_cached_factor(self):
        """Constant-liar rounds fast-path on the sparse tier too."""
        from repro.core.gp import SparseGaussianProcess
        from repro.core.parallel import propose_batch

        space = toy_space()
        proposer = BayesianProposer(
            space,
            n_initial=3,
            n_candidates=32,
            refit_every=100,
            sparse_threshold=8,
            max_inducing=8,
            seed=4,
        )
        rng = np.random.default_rng(4)
        history = self._history(space, 12, seed=4)
        proposer.propose(history, rng)
        cached = proposer._objective_cache.gp
        assert isinstance(cached, SparseGaussianProcess)
        batch = propose_batch(proposer, history, rng, 4)
        assert len(batch) == 4
        assert proposer._objective_cache.gp is cached
        assert cached.num_observations == 12 + 3
        assert cached.extend_fallbacks == 0

    def test_validation(self):
        space = toy_space()
        with pytest.raises(ValueError):
            BayesianProposer(space, sparse_threshold=2)
        with pytest.raises(ValueError):
            BayesianProposer(space, max_inducing=2)
