"""Tests for the analytic performance model: feasibility, bottlenecks,
monotonicity, and the response-surface structure the tuner exploits."""

import pytest

from repro.cluster import homogeneous
from repro.mlsim import (
    InfeasibleConfigError,
    TrainingConfig,
    check_feasible,
    estimate,
)
from repro.workloads import get_workload

RESNET = get_workload("resnet50-imagenet")  # compute-bound
W2V = get_workload("word2vec-wiki")  # communication-bound
CLUSTER16 = homogeneous(16, jitter_cv=0.0)


class TestFeasibility:
    def test_placement_overflow(self):
        with pytest.raises(InfeasibleConfigError, match="placement"):
            check_feasible(
                TrainingConfig(num_workers=15, num_ps=4), RESNET, CLUSTER16
            )

    def test_memory_overflow(self):
        # ResNet activations are ~95 MB/sample: 1000 samples needs ~95 GB,
        # well past the 64 GB std-cpu node.
        with pytest.raises(InfeasibleConfigError, match="memory"):
            check_feasible(
                TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=1000),
                RESNET,
                CLUSTER16,
            )

    def test_batch_below_model_minimum(self):
        with pytest.raises(InfeasibleConfigError, match="below model minimum"):
            check_feasible(
                TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=1),
                RESNET,
                CLUSTER16,
            )

    def test_valid_config_passes(self):
        check_feasible(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
        )


class TestBspStructure:
    def test_more_workers_help_compute_bound(self):
        small = estimate(
            TrainingConfig(num_workers=4, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
        )
        large = estimate(
            TrainingConfig(num_workers=12, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
        )
        assert large.throughput > 1.5 * small.throughput

    def test_single_ps_bottlenecks_comm_bound(self):
        """word2vec with one PS is server-NIC-bound; adding PS helps a lot."""
        one_ps = estimate(
            TrainingConfig(num_workers=8, num_ps=1, batch_per_worker=256),
            W2V,
            CLUSTER16,
        )
        many_ps = estimate(
            TrainingConfig(num_workers=8, num_ps=8, batch_per_worker=256),
            W2V,
            CLUSTER16,
        )
        assert one_ps.bottleneck == "ps-nic"
        assert many_ps.throughput > 2 * one_ps.throughput

    def test_fp16_halves_comm_time(self):
        fp32 = estimate(
            TrainingConfig(num_workers=8, num_ps=2, batch_per_worker=256),
            W2V,
            CLUSTER16,
        )
        fp16 = estimate(
            TrainingConfig(
                num_workers=8, num_ps=2, batch_per_worker=256,
                gradient_precision="fp16",
            ),
            W2V,
            CLUSTER16,
        )
        assert fp16.throughput > 1.5 * fp32.throughput

    def test_bigger_batch_raises_throughput(self):
        """Larger batches amortise fixed overheads and communication."""
        small = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=8),
            RESNET,
            CLUSTER16,
        )
        big = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=64),
            RESNET,
            CLUSTER16,
        )
        assert big.throughput > small.throughput

    def test_straggler_tail_slows_bsp(self):
        clean = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
            speed_factors=[1.0] * 8,
        )
        straggled = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
            speed_factors=[1.0] * 7 + [0.5],
        )
        assert straggled.throughput < 0.7 * clean.throughput


class TestAsyncModes:
    def _config(self, sync_mode, **kwargs):
        return TrainingConfig(
            num_workers=8, num_ps=4, batch_per_worker=256, sync_mode=sync_mode, **kwargs
        )

    def test_bsp_has_zero_staleness(self):
        perf = estimate(self._config("bsp"), W2V, CLUSTER16)
        assert perf.mean_staleness == 0.0

    def test_asp_has_positive_staleness(self):
        perf = estimate(self._config("asp"), W2V, CLUSTER16)
        assert perf.mean_staleness == pytest.approx(7.0)

    def test_asp_beats_bsp_with_stragglers(self):
        factors = [1.0] * 7 + [0.3]
        bsp = estimate(self._config("bsp"), W2V, CLUSTER16, speed_factors=factors)
        asp = estimate(self._config("asp"), W2V, CLUSTER16, speed_factors=factors)
        assert asp.throughput > bsp.throughput

    def test_ssp_interpolates(self):
        factors = [1.0] * 7 + [0.3]
        bsp = estimate(self._config("bsp"), W2V, CLUSTER16, speed_factors=factors)
        asp = estimate(self._config("asp"), W2V, CLUSTER16, speed_factors=factors)
        ssp = estimate(
            self._config("ssp", staleness_bound=4), W2V, CLUSTER16, speed_factors=factors
        )
        low, high = sorted((bsp.throughput, asp.throughput))
        assert low <= ssp.throughput <= high
        assert 0 < ssp.mean_staleness <= asp.mean_staleness

    def test_speed_factor_count_checked(self):
        with pytest.raises(ValueError, match="speed factors"):
            estimate(self._config("bsp"), W2V, CLUSTER16, speed_factors=[1.0])


class TestAllReduce:
    def test_allreduce_beats_ps_for_compute_bound(self):
        """All 16 nodes computing beats 12 workers + 4 PS for ResNet."""
        allreduce = estimate(
            TrainingConfig(
                architecture="allreduce", num_workers=16, batch_per_worker=32
            ),
            RESNET,
            CLUSTER16,
        )
        ps = estimate(
            TrainingConfig(num_workers=12, num_ps=4, batch_per_worker=32),
            RESNET,
            CLUSTER16,
        )
        assert allreduce.throughput > ps.throughput

    def test_single_worker_has_no_comm(self):
        perf = estimate(
            TrainingConfig(architecture="allreduce", num_workers=1, batch_per_worker=32),
            RESNET,
            CLUSTER16,
        )
        assert perf.comm_time_s == 0.0

    def test_ring_time_grows_gently_with_workers(self):
        """Ring all-reduce volume is ~2·(n-1)/n·G: nearly flat in n."""
        four = estimate(
            TrainingConfig(architecture="allreduce", num_workers=4, batch_per_worker=64),
            W2V,
            homogeneous(64, jitter_cv=0.0),
        )
        sixteen = estimate(
            TrainingConfig(architecture="allreduce", num_workers=16, batch_per_worker=64),
            W2V,
            homogeneous(64, jitter_cv=0.0),
        )
        assert sixteen.comm_time_s < 1.6 * four.comm_time_s


class TestColocation:
    def test_colocation_saves_machines_but_costs_bandwidth(self):
        dedicated = estimate(
            TrainingConfig(
                num_workers=8, num_ps=8, colocate_ps=False, batch_per_worker=256
            ),
            W2V,
            CLUSTER16,
        )
        colocated = estimate(
            TrainingConfig(
                num_workers=16, num_ps=16, colocate_ps=True, batch_per_worker=256
            ),
            W2V,
            CLUSTER16,
        )
        # Colocation uses all 16 machines as workers; despite halved NIC
        # capacity it wins for the communication-bound model because the
        # aggregate PS bandwidth doubles.
        assert colocated.throughput != dedicated.throughput  # structurally distinct

    def test_estimate_is_deterministic(self):
        config = TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=64)
        a = estimate(config, RESNET, CLUSTER16)
        b = estimate(config, RESNET, CLUSTER16)
        assert a == b
