"""Tests for the workload zoo and convergence profiles."""

import pytest

from repro.workloads import (
    MODEL_ZOO,
    SUITE,
    ConvergenceProfile,
    core_suite,
    get_dataset,
    get_model,
    get_workload,
    iter_suite,
)


class TestZooLookups:
    def test_get_model(self):
        assert get_model("resnet50").name == "resnet50"

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="zoo has"):
            get_model("alexnet")

    def test_get_dataset_unknown(self):
        with pytest.raises(KeyError, match="zoo has"):
            get_dataset("mnist-of-doom")

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError, match="suite has"):
            get_workload("nope")

    def test_iter_suite_stable_order(self):
        names = [wl.name for wl in iter_suite()]
        assert names == sorted(names)
        assert len(names) == len(SUITE)

    def test_core_suite_spans_compute_comm_spectrum(self):
        ratios = [wl.compute_comm_ratio for wl in core_suite()]
        assert max(ratios) / min(ratios) > 100


class TestModelSpecs:
    def test_all_models_have_positive_arithmetic(self):
        for model in MODEL_ZOO.values():
            assert model.flops_per_sample > 0
            assert model.param_bytes > 0
            assert model.compute_comm_ratio > 0

    def test_vgg_more_comm_bound_than_resnet(self):
        assert (
            get_model("vgg16").compute_comm_ratio
            < get_model("resnet50").compute_comm_ratio
        )

    def test_word2vec_is_most_comm_bound(self):
        w2v = get_model("word2vec").compute_comm_ratio
        assert all(
            w2v <= m.compute_comm_ratio for m in MODEL_ZOO.values()
        )


class TestConvergenceProfile:
    def _profile(self):
        return ConvergenceProfile(base_iters=1000, ref_batch=64, critical_batch=1024)

    def test_reference_batch_gives_base_iters(self):
        profile = self._profile()
        assert profile.iterations_to_target(64) == pytest.approx(1000)

    def test_larger_batch_fewer_iterations(self):
        profile = self._profile()
        assert profile.iterations_to_target(128) < profile.iterations_to_target(64)

    def test_linear_scaling_below_critical_batch(self):
        """Doubling small batches nearly halves iterations."""
        profile = self._profile()
        ratio = profile.iterations_to_target(64) / profile.iterations_to_target(128)
        assert 1.8 < ratio < 2.0

    def test_diminishing_returns_beyond_critical_batch(self):
        """Far beyond the critical batch, samples-to-target grows."""
        profile = self._profile()
        small = profile.samples_to_target(64)
        huge = profile.samples_to_target(64 * 1024)
        assert huge > 2 * small

    def test_staleness_increases_iterations(self):
        profile = self._profile()
        assert profile.iterations_to_target(64, mean_staleness=8.0) > (
            profile.iterations_to_target(64, mean_staleness=0.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceProfile(base_iters=0, ref_batch=64, critical_batch=1024)
        profile = self._profile()
        with pytest.raises(ValueError):
            profile.iterations_to_target(0)
        with pytest.raises(ValueError):
            profile.iterations_to_target(64, mean_staleness=-1)


class TestWorkload:
    def test_epochs_for_iterations(self):
        workload = get_workload("resnet50-imagenet")
        epochs = workload.epochs_for_iterations(10_000, 256)
        assert epochs == pytest.approx(10_000 * 256 / 1_281_167)

    def test_compute_comm_ratio_delegates_to_model(self):
        workload = get_workload("lstm-ptb")
        assert workload.compute_comm_ratio == workload.model.compute_comm_ratio
