"""Tests for the two-tier (rack/oversubscription) topology support."""

import pytest

from repro.cluster import Cluster, FLAT, Fabric, Topology, homogeneous, two_tier
from repro.sim import RngRegistry, Simulator


def make_fabric(sim, nodes=8, gbps=10.0, latency=0.0, topology=None):
    bytes_per_sec = gbps * 1e9 / 8.0
    return Fabric(
        sim,
        egress_capacity={i: bytes_per_sec for i in range(nodes)},
        latency_s=latency,
        topology=topology,
    )


def run_transfers(sim, fabric, transfers):
    """Start flows, run to completion, return dict name -> finish time."""
    times = {}

    def proc(name, src, dst, size):
        yield fabric.transfer(src, dst, size)
        times[name] = sim.now

    for name, src, dst, size in transfers:
        sim.spawn(proc(name, src, dst, size))
    sim.run()
    return times


class TestTopologyConstruction:
    def test_two_tier_packs_in_id_order(self):
        topo = two_tier([1e9] * 8, rack_size=4)
        assert topo.rack_of[0] == 0
        assert topo.rack_of[3] == 0
        assert topo.rack_of[4] == 1
        assert topo.num_racks() == 2

    def test_uplink_capacity_is_aggregate_over_oversubscription(self):
        topo = two_tier([1e9] * 4, rack_size=2, oversubscription=4.0)
        assert topo.uplink_capacity[0] == pytest.approx(2e9 / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_tier([1e9], rack_size=0)
        with pytest.raises(ValueError):
            two_tier([1e9], rack_size=1, oversubscription=0.5)
        with pytest.raises(ValueError):
            Topology(rack_of={0: 0}, uplink_capacity={}, downlink_capacity={})

    def test_flat_topology_same_rack_everywhere(self):
        assert FLAT.same_rack(0, 99)


class TestFabricWithTopology:
    def test_intra_rack_flow_unaffected_by_oversubscription(self):
        sim = Simulator()
        topo = two_tier([1.25e9] * 8, rack_size=4, oversubscription=8.0)
        fabric = make_fabric(sim, topology=topo)
        size = 1.25e9  # 1s at full NIC rate
        times = run_transfers(sim, fabric, [("a", 0, 1, size)])
        assert times["a"] == pytest.approx(1.0, rel=1e-6)

    def test_cross_rack_flow_limited_by_uplink(self):
        """With 4x oversubscription, a single cross-rack flow still gets the
        full NIC rate (uplink = 4 NICs / 4 = 1 NIC)."""
        sim = Simulator()
        topo = two_tier([1.25e9] * 8, rack_size=4, oversubscription=4.0)
        fabric = make_fabric(sim, topology=topo)
        size = 1.25e9
        times = run_transfers(sim, fabric, [("a", 0, 5, size)])
        assert times["a"] == pytest.approx(1.0, rel=1e-6)

    def test_concurrent_cross_rack_flows_share_uplink(self):
        """Two cross-rack flows from different sources share the uplink."""
        sim = Simulator()
        topo = two_tier([1.25e9] * 8, rack_size=4, oversubscription=4.0)
        fabric = make_fabric(sim, topology=topo)
        size = 1.25e9
        times = run_transfers(
            sim, fabric, [("a", 0, 4, size), ("b", 1, 5, size)]
        )
        # Uplink = 1.25e9; two flows → 2s each (vs 1s on a flat fabric).
        assert times["a"] == pytest.approx(2.0, rel=1e-5)
        assert times["b"] == pytest.approx(2.0, rel=1e-5)

    def test_flat_fabric_unchanged_for_same_pattern(self):
        sim = Simulator()
        fabric = make_fabric(sim)  # no topology
        size = 1.25e9
        times = run_transfers(
            sim, fabric, [("a", 0, 4, size), ("b", 1, 5, size)]
        )
        assert times["a"] == pytest.approx(1.0, rel=1e-6)

    def test_oversubscription_one_behaves_like_flat(self):
        size = 1.25e9
        flows = [("a", 0, 4, size), ("b", 1, 5, size), ("c", 2, 6, size)]

        sim_flat = Simulator()
        flat_times = run_transfers(sim_flat, make_fabric(sim_flat), list(flows))

        sim_topo = Simulator()
        topo = two_tier([1.25e9] * 8, rack_size=4, oversubscription=1.0)
        topo_times = run_transfers(
            sim_topo, make_fabric(sim_topo, topology=topo), list(flows)
        )
        for name in ("a", "b", "c"):
            assert topo_times[name] == pytest.approx(flat_times[name], rel=1e-6)


class TestClusterIntegration:
    def test_cluster_builds_topology_from_spec(self):
        spec = homogeneous(8, rack_size=4, oversubscription=4.0)
        cluster = Cluster(Simulator(), spec, RngRegistry(0))
        assert cluster.topology is not None
        assert cluster.topology.num_racks() == 2

    def test_flat_cluster_has_no_topology(self):
        cluster = Cluster(Simulator(), homogeneous(8), RngRegistry(0))
        assert cluster.topology is None

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            homogeneous(8, rack_size=0)
        with pytest.raises(ValueError):
            homogeneous(8, rack_size=4, oversubscription=0.9)

    def test_oversubscription_slows_ps_training(self):
        """An oversubscribed fabric reduces measured PS throughput."""
        from repro.mlsim import TrainingConfig, TrainingEnvironment
        from repro.workloads import get_workload

        workload = get_workload("word2vec-wiki")
        config = TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=256)
        flat_env = TrainingEnvironment(
            workload, homogeneous(16, jitter_cv=0.0), seed=0,
            fidelity="event", noise_cv=0.0,
        )
        oversub_env = TrainingEnvironment(
            workload,
            homogeneous(16, jitter_cv=0.0, rack_size=4, oversubscription=8.0),
            seed=0,
            fidelity="event",
            noise_cv=0.0,
        )
        flat = flat_env.measure(config)
        oversub = oversub_env.measure(config)
        assert oversub.throughput < 0.8 * flat.throughput
