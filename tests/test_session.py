"""Tests for the TuningSession / executor layer and its callbacks."""

import io
import json

import numpy as np
import pytest

from repro.baselines import GridSearch, RandomSearch
from repro.cluster import homogeneous
from repro.configspace import FloatParameter, ConfigSpace, ml_config_space
from repro.core import (
    AsyncExecutor,
    MLConfigTuner,
    ParallelExecutor,
    SerialExecutor,
    TrialHistory,
    TuningBudget,
    TuningSession,
)
from repro.core.session import (
    JsonlTrialLog,
    ProgressLogger,
    SessionCallback,
    executor_for,
)
from repro.core.stopping import PlateauRule, StoppedStrategy, WallClockCapRule
from repro.core.strategy import SearchStrategy
from repro.mlsim import Measurement, TrainingConfig, TrainingEnvironment
from repro.workloads import get_workload

NODES = 8


def make_env(workload="resnet50-imagenet", seed=0, nodes=NODES):
    return TrainingEnvironment(get_workload(workload), homogeneous(nodes), seed=seed)


def space(nodes=NODES):
    return ml_config_space(nodes)


def seed_reference_loop(strategy, env, space_, budget, seed):
    """The pre-session serial run loop, reimplemented verbatim."""
    rng = np.random.default_rng(seed)
    history = TrialHistory()
    while not budget.exhausted(history) and not strategy.finished(history, space_):
        config = strategy.propose(history, space_, rng)
        measurement = strategy.measure(env, config)
        trial = history.record(config, measurement)
        strategy.observe(trial)
    return history


class CostedStrategy(SearchStrategy):
    """Deterministic stub with scripted probe costs (no real environment).

    ``oks`` optionally scripts per-probe success (default: all succeed).
    """

    name = "costed-stub"

    def __init__(self, costs, oks=None):
        self.costs = list(costs)
        self.oks = list(oks) if oks is not None else None
        self.cursor = 0

    def propose(self, history, space_, rng):
        return {"x": 0.5}

    def measure(self, env, config):
        cost = float(self.costs[self.cursor % len(self.costs)])
        ok = self.oks[self.cursor % len(self.oks)] if self.oks else True
        self.cursor += 1
        return Measurement(
            config=TrainingConfig(),
            ok=ok,
            fidelity="stub",
            objective=cost if ok else None,
            probe_cost_s=cost,
        )


class StubEnv:
    def describe(self):
        return {"workload": "stub"}


def stub_space():
    return ConfigSpace([FloatParameter("x", 0.0, 1.0)])


class TestSerialEquivalence:
    """TuningSession + SerialExecutor must reproduce the seed loop exactly."""

    @pytest.mark.parametrize(
        "factory,trials",
        [(lambda: RandomSearch(), 10), (lambda: MLConfigTuner(seed=0), 14)],
    )
    def test_history_identical_to_seed_loop(self, factory, trials):
        budget = TuningBudget(max_trials=trials)
        reference = seed_reference_loop(
            factory(), make_env(), space(), budget, seed=0
        )
        result = factory().run(make_env(), space(), budget, seed=0)
        assert [t.config for t in result.history] == [t.config for t in reference]
        assert [t.objective for t in result.history] == [
            t.objective for t in reference
        ]
        assert result.history.cost_series() == reference.cost_series()

    def test_serial_wall_clock_equals_machine_cost(self):
        result = RandomSearch().run(
            make_env(), space(), TuningBudget(max_trials=8), seed=1
        )
        assert result.total_wall_clock_s == pytest.approx(result.total_cost_s)
        assert result.history.wall_clock_series() == result.history.cost_series()
        assert result.history.num_rounds == result.num_trials

    def test_explicit_session_matches_run_shim(self):
        shim = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=6), seed=2)
        direct = TuningSession(RandomSearch(), executor=SerialExecutor()).run(
            make_env(), space(), TuningBudget(max_trials=6), seed=2
        )
        assert [t.config for t in shim.history] == [t.config for t in direct.history]


class TestParallelExecutor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_wall_clock_is_max_per_round(self):
        strategy = CostedStrategy([5.0, 3.0, 1.0, 2.0, 8.0, 4.0])
        result = TuningSession(strategy, executor=ParallelExecutor(3)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=6), seed=0
        )
        assert result.num_trials == 6
        assert result.history.num_rounds == 2
        assert result.total_cost_s == pytest.approx(23.0)
        # Round walls: max(5,3,1)=5 and max(2,8,4)=8.
        assert result.total_wall_clock_s == pytest.approx(13.0)
        assert [t.round_index for t in result.history] == [0, 0, 0, 1, 1, 1]

    def test_trial_stamps_are_physical_completion_times(self):
        strategy = CostedStrategy([5.0, 3.0, 1.0, 2.0, 8.0, 4.0])
        result = TuningSession(strategy, executor=ParallelExecutor(3)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=6), seed=0
        )
        # Each trial completes at its round's start plus its own probe cost.
        assert result.history.wall_clock_series() == pytest.approx(
            [5.0, 3.0, 1.0, 7.0, 13.0, 9.0]
        )

    def test_wall_clock_to_reach_is_order_independent(self):
        # The cheap high-objective probe reaches the threshold at its own
        # completion time regardless of where it sits in the batch.
        for costs, want in ([9.0, 1.0], 1.0), ([1.0, 9.0], 1.0):
            strategy = CostedStrategy(costs)
            result = TuningSession(strategy, executor=ParallelExecutor(2)).run(
                StubEnv(), stub_space(), TuningBudget(max_trials=2), seed=0
            )
            # CostedStrategy reports objective == cost, so threshold 1.0 is
            # first met by the 1-second probe.
            assert result.history.wall_clock_to_reach(1.0) == pytest.approx(want)

    def test_truncates_batch_at_trial_budget(self):
        strategy = CostedStrategy([1.0])
        result = TuningSession(strategy, executor=ParallelExecutor(4)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=6), seed=0
        )
        assert result.num_trials == 6
        assert [t.round_index for t in result.history] == [0, 0, 0, 0, 1, 1]

    def test_cost_budget_stops_after_round(self):
        strategy = CostedStrategy([10.0])
        result = TuningSession(strategy, executor=ParallelExecutor(2)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=None, max_cost_s=35.0), seed=0
        )
        # Rounds cost 20 machine-seconds each; the second pushes past 35.
        assert result.num_trials == 4
        assert result.total_cost_s == pytest.approx(40.0)

    def test_cost_budget_cancels_rest_of_round_and_bills_elapsed(self):
        strategy = CostedStrategy([10.0])
        result = TuningSession(strategy, executor=ParallelExecutor(4)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=None, max_cost_s=15.0), seed=0
        )
        # The cap hits after the second member records; the other two are
        # cancelled, so recorded overshoot stays within one probe (as in
        # serial execution) — but their slots were occupied from the round
        # start until the cancellation instant (the tripping member's
        # 10s completion), and that elapsed wall-clock is billed as
        # cancelled machine cost: 20 recorded + 2 x 10 cancelled.
        assert result.num_trials == 2
        assert result.history.cancelled_cost_s == pytest.approx(20.0)
        assert result.total_cost_s == pytest.approx(40.0)
        assert sum(result.history.cost_by_shard().values()) == pytest.approx(
            result.total_cost_s
        )

    def test_wall_cap_does_not_cancel_round_members_by_recording_order(self):
        # All four members launched at the round start; the slow one
        # recording first must not cancel round-mates that physically
        # completed before the cap.  Either batch order records all four.
        for costs in ([12.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 12.0]):
            strategy = CostedStrategy(costs)
            result = TuningSession(strategy, executor=ParallelExecutor(4)).run(
                StubEnv(), stub_space(),
                TuningBudget(max_trials=None, max_wall_clock_s=10.0), seed=0,
            )
            assert result.num_trials == 4
            assert result.total_wall_clock_s == pytest.approx(12.0)

    def test_default_propose_batch_advances_grid_cursor(self):
        strategy = GridSearch(resolution=1, seed=0)
        rng = np.random.default_rng(0)
        batch = strategy.propose_batch(TrialHistory(), space(), rng, 4)
        assert len(batch) == 4
        seen = [tuple(sorted(c.items())) for c in batch]
        assert len(seen) == len(set(seen))

    def test_parallel_grid_stops_at_exhaustion_without_random_padding(self):
        serial = GridSearch(resolution=1, seed=0)
        serial_result = serial.run(make_env(), space(), TuningBudget(max_trials=500))
        parallel = GridSearch(resolution=1, seed=0)
        parallel_result = parallel.run(
            make_env(), space(), TuningBudget(max_trials=500),
            executor=ParallelExecutor(4),
        )
        # Same grid, same exhaustion point: no off-grid random fillers.
        assert parallel_result.num_trials == serial_result.num_trials
        assert {tuple(sorted(t.config.items())) for t in parallel_result.history} == {
            tuple(sorted(t.config.items())) for t in serial_result.history
        }

    def test_halving_batch_stays_within_one_rung(self):
        from repro.baselines import SuccessiveHalving

        strategy = SuccessiveHalving(bracket_size=6, eta=3, seed=0)
        rng = np.random.default_rng(0)
        batch = strategy.propose_batch(TrialHistory(), space(), rng, 100)
        # The first rung has bracket_size members; the batch never crosses
        # into the next rung even when more slots are available.
        assert len(batch) == 6

    def test_parallel_cherrypick_still_stops_on_ei_threshold(self):
        from repro.baselines import CherryPick

        result = CherryPick(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=40), seed=0,
            executor=ParallelExecutor(4),
        )
        assert result.num_trials < 40

    def test_propose_batch_validates_k(self):
        with pytest.raises(ValueError):
            RandomSearch().propose_batch(TrialHistory(), space(), np.random.default_rng(0), 0)


class TestAsyncExecutor:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncExecutor(workers=0)

    def test_executor_for_modes(self):
        assert isinstance(executor_for(4, mode="async"), AsyncExecutor)
        assert isinstance(executor_for(4, mode="sync"), ParallelExecutor)
        # One worker has no barrier to remove: serial in both modes.
        assert isinstance(executor_for(1, mode="async"), SerialExecutor)
        assert isinstance(executor_for(1), SerialExecutor)
        with pytest.raises(ValueError):
            executor_for(4, mode="bsp")
        with pytest.raises(ValueError):
            executor_for(0, mode="async")

    def _run(self, costs, executor, budget=None, trials=None):
        strategy = CostedStrategy(costs)
        budget = budget or TuningBudget(max_trials=trials or len(costs))
        return TuningSession(strategy, executor=executor).run(
            StubEnv(), stub_space(), budget, seed=0
        )

    def test_async_beats_sync_wall_clock_on_heterogeneous_costs(self):
        # Sync rounds: max(4,1)=4 then max(1,1)=1 -> 5.  Async: worker 0
        # holds the 4s probe while worker 1 chews through the three 1s
        # probes -> makespan 4.
        costs = [4.0, 1.0, 1.0, 1.0]
        sync = self._run(costs, ParallelExecutor(2))
        asyn = self._run(costs, AsyncExecutor(2))
        assert asyn.total_wall_clock_s < sync.total_wall_clock_s
        assert sync.total_wall_clock_s == pytest.approx(5.0)
        assert asyn.total_wall_clock_s == pytest.approx(4.0)

    def test_machine_cost_identical_per_probe(self):
        costs = [4.0, 1.0, 2.0, 8.0, 1.0, 3.0]
        sync = self._run(costs, ParallelExecutor(3))
        asyn = self._run(costs, AsyncExecutor(3))
        assert asyn.total_cost_s == pytest.approx(sync.total_cost_s)
        # Probe-for-probe: the same multiset of machine costs is billed.
        assert sorted(
            t.measurement.probe_cost_s for t in asyn.history
        ) == sorted(t.measurement.probe_cost_s for t in sync.history)

    def test_async_matches_sync_on_homogeneous_costs(self):
        # With equal probe durations the barrier never causes idling.
        sync = self._run([2.0] * 6, ParallelExecutor(3))
        asyn = self._run([2.0] * 6, AsyncExecutor(3))
        assert asyn.total_wall_clock_s == pytest.approx(sync.total_wall_clock_s)

    def test_trials_recorded_in_completion_order(self):
        # Launch order is [5s, 1s]; the 1s probe finishes first and is
        # recorded as trial 0 with its own physical completion stamp.
        result = self._run([5.0, 1.0], AsyncExecutor(2))
        assert [t.objective for t in result.history] == [1.0, 5.0]
        assert result.history.wall_clock_series() == pytest.approx([1.0, 5.0])
        assert result.total_wall_clock_s == pytest.approx(5.0)
        # launch_index correlates each trial with its trial_start event.
        assert [t.launch_index for t in result.history] == [1, 0]
        assert [t.index for t in result.history] == [0, 1]

    def test_callback_ordering_with_out_of_order_completions(self):
        recorder = RecordingCallback()
        TuningSession(
            CostedStrategy([5.0, 1.0, 1.0]),
            executor=AsyncExecutor(2),
            callbacks=[recorder],
        ).run(StubEnv(), stub_space(), TuningBudget(max_trials=3), seed=0)
        # trial_start indices are launch ordinals, trial_end indices are
        # completion ordinals: the 5s probe launched first ends last.
        assert recorder.events == [
            "session_start",
            "trial_start:0",
            "trial_start:1",
            "trial_end:0",
            "round_end:0",
            "trial_start:2",
            "trial_end:1",
            "round_end:1",
            "trial_end:2",
            "round_end:2",
            "session_end",
        ]

    def test_never_launches_beyond_trial_budget(self):
        result = self._run([1.0], AsyncExecutor(4), trials=5)
        assert result.num_trials == 5

    def test_max_wall_clock_budget_gates_launches(self):
        # 4s probes on 2 workers: launches at 0,0,4,4,8,8 all start before
        # the 10s cap; the completions at 12 overshoot it (by less than one
        # probe per worker), and nothing launches at t >= 10.
        result = self._run(
            [4.0],
            AsyncExecutor(2),
            budget=TuningBudget(max_trials=None, max_wall_clock_s=10.0),
        )
        assert result.num_trials == 5
        assert result.total_wall_clock_s == pytest.approx(12.0)
        assert max(result.history.wall_clock_series()) <= 10.0 + 4.0

    def test_max_wall_clock_budget_serial(self):
        result = self._run(
            [4.0],
            SerialExecutor(),
            budget=TuningBudget(max_trials=None, max_wall_clock_s=10.0),
        )
        # 4s, 8s, 12s: the probe crossing the cap is the last.
        assert result.num_trials == 3

    def test_wall_clock_budget_validation(self):
        with pytest.raises(ValueError):
            TuningBudget(max_trials=None, max_wall_clock_s=-1.0)
        # A wall-clock cap alone is a valid budget.
        budget = TuningBudget(max_trials=None, max_wall_clock_s=60.0)
        assert budget.max_wall_clock_s == 60.0

    def test_cost_budget_counts_in_flight_probes(self):
        # Cap 15 with 10s probes: the second launch commits 20 machine
        # seconds, so no third probe is ever launched.
        result = self._run(
            [10.0],
            AsyncExecutor(4),
            budget=TuningBudget(max_trials=None, max_cost_s=15.0),
        )
        assert result.total_cost_s == pytest.approx(20.0)

    def test_reused_executor_resets_free_list(self):
        executor = AsyncExecutor(2)
        first = self._run([3.0, 1.0, 2.0, 1.0], executor)
        second = self._run([3.0, 1.0, 2.0, 1.0], executor)
        assert second.num_trials == first.num_trials
        assert second.total_wall_clock_s == pytest.approx(first.total_wall_clock_s)

    def test_halving_async_waits_at_rung_boundary(self):
        from repro.baselines import SuccessiveHalving

        strategy = SuccessiveHalving(bracket_size=4, eta=2, seed=0)
        strategy.reset()
        rng = np.random.default_rng(0)
        sp = space()
        history = TrialHistory()
        launched = []
        for _ in range(4):
            config = strategy.propose_async(history, launched, sp, rng)
            assert config is not None
            launched.append(config)
        # Rung fully launched, nothing observed: promotion would run on an
        # empty result set — the strategy must wait, not cross the rung.
        assert strategy.propose_async(history, launched, sp, rng) is None

    def test_halving_async_preserves_rung_structure(self):
        """Regression: async halving must not promote on partial rungs.

        A 6-wide bracket at eta=3 has rungs of 6 then 2; the two promoted
        configs must be drawn from the first rung's members.
        """
        from repro.baselines import SuccessiveHalving

        result = SuccessiveHalving(bracket_size=6, eta=3, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=8), seed=0,
            executor=AsyncExecutor(4),
        )
        assert result.num_trials == 8
        trials = sorted(result.history, key=lambda t: t.launch_index)
        rung0 = {tuple(sorted(t.config.items())) for t in trials[:6]}
        rung1 = [tuple(sorted(t.config.items())) for t in trials[6:]]
        assert len(rung0) == 6
        assert len(rung1) == 2
        assert set(rung1) <= rung0

    def test_async_grid_drains_in_flight_at_exhaustion(self):
        """Regression: a finished strategy must not discard in-flight probes.

        When the grid cursor exhausts with probes still in flight, the
        session drains them — every grid point is recorded, exactly as
        under serial or synchronous-parallel execution.
        """
        serial = GridSearch(resolution=1, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=500)
        )
        asyn = GridSearch(resolution=1, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=500),
            executor=AsyncExecutor(4),
        )
        assert asyn.num_trials == serial.num_trials
        assert {tuple(sorted(t.config.items())) for t in asyn.history} == {
            tuple(sorted(t.config.items())) for t in serial.history
        }
        assert asyn.total_cost_s == pytest.approx(serial.total_cost_s)

    def test_unfinishing_stop_rule_cannot_launch_in_the_past(self):
        """Regression: a worker idled behind a launch gate relaunches *now*.

        FailureStreakRule fires after two fast failures, the slow success
        drains and breaks the streak, and the session resumes.  The idle
        worker's free-time (t=20) is stale by then; launching there would
        produce time-travelling trials and non-monotone completion stamps.
        """
        from repro.core.stopping import FailureStreakRule

        strategy = StoppedStrategy(
            CostedStrategy(
                [10.0, 1000.0, 10.0, 100.0],
                oks=[False, True, False, True],
            ),
            [FailureStreakRule(streak=2)],
        )
        result = TuningSession(strategy, executor=AsyncExecutor(2)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=5), seed=0
        )
        stamps = result.history.wall_clock_series()
        assert stamps == sorted(stamps)
        # The post-resume launches start at the session clock (t=1000),
        # not at the stale free-time (t=20).
        assert stamps[-1] == pytest.approx(1100.0)
        assert result.total_wall_clock_s == pytest.approx(1100.0)

    def test_async_bo_tuner_runs_and_accounts_honestly(self):
        result = MLConfigTuner(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=16), seed=0,
            executor=AsyncExecutor(4),
        )
        assert result.num_trials == 16
        assert result.best_objective is not None
        # All probes billed, but the stopwatch only sees per-worker timelines.
        assert result.total_cost_s > result.total_wall_clock_s

    def test_wall_clock_cap_rule_fires(self):
        rule = WallClockCapRule(max_wall_clock_s=9.0)
        history = TrialHistory()
        history.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="stub",
                objective=1.0, probe_cost_s=5.0,
            ),
        )
        assert not rule.should_stop(history)
        history.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="stub",
                objective=1.0, probe_cost_s=5.0,
            ),
        )
        assert rule.should_stop(history)
        assert "wall-clock cap" in rule.reason()
        with pytest.raises(ValueError):
            WallClockCapRule(max_wall_clock_s=0.0)

    def test_budget_cancellation_bills_partial_cost(self):
        # Both probes launch at t=0; the 1s completion exhausts the wall
        # cap, so the 10s probe is cancelled after 1 elapsed second — that
        # second was still burned on the cluster and must appear in the
        # machine-cost total (itemised as cancelled cost).
        result = self._run(
            [1.0, 10.0],
            AsyncExecutor(2),
            budget=TuningBudget(max_trials=None, max_wall_clock_s=0.5),
        )
        assert result.num_trials == 1
        assert result.history.cancelled_cost_s == pytest.approx(1.0)
        assert result.total_cost_s == pytest.approx(2.0)

    def test_cancellation_charge_clamped_to_probe_duration(self):
        # Completion order records the 2s probe first (wall=2); the 10s
        # probe launched at t=0 is billed its 2 elapsed seconds, while a
        # probe that completed exactly at the stop is billed in full, never
        # more than its own duration.
        result = self._run(
            [10.0, 2.0],
            AsyncExecutor(2),
            budget=TuningBudget(max_trials=None, max_wall_clock_s=1.0),
        )
        assert result.num_trials == 1
        assert result.history.cancelled_cost_s == pytest.approx(2.0)
        assert result.total_cost_s == pytest.approx(4.0)

    def test_drained_in_flight_probes_are_not_billed_as_cancelled(self):
        # Strategy-finish drains in-flight probes to completion: they are
        # recorded as trials, so no cancellation charge may apply.
        result = GridSearch(resolution=1, seed=0).run(
            make_env(), space(), TuningBudget(max_trials=500),
            executor=AsyncExecutor(4),
        )
        assert result.history.cancelled_cost_s == 0.0

    def test_cancelled_cost_survives_history_clone(self):
        history = TrialHistory()
        history.charge_cancelled(7.0)
        clone = history.clone()
        assert clone.cancelled_cost_s == pytest.approx(7.0)
        assert clone.total_cost_s == pytest.approx(7.0)
        with pytest.raises(ValueError):
            history.charge_cancelled(-1.0)

    def test_wall_clock_cap_rule_stops_session(self):
        strategy = StoppedStrategy(
            CostedStrategy([4.0]), [WallClockCapRule(max_wall_clock_s=10.0)]
        )
        result = TuningSession(strategy, executor=AsyncExecutor(2)).run(
            StubEnv(), stub_space(), TuningBudget(max_trials=100), seed=0
        )
        assert result.num_trials < 100
        assert strategy.stop_reason is not None
        assert "wall-clock cap" in strategy.stop_reason


class RecordingCallback(SessionCallback):
    def __init__(self):
        self.events = []

    def on_session_start(self, strategy, env, space_, budget):
        self.events.append("session_start")

    def on_trial_start(self, index, config):
        self.events.append(f"trial_start:{index}")

    def on_trial_end(self, trial):
        self.events.append(f"trial_end:{trial.index}")

    def on_round_end(self, round_index, trials, history):
        self.events.append(f"round_end:{round_index}")

    def on_session_end(self, result):
        self.events.append("session_end")


class TestCallbacks:
    def test_serial_callback_ordering(self):
        recorder = RecordingCallback()
        TuningSession(
            CostedStrategy([1.0]), callbacks=[recorder]
        ).run(StubEnv(), stub_space(), TuningBudget(max_trials=2), seed=0)
        assert recorder.events == [
            "session_start",
            "trial_start:0",
            "trial_end:0",
            "round_end:0",
            "trial_start:1",
            "trial_end:1",
            "round_end:1",
            "session_end",
        ]

    def test_parallel_callback_ordering(self):
        recorder = RecordingCallback()
        TuningSession(
            CostedStrategy([1.0]), executor=ParallelExecutor(2), callbacks=[recorder]
        ).run(StubEnv(), stub_space(), TuningBudget(max_trials=4), seed=0)
        assert recorder.events == [
            "session_start",
            "trial_start:0",
            "trial_start:1",
            "trial_end:0",
            "trial_end:1",
            "round_end:0",
            "trial_start:2",
            "trial_start:3",
            "trial_end:2",
            "trial_end:3",
            "round_end:1",
            "session_end",
        ]

    def test_progress_logger_writes_per_round(self):
        stream = io.StringIO()
        TuningSession(
            CostedStrategy([1.0]), callbacks=[ProgressLogger(stream=stream)]
        ).run(StubEnv(), stub_space(), TuningBudget(max_trials=3), seed=0)
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 3
        assert "costed-stub" in lines[0]
        assert "wall=" in lines[0]

    def test_progress_logger_validation(self):
        with pytest.raises(ValueError):
            ProgressLogger(every=0)

    def test_jsonl_trial_log(self, tmp_path):
        path = str(tmp_path / "trials.jsonl")
        result = RandomSearch().run(
            make_env(),
            space(),
            TuningBudget(max_trials=4),
            seed=0,
            callbacks=[JsonlTrialLog(path)],
        )
        records = [json.loads(line) for line in open(path)]
        assert records[0]["event"] == "session_start"
        assert records[0]["strategy"] == "random"
        assert records[-1]["event"] == "session_end"
        assert records[-1]["num_trials"] == 4
        trials = [r for r in records if r["event"] == "trial"]
        assert len(trials) == 4
        assert [t["index"] for t in trials] == [0, 1, 2, 3]
        assert trials[-1]["cumulative_cost_s"] == pytest.approx(result.total_cost_s)
        assert trials[0]["config"] == result.history[0].config

    def test_jsonl_session_end_without_start_is_noop(self, tmp_path):
        """Regression: session_end before session_start must not crash.

        The sink used to call ``self._handle.close()`` unguarded — an
        ``AttributeError`` on ``None`` when the callback was attached to a
        session that aborted before ``on_session_start`` ever fired.
        """
        import os

        from repro.core import TuningResult

        path = str(tmp_path / "aborted.jsonl")
        log = JsonlTrialLog(path)
        result = TuningResult(
            strategy="aborted", history=TrialHistory(), best_trial=None,
            environment={},
        )
        log.on_session_end(result)  # must not raise
        assert not os.path.exists(path)

    def test_jsonl_double_session_end_is_idempotent(self, tmp_path):
        path = str(tmp_path / "trials.jsonl")
        log = JsonlTrialLog(path)
        RandomSearch().run(
            make_env(), space(), TuningBudget(max_trials=3), seed=0,
            callbacks=[log],
        )
        before = open(path).read()
        # A stray second end event must neither crash nor truncate the log
        # to a lone session_end record (the lazy _write reopens in "w").
        from repro.core import TuningResult

        result_stub = TuningResult(
            strategy="stray", history=TrialHistory(), best_trial=None,
            environment={},
        )
        log.on_session_end(result_stub)
        assert open(path).read() == before


class TestSessionReset:
    def test_reused_tuner_matches_fresh_tuner(self):
        """Stale incumbent/proposer state must not leak across run() calls."""
        budget = TuningBudget(max_trials=12)
        reused = MLConfigTuner(seed=0)
        reused.run(make_env("resnet50-imagenet"), space(), budget, seed=0)
        first_early = reused.probes_terminated_early
        second = reused.run(make_env("lstm-ptb"), space(), budget, seed=0)
        fresh_tuner = MLConfigTuner(seed=0)
        fresh = fresh_tuner.run(make_env("lstm-ptb"), space(), budget, seed=0)
        assert [t.config for t in second.history] == [t.config for t in fresh.history]
        assert [t.objective for t in second.history] == [
            t.objective for t in fresh.history
        ]
        # The counter reflects only the latest session.
        assert reused.probes_terminated_early == fresh_tuner.probes_terminated_early
        assert first_early >= 0

    def test_reused_grid_search_restarts_sweep(self):
        strategy = GridSearch(resolution=1, seed=0)
        first = strategy.run(make_env(), space(), TuningBudget(max_trials=500))
        second = strategy.run(make_env(), space(), TuningBudget(max_trials=500))
        assert second.num_trials == first.num_trials

    def test_reused_ottertune_remaps_per_session(self):
        from repro.baselines import OtterTuneStyle

        strategy = OtterTuneStyle(seed=0)
        strategy.run(make_env(), space(), TuningBudget(max_trials=6), seed=0)
        strategy._landmarks = [{"sentinel": True}]  # would crash if reused
        strategy.mapped_workload = "stale"
        strategy.reset()
        assert strategy._landmarks is None
        assert strategy.mapped_workload is None

    def test_stopped_strategy_clears_stop_reason(self):
        strategy = StoppedStrategy(
            RandomSearch(), [PlateauRule(patience=5, min_relative_gain=0.02)]
        )
        strategy.run(make_env(), space(), TuningBudget(max_trials=60), seed=0)
        assert strategy.stop_reason is not None
        strategy.reset()
        assert strategy.stop_reason is None


class TestParallelSpeedup:
    def test_parallel_4x_reaches_matched_quality_faster(self):
        """Acceptance: 4 workers hit matched quality faster, near serial's best.

        Compared at *matched quality* — the incumbent both runs reached —
        because the two arms need not land the same final optimum: the
        analytic-gradient marginal-likelihood fits sharpened the serial
        surrogate enough that 36 sequential model updates can out-search 9
        constant-liar rounds on final incumbent.  The parallel claims that
        must hold regardless: the session's total wall-clock collapses
        (same trial budget, a fraction of the stopwatch time), matched
        quality is reached measurably sooner, the parallel incumbent stays
        within 10% of serial's, and machine cost is still billed honestly.
        """
        nodes = 16
        budget = TuningBudget(max_trials=36)
        space_ = ml_config_space(nodes)

        def env():
            return TrainingEnvironment(
                get_workload("resnet50-imagenet"), homogeneous(nodes), seed=0
            )

        serial = MLConfigTuner(seed=0).run(env(), space_, budget, seed=0)
        parallel = MLConfigTuner(seed=0).run(
            env(), space_, budget, seed=0, executor=ParallelExecutor(4)
        )
        assert parallel.best_objective >= 0.9 * serial.best_objective
        assert parallel.total_wall_clock_s * 2.0 <= serial.total_wall_clock_s
        matched = min(serial.best_objective, parallel.best_objective)
        serial_reach = serial.history.wall_clock_to_reach(matched)
        parallel_reach = parallel.history.wall_clock_to_reach(matched)
        assert serial_reach is not None and parallel_reach is not None
        assert parallel_reach * 1.2 <= serial_reach
        # Machine cost is still honestly accounted: more than wall-clock.
        assert parallel.total_cost_s > parallel.total_wall_clock_s
