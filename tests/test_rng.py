"""Tests for named, reproducible RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("jitter").random(10)
        b = RngRegistry(42).stream("jitter").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        registry = RngRegistry(42)
        a = registry.stream("jitter").random(10)
        b = registry.stream("noise").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("jitter").random(10)
        b = RngRegistry(2).stream("jitter").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(7)
        r1.stream("a")
        first = r1.stream("b").random(5)
        r2 = RngRegistry(7)
        second = r2.stream("b").random(5)  # no "a" created first
        assert np.array_equal(first, second)

    def test_fork_is_deterministic_and_distinct(self):
        registry = RngRegistry(5)
        fork_a = registry.fork(1).stream("x").random(5)
        fork_a_again = RngRegistry(5).fork(1).stream("x").random(5)
        fork_b = registry.fork(2).stream("x").random(5)
        assert np.array_equal(fork_a, fork_a_again)
        assert not np.array_equal(fork_a, fork_b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("not a seed")
