"""Property tests for the vectorised batch probe engine.

The batch engine's contract is *bit-equality* with the scalar model —
not approximate agreement.  Hypothesis drives arbitrary configuration
batches (feasible and infeasible, every architecture and sync mode,
input-pipeline and compression knobs engaged) through both paths and
requires the full :class:`~repro.mlsim.PerfEstimate` to compare equal
with ``==``, never ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, PlacementError, homogeneous, place
from repro.cluster.node import CATALOGUE
from repro.mlsim import (
    CompositeDrift,
    InfeasibleConfigError,
    PerfColumns,
    StepDrift,
    StragglerOnset,
    TrainingConfig,
    TrainingEnvironment,
    estimate,
    estimate_batch,
)
from repro.workloads import get_workload

WORKLOAD = get_workload("resnet50-imagenet")
CHEAP_WORKLOAD = get_workload("lstm-ptb")

HOMOGENEOUS = homogeneous(8)
HETEROGENEOUS = ClusterSpec(
    pools=tuple((CATALOGUE[name], 4) for name in list(CATALOGUE)[:2])
)

config_strategy = st.builds(
    TrainingConfig,
    architecture=st.sampled_from(("ps", "allreduce")),
    num_workers=st.integers(min_value=1, max_value=18),
    num_ps=st.integers(min_value=1, max_value=6),
    colocate_ps=st.booleans(),
    sync_mode=st.sampled_from(("bsp", "asp", "ssp")),
    staleness_bound=st.integers(min_value=0, max_value=12),
    batch_per_worker=st.integers(min_value=1, max_value=512),
    intra_op_threads=st.integers(min_value=0, max_value=24),
    gradient_precision=st.sampled_from(("fp32", "fp16")),
    compression_ratio=st.sampled_from((1.0, 0.5, 0.1, 0.01)),
    io_threads=st.integers(min_value=0, max_value=4),
    prefetch_batches=st.integers(min_value=0, max_value=3),
)


def scalar_reference(config, workload, cluster, factors):
    """The scalar model's answer for one config (None if infeasible)."""
    canonical = config.canonical()
    try:
        placement = place(
            cluster.total_nodes,
            canonical.num_ps if canonical.uses_ps else 0,
            canonical.num_workers,
            canonical.colocate_ps if canonical.uses_ps else False,
        )
        speeds = (
            [1.0] * canonical.num_workers
            if factors is None
            else [float(factors[n]) for n in placement.worker_nodes]
        )
        return estimate(config, workload, cluster, speed_factors=speeds)
    except (InfeasibleConfigError, PlacementError):
        return None


class TestEstimateBatchParity:
    @given(
        configs=st.lists(config_strategy, min_size=1, max_size=24),
        hetero=st.booleans(),
        randomize_speeds=st.booleans(),
        factor_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_scalar(
        self, configs, hetero, randomize_speeds, factor_seed
    ):
        cluster = HETEROGENEOUS if hetero else HOMOGENEOUS
        factors = (
            np.random.default_rng(factor_seed).uniform(0.25, 1.5, cluster.total_nodes)
            if randomize_speeds
            else None
        )
        batch = estimate_batch(
            configs, WORKLOAD, cluster, node_speed_factors=factors
        )
        assert len(batch) == len(configs)
        for i, config in enumerate(configs):
            reference = scalar_reference(config, WORKLOAD, cluster, factors)
            if reference is None:
                assert not batch.ok[i]
                assert np.isnan(batch.throughput[i])
                assert batch.bottleneck[i] is None
                with pytest.raises(InfeasibleConfigError):
                    batch.row(i)
            else:
                assert batch.ok[i]
                assert batch.row(i) == reference  # full-dataclass bit equality

    def test_rejects_wrong_factor_count(self):
        with pytest.raises(ValueError, match="speed factors"):
            estimate_batch(
                [TrainingConfig()], WORKLOAD, HOMOGENEOUS, node_speed_factors=[1.0]
            )

    def test_from_knob_columns_defaults_match_config_defaults(self):
        # A space that only searches two knobs: everything else must fall
        # back to the TrainingConfig defaults, exactly as from_dict does.
        columns = {
            "num_workers": np.array([1, 2, 5], dtype=np.int64),
            "sync_mode": np.array(["bsp", "asp", "ssp"], dtype=object),
        }
        from_columns = PerfColumns.from_knob_columns(columns, 3)
        configs = [
            TrainingConfig.from_dict({"num_workers": w, "sync_mode": s})
            for w, s in zip([1, 2, 5], ["bsp", "asp", "ssp"])
        ]
        from_configs = PerfColumns.from_configs(configs)
        for field in (
            "num_workers", "num_ps", "colocate_ps", "staleness_bound",
            "batch_per_worker", "intra_op_threads", "io_threads",
            "prefetch_batches", "uses_ps", "grad_factor", "global_batch",
            "compression_ratio",
        ):
            assert np.array_equal(
                getattr(from_columns, field), getattr(from_configs, field)
            ), field
        assert list(from_columns.sync_mode) == list(from_configs.sync_mode)


DRIFT = CompositeDrift(
    (
        StragglerOnset(at_s=100.0, fraction=0.3, slowdown=3.0),
        StepDrift(at_s=300.0, intensity=1.8),
    )
)


class TestTrueObjectiveBatchParity:
    @given(
        configs=st.lists(config_strategy, min_size=1, max_size=16),
        objective=st.sampled_from(("throughput", "tta")),
        drifted=st.booleans(),
        at_s=st.sampled_from((None, 0.0, 150.0, 500.0)),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_loop_at_fixed_clock(
        self, configs, objective, drifted, at_s
    ):
        env = TrainingEnvironment(
            WORKLOAD,
            HOMOGENEOUS,
            seed=11,
            objective_name=objective,
            drift=DRIFT if drifted else None,
        )
        env.set_clock(250.0)
        values = env.true_objective_batch(configs, at_s=at_s)
        for i, config in enumerate(configs):
            scalar = env.true_objective(config, at_s=at_s)
            if scalar is None:
                assert np.isnan(values[i])
            else:
                assert values[i] == scalar  # bitwise, not approx


class TestMeasureBatchParity:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        objective=st.sampled_from(("throughput", "tta")),
        charge_startup=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_replays_scalar_measurement_stream(self, seed, objective, charge_startup):
        def build():
            env = TrainingEnvironment(
                CHEAP_WORKLOAD,
                HOMOGENEOUS,
                seed=21,
                objective_name=objective,
                noise_cv=0.05,
                transient_failure_rate=0.2,
            )
            return env

        from repro.configspace import ml_config_space, to_training_config

        rng = np.random.default_rng(seed)
        space = ml_config_space(8)
        configs = [to_training_config(space.sample(rng)) for _ in range(12)]

        scalar_env, batch_env = build(), build()
        scalar = [
            scalar_env.measure(config, charge_startup=charge_startup)
            for config in configs
        ]
        batch = batch_env.measure_batch(configs, charge_startup=charge_startup)
        assert scalar == batch  # Measurement dataclass equality, all fields
        assert scalar_env.trials_run == batch_env.trials_run
        assert scalar_env.total_probe_cost_s == batch_env.total_probe_cost_s

    def test_event_fidelity_falls_back_to_scalar_loop(self):
        config = TrainingConfig(num_workers=4)
        scalar_env = TrainingEnvironment(CHEAP_WORKLOAD, HOMOGENEOUS, fidelity="event")
        batch_env = TrainingEnvironment(CHEAP_WORKLOAD, HOMOGENEOUS, fidelity="event")
        assert batch_env.measure_batch([config]) == [scalar_env.measure(config)]
