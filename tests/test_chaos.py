"""Chaos tests: kill sessions at arbitrary points and prove resume is exact.

Pins the PR's acceptance property: for serial, async, and pooled
executors, a session killed at an arbitrary trial index and resumed from
its checkpoint produces a final TuningResult — trials, objectives,
cost/wall/shard ledgers, best config, environment counters — bit-identical
to the uninterrupted same-seed run.  Also covers chained crashes, torn
WAL tails on the crash path, outage-injected fleets, and TuningService
crash recovery (restart the tenant, leave neighbours unperturbed).
"""

import os

import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import (
    CheckpointConfig,
    EnvironmentPool,
    EnvironmentShard,
    MLConfigTuner,
    RoundRobinScheduler,
    TenantSpec,
    TuningBudget,
    TuningService,
)
from repro.core.fleet import FailureInjector, OutageWindow
from repro.core.service import training_shard_templates
from repro.core.session import AsyncExecutor, SerialExecutor, executor_for
from repro.core.strategy import SearchStrategy
from repro.harness.chaos import (
    ChaosKill,
    KillSwitch,
    kill_resume_cycle,
    kill_resume_sweep,
    result_fingerprint,
    resume_session,
    run_baseline,
    run_with_kill,
    tear_wal,
)
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload

NODES = 8
RESNET = get_workload("resnet50-imagenet")


def space():
    return ml_config_space(NODES)


def env_factory(seed=0):
    return lambda: TrainingEnvironment(RESNET, homogeneous(NODES), seed=seed)


def bo_factory():
    return MLConfigTuner(n_initial=4)


def two_shard_pool():
    env = TrainingEnvironment(RESNET, homogeneous(NODES), seed=0)
    return EnvironmentPool(
        [
            EnvironmentShard("std", env, capacity=2),
            EnvironmentShard(
                "spot",
                TrainingEnvironment(RESNET, homogeneous(NODES), seed=1),
                capacity=2,
                cost_multiplier=0.6,
            ),
        ],
        scheduler=RoundRobinScheduler(),
    )


# One cell per acceptance executor: serial, async(workers=4), pooled.
EXECUTOR_CELLS = {
    "serial": (lambda: SerialExecutor(), env_factory()),
    "async4": (lambda: AsyncExecutor(workers=4), env_factory()),
    "pooled": (
        lambda: executor_for(4, mode="async", pool=two_shard_pool()),
        lambda: None,
    ),
}


class TestKillResumeMatrix:
    @pytest.mark.parametrize("cell", sorted(EXECUTOR_CELLS))
    def test_bo_session_resumes_bit_identical(self, cell, tmp_path):
        executor_factory, environment_factory = EXECUTOR_CELLS[cell]
        records = kill_resume_sweep(
            bo_factory,
            executor_factory,
            environment_factory,
            space(),
            TuningBudget(max_trials=10),
            str(tmp_path),
            kill_points=(1, 4, 8),
            seed=3,
        )
        assert [r["killed"] for r in records] == [True, True, True]
        assert all(r["identical"] for r in records), records
        assert all(r["trials"] == 10 for r in records)

    def test_every_index_sweep_random_search(self, tmp_path):
        records = kill_resume_sweep(
            lambda: RandomSearch(),
            lambda: SerialExecutor(),
            env_factory(seed=2),
            space(),
            TuningBudget(max_trials=8),
            str(tmp_path),
            kill_points=None,  # every trial index of the baseline
            seed=5,
        )
        assert len(records) == 8
        assert all(r["killed"] for r in records)
        assert all(r["identical"] for r in records), records

    def test_kill_resume_kill_chain(self, tmp_path):
        executor_factory, environment_factory = EXECUTOR_CELLS["serial"]
        baseline = run_baseline(
            bo_factory,
            executor_factory,
            environment_factory,
            space(),
            TuningBudget(max_trials=10),
            seed=3,
        )
        chained = kill_resume_cycle(
            bo_factory,
            executor_factory,
            environment_factory,
            space(),
            TuningBudget(max_trials=10),
            CheckpointConfig(str(tmp_path / "chain.ckpt")),
            kill_points=(2, 5, 8),
            seed=3,
        )
        assert result_fingerprint(chained) == result_fingerprint(baseline)

    def test_torn_wal_after_crash_still_resumes_identically(self, tmp_path):
        executor_factory, environment_factory = EXECUTOR_CELLS["serial"]
        budget = TuningBudget(max_trials=8)
        baseline = run_baseline(
            lambda: RandomSearch(),
            executor_factory,
            environment_factory,
            space(),
            budget,
            seed=7,
        )
        checkpoint = CheckpointConfig(str(tmp_path / "torn.ckpt"))
        assert run_with_kill(
            lambda: RandomSearch(),
            executor_factory,
            environment_factory,
            space(),
            budget,
            checkpoint,
            kill_at=5,
            seed=7,
        )
        tear_wal(checkpoint.wal_path, drop_bytes=9)  # crash mid-write(2)
        with pytest.warns(UserWarning, match="quarantined"):
            resumed = resume_session(
                lambda: RandomSearch(),
                executor_factory,
                environment_factory,
                space(),
                checkpoint,
            )
        assert result_fingerprint(resumed) == result_fingerprint(baseline)

    def test_outage_injected_pool_resumes_identically(self, tmp_path):
        def pooled_factory():
            env = TrainingEnvironment(RESNET, homogeneous(NODES), seed=0)
            pool = EnvironmentPool(
                [
                    EnvironmentShard("a", env, capacity=2),
                    EnvironmentShard("b", env, capacity=2, cost_multiplier=1.3),
                ],
                scheduler=RoundRobinScheduler(),
                injector=FailureInjector(
                    outages=[OutageWindow(shard="b", start_s=0.0, end_s=2e4)]
                ),
            )
            return executor_for(2, mode="async", pool=pool)

        records = kill_resume_sweep(
            lambda: RandomSearch(),
            pooled_factory,
            lambda: None,
            space(),
            TuningBudget(max_trials=8),
            str(tmp_path),
            kill_points=(2, 6),
            seed=9,
        )
        assert all(r["identical"] for r in records), records


class TestKillSwitch:
    def test_fires_once_and_disarms(self):
        switch = KillSwitch(kill_at=2)

        class T:
            index = 2

        with pytest.raises(ChaosKill):
            switch.on_trial_end(T())
        switch.on_trial_end(T())  # disarmed: the resumed run sails past
        assert switch.fired

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            KillSwitch(-1)


class _CrashOnce(SearchStrategy):
    """Crashes the first armed instance after ``healthy`` proposals.

    ``shared`` survives across factory calls, so the rebuilt strategy a
    recovery constructs is healthy — modelling a transient fault (OOM,
    node loss) rather than a deterministic bug.
    """

    name = "crash-once"

    def __init__(self, shared, healthy=3):
        self.shared = shared
        self.healthy = healthy
        self._calls = 0

    def reset(self):
        self._calls = 0

    def propose(self, history, space, rng):
        self._calls += 1
        if self.shared.get("armed") and self._calls > self.healthy:
            self.shared["armed"] = False
            raise RuntimeError("transient tenant crash")
        return space.sample(rng)


class _AlwaysCrash(SearchStrategy):
    """Crashes after three proposals on every instance — a real bug."""

    name = "crash-once"  # same name so the resume fingerprint matches

    def __init__(self):
        self._calls = 0

    def reset(self):
        self._calls = 0

    def propose(self, history, space, rng):
        self._calls += 1
        if self._calls > 3:
            raise RuntimeError("deterministic tenant crash")
        return space.sample(rng)


def _service(**kwargs):
    kwargs.setdefault("repository", None)
    return TuningService(
        training_shard_templates(nodes=NODES, cost_multipliers=(1.0, 1.25, 0.8, 1.5)),
        ml_config_space(NODES),
        **kwargs,
    )


def _crash_spec(shared, trials=8, seed=1):
    return TenantSpec(
        "flaky",
        lambda: _CrashOnce(shared),
        TuningBudget(max_trials=trials),
        seed=seed,
        slots=2,
        workload=RESNET,
        executor_mode="serial",
    )


def _tenant(name, seed=0, trials=8):
    return TenantSpec(
        name,
        lambda: RandomSearch(),
        TuningBudget(max_trials=trials),
        seed=seed,
        slots=2,
        workload=RESNET,
    )


def _trajectory(result):
    return [(t.config, t.objective, t.shard) for t in result.history.trials]


class TestServiceRecovery:
    def test_crashed_tenant_recovers_bit_identical(self, tmp_path):
        alone = _service().run_standalone(_crash_spec({"armed": False}))
        svc = _service(checkpoint_dir=str(tmp_path))
        handle = svc.submit(_crash_spec({"armed": True}))
        svc.run()
        assert handle.state == "done"
        assert handle.recoveries == 1
        assert _trajectory(handle.result) == _trajectory(alone)

    def test_recovery_leaves_neighbour_unperturbed(self, tmp_path):
        neighbour_alone = _service().run_standalone(_tenant("b", seed=2))
        svc = _service(checkpoint_dir=str(tmp_path))
        svc.submit(_crash_spec({"armed": True}, seed=1))
        svc.submit(_tenant("b", seed=2))
        result = svc.run()
        states = {h.spec.name: h.state for h in result.tenants}
        assert states == {"flaky": "done", "b": "done"}
        good = next(h for h in result.tenants if h.spec.name == "b")
        assert _trajectory(good.result) == _trajectory(neighbour_alone)
        # Ledger invariant survives the rollback-and-replay accounting.
        recorded = sum(svc.recorded_cost_by_shard.values())
        assert recorded <= svc.total_cost_s() + 1e-9

    def test_repeated_crash_exhausts_max_recoveries(self, tmp_path):
        svc = _service(checkpoint_dir=str(tmp_path), max_recoveries=1)
        # A deterministic bug: the rebuilt instance crashes again too.
        doomed = TenantSpec(
            "doomed",
            lambda: _AlwaysCrash(),
            TuningBudget(max_trials=12),
            seed=1,
            slots=2,
            workload=RESNET,
            executor_mode="serial",
        )
        handle = svc.submit(doomed)
        svc.run()
        assert handle.state == "failed"
        assert handle.recoveries == 1
        assert "crash" in str(handle.error)

    def test_no_checkpoint_dir_means_no_recovery(self):
        svc = _service()
        handle = svc.submit(_crash_spec({"armed": True}))
        svc.run()
        assert handle.state == "failed"
        assert handle.recoveries == 0

    def test_tenant_checkpoint_files_are_written(self, tmp_path):
        svc = _service(checkpoint_dir=str(tmp_path))
        svc.submit(_tenant("a/b c", seed=1, trials=4))
        svc.run()
        names = sorted(os.listdir(tmp_path))
        assert "a_b_c.ckpt" in names
        assert "a_b_c.ckpt.wal" in names
