"""Tests for role placement (PS/worker assignment to nodes)."""

import pytest

from repro.cluster import PlacementError, feasible, place


class TestDedicatedPlacement:
    def test_servers_then_workers(self):
        placement = place(num_nodes=8, num_ps=2, num_workers=4, colocate=False)
        assert placement.ps_nodes == (0, 1)
        assert placement.worker_nodes == (2, 3, 4, 5)
        assert not placement.colocated
        assert placement.machines_used() == 6

    def test_exact_fit(self):
        placement = place(num_nodes=6, num_ps=2, num_workers=4, colocate=False)
        assert placement.machines_used() == 6

    def test_overflow_raises(self):
        with pytest.raises(PlacementError):
            place(num_nodes=5, num_ps=2, num_workers=4, colocate=False)


class TestColocatedPlacement:
    def test_ps_round_robin_over_worker_nodes(self):
        placement = place(num_nodes=4, num_ps=3, num_workers=4, colocate=True)
        assert placement.worker_nodes == (0, 1, 2, 3)
        assert placement.ps_nodes == (0, 1, 2)
        assert placement.machines_used() == 4

    def test_more_ps_than_workers(self):
        placement = place(num_nodes=6, num_ps=6, num_workers=3, colocate=True)
        assert placement.machines_used() == 6
        assert len(placement.ps_nodes) == 6

    def test_needs_max_of_counts(self):
        with pytest.raises(PlacementError):
            place(num_nodes=3, num_ps=4, num_workers=2, colocate=True)


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(PlacementError):
            place(num_nodes=4, num_ps=1, num_workers=0, colocate=False)

    def test_negative_ps_rejected(self):
        with pytest.raises(PlacementError):
            place(num_nodes=4, num_ps=-1, num_workers=2, colocate=False)

    def test_custom_node_order(self):
        placement = place(
            num_nodes=4, num_ps=1, num_workers=2, colocate=False, node_order=[3, 1, 0, 2]
        )
        assert placement.ps_nodes == (3,)
        assert placement.worker_nodes == (1, 0)

    def test_duplicate_node_order_rejected(self):
        with pytest.raises(PlacementError):
            place(4, 1, 2, False, node_order=[0, 0, 1, 2])

    def test_unknown_node_in_order_rejected(self):
        with pytest.raises(PlacementError):
            place(4, 1, 2, False, node_order=[0, 1, 2, 9])


class TestFeasible:
    def test_matches_place_success(self):
        assert feasible(8, 2, 4, False)
        assert feasible(4, 3, 4, True)

    def test_matches_place_failure(self):
        assert not feasible(5, 2, 4, False)
        assert not feasible(3, 4, 2, True)
        assert not feasible(4, 1, 0, False)

    def test_allreduce_style_zero_ps(self):
        assert feasible(4, 0, 4, False)
        placement = place(4, 0, 4, False)
        assert placement.ps_nodes == ()
        assert placement.worker_nodes == (0, 1, 2, 3)
