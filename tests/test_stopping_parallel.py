"""Tests for stopping rules and constant-liar batch proposals."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ConfigSpace, FloatParameter, ml_config_space
from repro.core import MLConfigTuner, TrialHistory, TuningBudget
from repro.core.bo import BayesianProposer
from repro.core.parallel import (
    DEFAULT_COST_LIE_S,
    _append_fantasy,
    _fantasy_lies,
    propose_async,
    propose_batch,
    run_parallel_round,
)
from repro.core.stopping import (
    CostCapRule,
    FailureStreakRule,
    PlateauRule,
    StoppedStrategy,
    TargetRule,
)
from repro.mlsim import Measurement, TrainingConfig, TrainingEnvironment
from repro.workloads import get_workload


def make_history(objectives, cost=10.0):
    history = TrialHistory()
    for objective in objectives:
        ok = objective is not None
        history.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(),
                ok=ok,
                fidelity="analytic",
                objective=objective,
                probe_cost_s=cost,
            ),
        )
    return history


class TestPlateauRule:
    def test_fires_after_stall(self):
        rule = PlateauRule(patience=3, min_relative_gain=0.01)
        stalled = make_history([10.0, 10.0, 10.0, 10.0, 10.0])
        assert rule.should_stop(stalled)

    def test_does_not_fire_while_improving(self):
        rule = PlateauRule(patience=3, min_relative_gain=0.01)
        improving = make_history([10.0, 11.0, 12.5, 14.0, 16.0])
        assert not rule.should_stop(improving)

    def test_small_gains_do_not_reset(self):
        rule = PlateauRule(patience=3, min_relative_gain=0.05)
        barely = make_history([10.0, 10.01, 10.02, 10.03, 10.04])
        assert rule.should_stop(barely)

    def test_needs_enough_trials(self):
        rule = PlateauRule(patience=10)
        assert not rule.should_stop(make_history([1.0, 1.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            PlateauRule(patience=0)
        with pytest.raises(ValueError):
            PlateauRule(min_relative_gain=-0.1)


class TestOtherRules:
    def test_target_rule(self):
        rule = TargetRule(target=100.0)
        assert not rule.should_stop(make_history([50.0]))
        assert rule.should_stop(make_history([50.0, 120.0]))

    def test_cost_cap_rule(self):
        rule = CostCapRule(max_cost_s=25.0)
        assert not rule.should_stop(make_history([1.0, 1.0], cost=10.0))
        assert rule.should_stop(make_history([1.0, 1.0, 1.0], cost=10.0))

    def test_failure_streak_rule(self):
        rule = FailureStreakRule(streak=3)
        assert not rule.should_stop(make_history([None, None, 1.0]))
        assert rule.should_stop(make_history([1.0, None, None, None]))

    def test_reasons_are_informative(self):
        assert "trials" in PlateauRule(patience=4).reason()
        assert "cap" in CostCapRule(10.0).reason()


class TestStoppedStrategy:
    def test_plateau_ends_session_early(self):
        env = TrainingEnvironment(
            get_workload("resnet50-imagenet"), homogeneous(8), seed=0
        )
        strategy = StoppedStrategy(
            RandomSearch(), [PlateauRule(patience=5, min_relative_gain=0.02)]
        )
        result = strategy.run(
            env, ml_config_space(8), TuningBudget(max_trials=60), seed=0
        )
        assert result.num_trials < 60
        assert strategy.stop_reason is not None

    def test_wraps_bo_tuner(self):
        env = TrainingEnvironment(
            get_workload("resnet50-imagenet"), homogeneous(8), seed=0
        )
        strategy = StoppedStrategy(MLConfigTuner(seed=0), [CostCapRule(2000.0)])
        result = strategy.run(
            env, ml_config_space(8), TuningBudget(max_trials=40), seed=0
        )
        assert result.history.total_cost_s >= 2000.0 or result.num_trials == 40
        assert "stop" in strategy.name

    def test_needs_rules(self):
        with pytest.raises(ValueError):
            StoppedStrategy(RandomSearch(), [])


class TestConstantLiar:
    def _setup(self):
        space = ConfigSpace(
            [FloatParameter("x", 0.0, 1.0), FloatParameter("y", 0.0, 1.0)]
        )
        proposer = BayesianProposer(space, n_initial=4, n_candidates=128, seed=0)
        history = TrialHistory()
        rng = np.random.default_rng(0)
        for _ in range(8):
            config = space.sample(rng)
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(),
                    ok=True,
                    fidelity="analytic",
                    objective=-((config["x"] - 0.7) ** 2) - (config["y"] - 0.3) ** 2,
                    probe_cost_s=1.0,
                ),
            )
        return space, proposer, history

    def test_batch_size_and_validity(self):
        space, proposer, history = self._setup()
        rng = np.random.default_rng(1)
        batch = propose_batch(proposer, history, rng, batch_size=4)
        assert len(batch) == 4
        for config in batch:
            assert space.is_valid(config)

    def test_batch_is_diverse(self):
        space, proposer, history = self._setup()
        rng = np.random.default_rng(1)
        batch = propose_batch(proposer, history, rng, batch_size=4)
        points = np.array([[c["x"], c["y"]] for c in batch])
        # Pairwise distances must not all be ~0 (no near-duplicate batch).
        dists = [
            np.linalg.norm(points[i] - points[j])
            for i in range(4)
            for j in range(i + 1, 4)
        ]
        assert max(dists) > 0.05

    def test_fantasies_do_not_leak_into_history(self):
        space, proposer, history = self._setup()
        before = len(history)
        propose_batch(proposer, history, np.random.default_rng(2), batch_size=3)
        assert len(history) == before

    def test_run_parallel_round_records_real_results(self):
        env = TrainingEnvironment(
            get_workload("resnet50-imagenet"), homogeneous(8), seed=0
        )
        space = ml_config_space(8)
        proposer = BayesianProposer(space, n_initial=4, n_candidates=128, seed=0)
        history = TrialHistory()
        rng = np.random.default_rng(0)
        trials = run_parallel_round(proposer, env, space, history, rng, batch_size=3)
        assert len(trials) == 3
        assert len(history) == 3
        assert all(t.measurement.fidelity == "analytic" for t in trials)

    def test_validation(self):
        space, proposer, history = self._setup()
        with pytest.raises(ValueError):
            propose_batch(proposer, history, np.random.default_rng(0), batch_size=0)
        with pytest.raises(ValueError):
            propose_batch(
                proposer, history, np.random.default_rng(0), batch_size=2, lie="huge"
            )
        with pytest.raises(ValueError):
            propose_async(
                proposer, history, [], np.random.default_rng(0), lie="huge"
            )

    def test_cost_lie_falls_back_to_all_trials_then_default(self):
        """Regression: an all-failed history must not produce a 0s cost lie.

        Failed probes still burned machine time; a zero-cost fantasy is
        exactly the cost-surrogate poisoning the lie is meant to avoid.
        """
        all_failed = TrialHistory()
        for cost in (30.0, 50.0, 40.0):
            all_failed.record(
                {"x": 0.5},
                Measurement(
                    config=TrainingConfig(), ok=False, fidelity="analytic",
                    objective=None, probe_cost_s=cost,
                ),
            )
        lie_value, cost_lie = _fantasy_lies(all_failed, "incumbent")
        # No success to lie about: the objective lie is None (the fantasy
        # records as a failed probe) — any constant would fabricate an
        # objective scale, and for negated objectives (tta) 0.0 would
        # outrank every feasible value.
        assert lie_value is None
        assert cost_lie == pytest.approx(40.0)
        extended = TrialHistory()
        _append_fantasy(extended, {"x": 0.5}, lie_value=None, cost_lie=40.0)
        assert not extended[0].ok
        assert extended[0].measurement.objective is None
        assert extended[0].measurement.probe_cost_s == 40.0

        # No trials at all (or only zero-cost ones): a positive default.
        assert _fantasy_lies(TrialHistory(), "incumbent")[1] == DEFAULT_COST_LIE_S
        zero_cost = make_history([None, None], cost=0.0)
        assert _fantasy_lies(zero_cost, "incumbent")[1] == DEFAULT_COST_LIE_S
        # Zero-cost *successes* fall through too: first to the all-trials
        # median, then to the default.
        mixed = make_history([1.0], cost=0.0)
        mixed.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(), ok=False, fidelity="analytic",
                objective=None, probe_cost_s=20.0,
            ),
        )
        assert _fantasy_lies(mixed, "incumbent") == (1.0, 10.0)
        zero_success = make_history([1.0, 2.0], cost=0.0)
        assert _fantasy_lies(zero_success, "incumbent") == (2.0, DEFAULT_COST_LIE_S)

    def test_fantasy_measurement_carries_fantasy_config(self):
        """Regression: fantasies used to carry a default TrainingConfig."""
        from repro.configspace import to_training_config

        extended = TrialHistory()
        config = {"num_workers": 7, "batch_per_worker": 64}
        _append_fantasy(extended, config, lie_value=1.0, cost_lie=30.0)
        fantasy = extended[0]
        assert fantasy.measurement.fidelity == "fantasy"
        assert fantasy.measurement.config == to_training_config(config)
        assert fantasy.measurement.config.num_workers == 7
        assert fantasy.measurement.probe_cost_s == 30.0

    def test_fantasy_extension_preserves_replayed_metadata(self):
        """Regression: the per-fantasy O(k·n) replay dropped round/wall stamps."""
        history = TrialHistory()
        history.record(
            {"x": 0.1},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="analytic",
                objective=2.0, probe_cost_s=6.0,
            ),
            wall_clock_s=6.0,
            round_index=0,
            completed_at_wall_s=6.0,
        )
        history.record(
            {"x": 0.2},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="analytic",
                objective=3.0, probe_cost_s=2.0,
            ),
            wall_clock_s=0.0,
            round_index=0,
            completed_at_wall_s=2.0,
        )
        extended = history.clone()
        _append_fantasy(extended, {"x": 0.3}, lie_value=3.0, cost_lie=4.0)
        assert [t.round_index for t in extended][:2] == [0, 0]
        assert extended[0].cumulative_wall_clock_s == 6.0
        assert extended[1].cumulative_wall_clock_s == 2.0
        assert extended.total_wall_clock_s == pytest.approx(
            history.total_wall_clock_s + 4.0
        )
        # The original history is untouched.
        assert len(history) == 2
        assert history.total_cost_s == pytest.approx(8.0)

    def test_history_clone_is_isolated(self):
        history = make_history([1.0, 2.0], cost=10.0)
        clone = history.clone()
        _append_fantasy(clone, {"x": 0.9}, lie_value=2.0, cost_lie=10.0)
        assert len(clone) == 3 and len(history) == 2
        assert history.total_cost_s == pytest.approx(20.0)
        assert clone.total_cost_s == pytest.approx(30.0)

    def test_propose_async_conditions_on_pending(self):
        space, proposer, history = self._setup()
        rng = np.random.default_rng(3)
        first = propose_async(proposer, history, [], np.random.default_rng(3))
        # Fantasising the first point away must steer the next proposal
        # elsewhere — the same seed without pending returns the same point.
        again = propose_async(proposer, history, [], np.random.default_rng(3))
        assert first == again
        second = propose_async(proposer, history, [first], np.random.default_rng(3))
        assert second != first
        assert space.is_valid(second)
        assert len(history) == 2 + 6  # setup's 8 trials, no fantasy leaked
