"""Tests for the input-pipeline model (data loading/decode stage)."""

import pytest

from repro.cluster import STANDARD_CPU, homogeneous
from repro.configspace import ml_config_space
from repro.mlsim import TrainingConfig, TrainingEnvironment, estimate
from repro.mlsim.pipeline import (
    DECODE_BYTES_PER_CORE_PER_SEC,
    STORAGE_BYTES_PER_SEC,
    compute_cores_available,
    effective_iteration_time,
    input_rate_samples_per_sec,
    iteration_input_time,
)
from repro.workloads import IMAGENET, get_workload

RESNET = get_workload("resnet50-imagenet")


class TestInputRate:
    def test_zero_threads_is_unmodelled(self):
        assert input_rate_samples_per_sec(STANDARD_CPU, IMAGENET, 0) == float("inf")
        assert iteration_input_time(STANDARD_CPU, IMAGENET, 0, 256) == 0.0

    def test_decode_bound_at_few_threads(self):
        rate = input_rate_samples_per_sec(STANDARD_CPU, IMAGENET, 1)
        expected = DECODE_BYTES_PER_CORE_PER_SEC / IMAGENET.bytes_per_sample
        assert rate == pytest.approx(expected)

    def test_storage_bound_at_many_threads(self):
        # 16 threads decode 960 MB/s > 500 MB/s storage: storage binds.
        rate = input_rate_samples_per_sec(STANDARD_CPU, IMAGENET, 16)
        expected = STORAGE_BYTES_PER_SEC / IMAGENET.bytes_per_sample
        assert rate == pytest.approx(expected)

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            input_rate_samples_per_sec(STANDARD_CPU, IMAGENET, -1)


class TestEffectiveIterationTime:
    def test_prefetch_overlaps(self):
        assert effective_iteration_time(1.0, 0.6, prefetch_batches=2) == 1.0
        assert effective_iteration_time(0.5, 0.8, prefetch_batches=1) == 0.8

    def test_no_prefetch_serialises(self):
        assert effective_iteration_time(1.0, 0.6, prefetch_batches=0) == 1.6

    def test_unmodelled_input_is_free(self):
        assert effective_iteration_time(1.0, 0.0, prefetch_batches=0) == 1.0

    def test_negative_prefetch_rejected(self):
        with pytest.raises(ValueError):
            effective_iteration_time(1.0, 0.5, prefetch_batches=-1)


class TestCoresAvailable:
    def test_subtracts_io_threads(self):
        assert compute_cores_available(STANDARD_CPU, 4) == STANDARD_CPU.cores - 4

    def test_starvation_rejected(self):
        with pytest.raises(ValueError):
            compute_cores_available(STANDARD_CPU, STANDARD_CPU.cores)


class TestAnalyticIntegration:
    def test_default_config_unchanged(self):
        """io_threads=0 must reproduce the original (pipeline-free) numbers."""
        cluster = homogeneous(16, jitter_cv=0.0)
        legacy = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            RESNET, cluster,
        )
        explicit = estimate(
            TrainingConfig(
                num_workers=8, num_ps=4, batch_per_worker=32,
                io_threads=0, prefetch_batches=2,
            ),
            RESNET, cluster,
        )
        assert legacy == explicit

    def test_io_threads_steal_compute(self):
        cluster = homogeneous(16, jitter_cv=0.0)
        # Plenty of io threads: input not the bottleneck, compute loses cores.
        dedicated = estimate(
            TrainingConfig(
                num_workers=8, num_ps=4, batch_per_worker=32, io_threads=8,
            ),
            RESNET, cluster,
        )
        unmodelled = estimate(
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            RESNET, cluster,
        )
        assert dedicated.throughput < unmodelled.throughput

    def test_starved_pipeline_dominates_on_gpu_nodes(self):
        """One decode thread cannot feed a V100: throughput collapses.

        Slow CPU nodes never starve (compute dominates); fast GPU nodes do
        — exactly the asymmetry observed in practice.
        """
        cluster = homogeneous(16, "gpu-v100", jitter_cv=0.0)
        base = dict(
            num_workers=8, num_ps=8, batch_per_worker=32,
            gradient_precision="fp16",
        )
        starved = estimate(
            TrainingConfig(io_threads=1, prefetch_batches=2, **base),
            RESNET, cluster,
        )
        balanced = estimate(
            TrainingConfig(io_threads=6, prefetch_batches=2, **base),
            RESNET, cluster,
        )
        unmodelled = estimate(TrainingConfig(**base), RESNET, cluster)
        assert starved.throughput < 0.8 * unmodelled.throughput
        assert starved.throughput < balanced.throughput <= unmodelled.throughput

    def test_excessive_io_threads_infeasible(self):
        from repro.mlsim import InfeasibleConfigError, check_feasible

        with pytest.raises(InfeasibleConfigError, match="io_threads"):
            check_feasible(
                TrainingConfig(num_workers=4, num_ps=2, io_threads=16),
                RESNET,
                homogeneous(8),
            )


class TestEventIntegration:
    def test_event_sim_reflects_pipeline_bottleneck(self):
        env_starved = TrainingEnvironment(
            RESNET, homogeneous(8, "gpu-v100", jitter_cv=0.0), seed=0,
            fidelity="event", noise_cv=0.0,
        )
        env_healthy = TrainingEnvironment(
            RESNET, homogeneous(8, "gpu-v100", jitter_cv=0.0), seed=0,
            fidelity="event", noise_cv=0.0,
        )
        starved = env_starved.measure(
            TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32, io_threads=1)
        )
        healthy = env_healthy.measure(
            TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32, io_threads=6)
        )
        assert starved.throughput < healthy.throughput


class TestSpaceIntegration:
    def test_pipeline_knobs_optional(self):
        base = ml_config_space(8)
        extended = ml_config_space(8, include_pipeline=True)
        assert "io_threads" not in base
        assert "io_threads" in extended
        assert "prefetch_batches" in extended
