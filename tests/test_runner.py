"""Tests for the process-parallel harness layers (PR 5).

Covers the fork-based cell runner, ``compare_strategies(n_jobs=)``
serial-equivalence, the disk tier of the experiment memoiser, and the
``fit_workers`` process-parallel GP hyperfits.
"""

import os

import numpy as np
import pytest

from repro.baselines import RandomSearch, SimulatedAnnealing
from repro.cluster import homogeneous
from repro.core import MLConfigTuner, TuningBudget
from repro.core.gp import GaussianProcess
from repro.core.kernels import make_kernel
from repro.harness import compare_strategies, fork_available, resolve_n_jobs, run_cells
from repro.workloads import get_workload

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestRunCells:
    def test_serial_results_in_order(self):
        assert run_cells([lambda i=i: i * 3 for i in range(5)], n_jobs=1) == [
            0, 3, 6, 9, 12,
        ]

    @needs_fork
    def test_parallel_results_in_order(self):
        assert run_cells([lambda i=i: i * 3 for i in range(9)], n_jobs=3) == [
            i * 3 for i in range(9)
        ]

    @needs_fork
    def test_closures_need_no_pickling(self):
        # Lambdas over local state cannot be pickled; the fork runner must
        # still execute them.
        local = {"offset": 10}
        cells = [lambda i=i: local["offset"] + i for i in range(4)]
        assert run_cells(cells, n_jobs=2) == [10, 11, 12, 13]

    @needs_fork
    def test_cell_exception_propagates(self):
        def boom():
            raise RuntimeError("cell failed")

        with pytest.raises(RuntimeError, match="cell failed"):
            run_cells([boom, boom], n_jobs=2)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None, cells=2) == min(os.cpu_count() or 1, 2)
        assert resolve_n_jobs(8, cells=3) == 3
        assert resolve_n_jobs(1, cells=10) == 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0, cells=2)

    def test_empty(self):
        assert run_cells([], n_jobs=4) == []


class TestCompareStrategiesNJobs:
    @needs_fork
    def test_parallel_comparison_equals_serial(self):
        strategies = {
            "random": lambda seed: RandomSearch(),
            "annealing": lambda seed: SimulatedAnnealing(seed=seed),
        }
        workload = get_workload("resnet50-imagenet")
        cluster = homogeneous(8)
        budget = TuningBudget(max_trials=5)
        serial = compare_strategies(
            strategies, workload, cluster, budget, repeats=2, seed=3, n_jobs=1
        )
        parallel = compare_strategies(
            strategies, workload, cluster, budget, repeats=2, seed=3, n_jobs=4
        )
        assert serial.optimum_value == parallel.optimum_value
        for name in strategies:
            a, b = serial.outcomes[name], parallel.outcomes[name]
            assert a.normalized_best == b.normalized_best
            assert a.mean_curve == b.mean_curve
            assert a.mean_total_cost_s == b.mean_total_cost_s
            assert a.trials_to_5pct == b.trials_to_5pct


class TestDiskMemoiser:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        import repro.harness.experiments as experiments

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        experiments._memo.clear()
        yield
        experiments._memo.clear()

    def test_round_trip_without_recompute(self):
        import repro.harness.experiments as experiments

        value = experiments._memoised(
            ("cell", 1, 2.5), lambda: [[1, None, "x", 2.5]]
        )
        experiments._memo.clear()  # simulate a fresh process
        calls = []
        reloaded = experiments._memoised(
            ("cell", 1, 2.5), lambda: calls.append(1) or [["fresh"]]
        )
        assert calls == []
        assert reloaded == value

    def test_distinct_keys_do_not_collide(self):
        import repro.harness.experiments as experiments

        experiments._memoised(("k", 1), lambda: "one")
        experiments._memo.clear()
        assert experiments._memoised(("k", 2), lambda: "two") == "two"

    def test_numpy_scalars_serialisable(self):
        import repro.harness.experiments as experiments

        value = experiments._memoised(
            ("np-cell",), lambda: [[np.float64(1.5), np.int64(3)]]
        )
        experiments._memo.clear()
        assert experiments._memoised(("np-cell",), lambda: None) == [[1.5, 3]]
        assert value[0][0] == 1.5

    def test_unserialisable_values_stay_memory_only(self, tmp_path):
        import repro.harness.experiments as experiments

        value = experiments._memoised(("obj-cell",), lambda: {("tuple", "key"): 1})
        assert value == {("tuple", "key"): 1}
        assert not [f for f in os.listdir(tmp_path) if f.startswith("cell-")]
        # memory tier still serves it
        assert experiments._memoised(("obj-cell",), lambda: None) == value

    def test_clear_experiment_cache_wipes_disk(self, tmp_path):
        import repro.harness.experiments as experiments

        experiments._memoised(("wipe-cell",), lambda: [1, 2, 3])
        assert [f for f in os.listdir(tmp_path) if f.startswith("cell-")]
        experiments.clear_experiment_cache()
        assert not [f for f in os.listdir(tmp_path) if f.startswith("cell-")]
        calls = []
        experiments._memoised(("wipe-cell",), lambda: calls.append(1) or [9])
        assert calls == [1]

    def test_experiment_table_round_trips_through_disk(self):
        import repro.harness.experiments as experiments

        kwargs = dict(node_counts=(8,), budget_trials=3, seed=0)
        cold = experiments.exp_f5_scalability(**kwargs)
        experiments._memo.clear()
        warm = experiments.exp_f5_scalability(**kwargs)
        assert [list(map(str, r)) for r in warm.rows] == [
            list(map(str, r)) for r in cold.rows
        ]


class TestFitWorkers:
    @needs_fork
    def test_parallel_hyperfit_bit_identical_to_serial(self):
        rng = np.random.default_rng(4)
        x = rng.random((48, 5))
        y = np.sin(4.0 * x[:, 0]) - x[:, 2] + 0.05 * rng.standard_normal(48)
        serial = GaussianProcess(
            kernel=make_kernel("matern52", 5), restarts=3, fit_workers=1
        ).fit(x, y)
        fanned = GaussianProcess(
            kernel=make_kernel("matern52", 5), restarts=3, fit_workers=3
        ).fit(x, y)
        assert np.array_equal(
            serial.kernel.get_log_params(), fanned.kernel.get_log_params()
        )
        assert serial.noise_variance == fanned.noise_variance
        assert serial.log_marginal_likelihood() == fanned.log_marginal_likelihood()
        mean_a, var_a = serial.predict(x[:5])
        mean_b, var_b = fanned.predict(x[:5])
        assert np.array_equal(mean_a, mean_b)
        assert np.array_equal(var_a, var_b)

    def test_fit_workers_validated(self):
        with pytest.raises(ValueError):
            GaussianProcess(fit_workers=0)
        with pytest.raises(ValueError):
            MLConfigTuner(fit_workers=0)

    @needs_fork
    def test_tuner_fit_workers_reproduces_serial_session(self):
        from repro.mlsim import TrainingEnvironment
        from repro.configspace import ml_config_space

        workload = get_workload("resnet50-imagenet")
        cluster = homogeneous(8)
        space = ml_config_space(8)
        budget = TuningBudget(max_trials=12)

        def run(fit_workers):
            env = TrainingEnvironment(workload, cluster, seed=0)
            tuner = MLConfigTuner(seed=0, fit_workers=fit_workers)
            return tuner.run(env, space, budget, seed=0)

        serial = run(1)
        fanned = run(2)
        assert serial.best_objective == fanned.best_objective
        assert serial.best_config == fanned.best_config
        assert [t.config for t in serial.history] == [t.config for t in fanned.history]


class TestVectorizedCandidateFlag:
    def test_scalar_fallback_deterministic_and_valid(self):
        from repro.configspace import ml_config_space
        from repro.core.bo import BayesianProposer
        from repro.core.trial import TrialHistory
        from repro.mlsim import Measurement, TrainingConfig

        space = ml_config_space(8)

        def history():
            rng = np.random.default_rng(0)
            h = TrialHistory()
            for _ in range(12):
                c = space.sample(rng)
                h.record(
                    c,
                    Measurement(
                        config=TrainingConfig(),
                        ok=True,
                        fidelity="analytic",
                        objective=float(rng.random() * 10),
                        probe_cost_s=60.0,
                    ),
                )
            return h

        proposals = {}
        for vectorized in (False, True):
            h = history()
            proposer = BayesianProposer(
                space, n_initial=4, vectorized_candidates=vectorized, seed=0
            )
            rng = np.random.default_rng(9)
            first = proposer.propose(h, rng)
            assert space.is_valid(first)
            # same flag + same seed: bit-reproducible
            again = BayesianProposer(
                space, n_initial=4, vectorized_candidates=vectorized, seed=0
            ).propose(history(), np.random.default_rng(9))
            assert first == again
            proposals[vectorized] = first
        assert all(space.is_valid(c) for c in proposals.values())
