"""Tests for knob-importance analysis and fidelity cross-validation."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import GPFitError, TuningBudget, knob_importance, ranked_knobs
from repro.core.trial import TrialHistory
from repro.mlsim import (
    Measurement,
    TrainingConfig,
    TrainingEnvironment,
    cross_validate,
)
from repro.workloads import get_workload


def tuning_session(workload_name="resnet50-imagenet", trials=30, seed=0, nodes=8):
    env = TrainingEnvironment(get_workload(workload_name), homogeneous(nodes), seed=seed)
    space = ml_config_space(nodes)
    result = RandomSearch().run(env, space, TuningBudget(max_trials=trials), seed=seed)
    return result.history, space


class TestKnobImportance:
    def test_sums_to_one_and_covers_all_knobs(self):
        history, space = tuning_session()
        importance = knob_importance(history, space, seed=0)
        assert set(importance) == set(space.names())
        assert sum(importance.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in importance.values())

    def test_ranked_knobs_sorted(self):
        history, space = tuning_session()
        ranking = ranked_knobs(history, space, seed=0)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_needs_enough_successes(self):
        space = ml_config_space(8)
        history = TrialHistory()
        with pytest.raises(GPFitError, match="at least 4"):
            knob_importance(history, space)

    def test_irrelevant_knob_detected_on_synthetic_surface(self):
        """A knob the objective ignores must rank below one it tracks."""
        from repro.configspace import ConfigSpace, IntParameter

        space = ConfigSpace(
            [IntParameter("active", 1, 100), IntParameter("inert", 1, 100)]
        )
        rng = np.random.default_rng(0)
        history = TrialHistory()
        for _ in range(30):
            config = space.sample(rng)
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(),
                    ok=True,
                    fidelity="analytic",
                    objective=float(config["active"]),  # inert ignored
                    probe_cost_s=1.0,
                ),
            )
        importance = knob_importance(history, space, seed=0)
        assert importance["active"] > importance["inert"]

    def test_parallelism_knobs_matter_for_resnet(self):
        """The worker/batch axis must rank above staleness for a
        compute-bound BSP-friendly workload."""
        history, space = tuning_session(trials=40)
        importance = knob_importance(history, space, seed=0)
        parallelism = importance["num_workers"] + importance["batch_per_worker"]
        assert parallelism > importance["staleness_bound"]


class TestCrossValidation:
    def test_report_structure(self):
        report = cross_validate(
            get_workload("lstm-ptb"),
            homogeneous(8, jitter_cv=0.0),
            num_configs=6,
            seed=0,
        )
        assert len(report.points) == 6
        assert report.best_ratio <= report.worst_ratio
        assert -1.0 <= report.rank_correlation <= 1.0

    def test_fidelities_agree_within_factor_two(self):
        report = cross_validate(
            get_workload("resnet50-imagenet"),
            homogeneous(8, jitter_cv=0.0),
            num_configs=8,
            seed=0,
        )
        assert float(np.exp(report.mean_abs_log_ratio)) < 1.6
        assert 0.45 < report.best_ratio
        assert report.worst_ratio < 2.2

    def test_rank_correlation_high(self):
        """Analytic ordering must match event ordering (the key property)."""
        report = cross_validate(
            get_workload("resnet50-imagenet"),
            homogeneous(8, jitter_cv=0.0),
            num_configs=10,
            seed=0,
        )
        assert report.rank_correlation > 0.8

    def test_num_configs_validation(self):
        with pytest.raises(ValueError):
            cross_validate(
                get_workload("lstm-ptb"), homogeneous(8), num_configs=2
            )

    def test_summary_row(self):
        report = cross_validate(
            get_workload("lstm-ptb"),
            homogeneous(8, jitter_cv=0.0),
            num_configs=5,
            seed=0,
        )
        row = report.summary_row("lstm-ptb")
        assert row[0] == "lstm-ptb"
        assert row[1] == 5
