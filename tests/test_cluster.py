"""Tests for node specs, cluster assembly, and heterogeneity."""

import pytest

from repro.cluster import (
    CATALOGUE,
    Cluster,
    ClusterSpec,
    NodeSpec,
    STANDARD_CPU,
    homogeneous,
)
from repro.sim import RngRegistry, Simulator


class TestNodeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", cores=0, mem_gb=1, gpus=0, gflops=1, nic_gbps=1)
        with pytest.raises(ValueError):
            NodeSpec("bad", cores=1, mem_gb=1, gpus=0, gflops=0, nic_gbps=1)
        with pytest.raises(ValueError):
            NodeSpec("bad", cores=1, mem_gb=1, gpus=0, gflops=1, nic_gbps=0)
        with pytest.raises(ValueError):
            NodeSpec("bad", cores=1, mem_gb=0, gpus=0, gflops=1, nic_gbps=1)

    def test_nic_bytes_per_sec(self):
        spec = NodeSpec("n", cores=4, mem_gb=8, gpus=0, gflops=100, nic_gbps=8.0)
        assert spec.nic_bytes_per_sec == pytest.approx(1e9)

    def test_catalogue_entries_valid(self):
        assert "std-cpu" in CATALOGUE
        for spec in CATALOGUE.values():
            assert spec.gflops > 0


class TestNodeCompute:
    def _node(self):
        from repro.cluster import Node

        node = Node(node_id=0, spec=STANDARD_CPU)
        node.attach(Simulator())
        return node

    def test_compute_time_scales_with_flops(self):
        node = self._node()
        assert node.compute_seconds(2e9) == pytest.approx(2 * node.compute_seconds(1e9))

    def test_full_parallelism_equals_zero(self):
        node = self._node()
        cores = node.spec.cores
        assert node.compute_seconds(1e9, 0) == node.compute_seconds(1e9, cores)

    def test_fewer_threads_is_slower_overall(self):
        node = self._node()
        assert node.compute_seconds(1e9, 1) > node.compute_seconds(1e9, 0)

    def test_partial_threads_beat_proportional_share(self):
        """Fewer threads get a mild efficiency bonus over linear share."""
        node = self._node()
        half = node.spec.cores // 2
        linear = node.compute_seconds(1e9, 0) * 2
        assert node.compute_seconds(1e9, half) < linear

    def test_speed_factor_scales_throughput(self):
        from repro.cluster import Node

        fast = Node(node_id=0, spec=STANDARD_CPU, speed_factor=1.0)
        slow = Node(node_id=1, spec=STANDARD_CPU, speed_factor=0.5)
        assert slow.compute_seconds(1e9) == pytest.approx(2 * fast.compute_seconds(1e9))

    def test_invalid_inputs(self):
        node = self._node()
        with pytest.raises(ValueError):
            node.compute_seconds(-1.0)
        with pytest.raises(ValueError):
            node.compute_seconds(1.0, -1)


class TestClusterSpec:
    def test_homogeneous_builder(self):
        spec = homogeneous(8)
        assert spec.total_nodes == 8
        assert spec.is_homogeneous

    def test_homogeneous_by_name(self):
        spec = homogeneous(4, "gpu-v100")
        assert spec.pools[0][0].name == "gpu-v100"

    def test_unknown_node_name(self):
        with pytest.raises(KeyError):
            homogeneous(4, "quantum-node")

    def test_heterogeneous_pools(self):
        spec = ClusterSpec(pools=((CATALOGUE["std-cpu"], 4), (CATALOGUE["big-cpu"], 2)))
        assert spec.total_nodes == 6
        assert not spec.is_homogeneous
        assert len(spec.node_specs()) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(pools=())
        with pytest.raises(ValueError):
            ClusterSpec(pools=((STANDARD_CPU, 0),))
        with pytest.raises(ValueError):
            homogeneous(4, straggler_fraction=1.5)
        with pytest.raises(ValueError):
            homogeneous(4, straggler_slowdown=0.0)


class TestClusterInstantiation:
    def test_deterministic_given_seed(self):
        spec = homogeneous(8, straggler_fraction=0.25, jitter_cv=0.05)
        a = Cluster(Simulator(), spec, RngRegistry(3))
        b = Cluster(Simulator(), spec, RngRegistry(3))
        assert [n.speed_factor for n in a.nodes] == [n.speed_factor for n in b.nodes]

    def test_different_seeds_differ(self):
        spec = homogeneous(8, straggler_fraction=0.25, jitter_cv=0.05)
        a = Cluster(Simulator(), spec, RngRegistry(3))
        b = Cluster(Simulator(), spec, RngRegistry(4))
        assert [n.speed_factor for n in a.nodes] != [n.speed_factor for n in b.nodes]

    def test_straggler_count(self):
        spec = homogeneous(16, straggler_fraction=0.25, straggler_slowdown=0.5, jitter_cv=0.0)
        cluster = Cluster(Simulator(), spec, RngRegistry(0))
        slow = [n for n in cluster.nodes if n.speed_factor < 0.9]
        assert len(slow) == 4
        for node in slow:
            assert node.speed_factor == pytest.approx(0.5)

    def test_no_stragglers_by_default(self):
        cluster = Cluster(Simulator(), homogeneous(8, jitter_cv=0.0), RngRegistry(0))
        assert all(n.speed_factor == 1.0 for n in cluster.nodes)
        assert cluster.slowest_factor() == 1.0

    def test_jitter_spreads_speed_factors(self):
        spec = homogeneous(16, jitter_cv=0.1)
        cluster = Cluster(Simulator(), spec, RngRegistry(1))
        factors = [n.speed_factor for n in cluster.nodes]
        assert len(set(factors)) > 1

    def test_fabric_has_all_nodes(self):
        cluster = Cluster(Simulator(), homogeneous(5), RngRegistry(0))
        assert len(cluster.fabric.egress_capacity) == 5
        assert len(cluster) == 5
        assert cluster.node(3).node_id == 3
