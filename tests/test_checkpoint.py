"""Tests for the checkpoint/resume subsystem's serialization and recovery.

Covers the torn-write satellite end to end: payload round-trips at the
bit level, WAL torn-tail quarantine, corrupt/truncated/empty snapshots,
version mismatches, divergence detection, the durable trial log, and the
repository quarantine — every failure produces a clean named error or
recovers to the last durable record, never a raw ``json.JSONDecodeError``.
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    MLConfigTuner,
    TuningBudget,
)
from repro.core.checkpoint import CheckpointJournal
from repro.core.session import JsonlTrialLog, TuningSession
from repro.core.transfer import HistoryRepository
from repro.core.trial import (
    RestoredEvent,
    Trial,
    TrialHistory,
    measurement_from_payload,
    measurement_to_payload,
)
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload

NODES = 8


def space():
    return ml_config_space(NODES)


def make_env(seed=0):
    return TrainingEnvironment(
        get_workload("resnet50-imagenet"), homogeneous(NODES), seed=seed
    )


def run_checkpointed(tmp_path, trials=8, seed=1, name="s.ckpt"):
    ckpt = CheckpointConfig(str(tmp_path / name))
    result = TuningSession(RandomSearch()).run(
        make_env(), space(), TuningBudget(max_trials=trials), seed=seed,
        checkpoint=ckpt,
    )
    return ckpt, result


# -- payload round-trips -----------------------------------------------------


def test_measurement_payload_roundtrip_is_bit_exact():
    env = make_env()
    rng = np.random.default_rng(0)
    from repro.configspace import to_training_config

    for _ in range(5):
        config = space().sample(rng)
        m = env.measure(to_training_config(config))
        m2 = measurement_from_payload(
            json.loads(json.dumps(measurement_to_payload(m)))
        )
        assert measurement_to_payload(m2) == measurement_to_payload(m)
        assert m2.objective == m.objective
        assert m2.tta_s == m.tta_s  # inf round-trips


def test_history_payload_roundtrip_is_bit_exact():
    result = TuningSession(RandomSearch()).run(
        make_env(), space(), TuningBudget(max_trials=6), seed=3
    )
    history = result.history
    history.record_event(RestoredEvent("marker", {"trial_index": 2}))
    payload = json.loads(json.dumps(history.to_payload()))
    restored = TrialHistory.from_payload(payload)
    assert restored.to_payload() == history.to_payload()
    assert restored.total_cost_s == history.total_cost_s
    assert restored.total_wall_clock_s == history.total_wall_clock_s
    assert restored.cost_by_shard() == history.cost_by_shard()
    assert restored.events[-1].trial_index == 2


def test_restored_event_preserves_fields_and_raises_on_missing():
    event = RestoredEvent("DriftEvent", {"trial_index": 7})
    assert event.trial_index == 7
    with pytest.raises(AttributeError):
        event.nonexistent


# -- torn-write recovery -----------------------------------------------------


def test_torn_final_wal_record_recovers_to_last_durable(tmp_path):
    ckpt, baseline = run_checkpointed(tmp_path)
    wal = ckpt.wal_path
    size = os.path.getsize(wal)
    with open(wal, "r+b") as handle:
        handle.truncate(size - 7)  # mid-record
    with pytest.warns(UserWarning, match="quarantined"):
        result = TuningSession(RandomSearch()).resume(ckpt, make_env(), space())
    # The torn tail re-probes live; the continuation is still identical.
    assert result.history.to_payload() == baseline.history.to_payload()
    assert os.path.exists(ckpt.quarantine_path)


def test_corrupt_wal_middle_quarantines_suffix(tmp_path):
    ckpt, baseline = run_checkpointed(tmp_path)
    with open(ckpt.wal_path) as handle:
        lines = handle.read().splitlines()
    lines[3] = '{"type": %% garbage'
    with open(ckpt.wal_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.warns(UserWarning, match="quarantined"):
        result = TuningSession(RandomSearch()).resume(ckpt, make_env(), space())
    assert result.history.to_payload() == baseline.history.to_payload()


def test_truncated_snapshot_falls_back_to_wal_header(tmp_path):
    ckpt, baseline = run_checkpointed(tmp_path)
    with open(ckpt.path, "w") as handle:
        handle.write('{"version": 1, "meta"')  # torn snapshot write
    with pytest.warns(UserWarning, match="recovering session metadata"):
        result = TuningSession(RandomSearch()).resume(ckpt, make_env(), space())
    assert result.history.to_payload() == baseline.history.to_payload()


def test_empty_snapshot_falls_back_to_wal_header(tmp_path):
    ckpt, baseline = run_checkpointed(tmp_path)
    open(ckpt.path, "w").close()
    with pytest.warns(UserWarning, match="recovering session metadata"):
        result = TuningSession(RandomSearch()).resume(ckpt, make_env(), space())
    assert result.history.to_payload() == baseline.history.to_payload()


def test_missing_wal_is_a_named_error(tmp_path):
    ckpt = CheckpointConfig(str(tmp_path / "nothing.ckpt"))
    with pytest.raises(CheckpointError, match="nothing to resume"):
        TuningSession(RandomSearch()).resume(ckpt, make_env(), space())


def test_both_snapshot_and_header_unreadable_is_a_named_error(tmp_path):
    ckpt = CheckpointConfig(str(tmp_path / "s.ckpt"))
    open(ckpt.path, "w").close()
    with open(ckpt.wal_path, "w") as handle:
        handle.write("not json at all\n")
    with pytest.raises(CheckpointError, match="unreadable"):
        TuningSession(RandomSearch()).resume(ckpt, make_env(), space())


def test_version_mismatch_is_a_named_error(tmp_path):
    ckpt, _ = run_checkpointed(tmp_path)
    with open(ckpt.path) as handle:
        snapshot = json.load(handle)
    snapshot["version"] = CHECKPOINT_VERSION + 1
    with open(ckpt.path, "w") as handle:
        json.dump(snapshot, handle)
    with pytest.raises(CheckpointError, match="version"):
        TuningSession(RandomSearch()).restore(ckpt, make_env(), space())
    with pytest.raises(CheckpointError, match="version"):
        Checkpoint.load(ckpt.path)


def test_wal_header_version_mismatch_is_a_named_error(tmp_path):
    ckpt, _ = run_checkpointed(tmp_path)
    os.unlink(ckpt.path)
    with open(ckpt.wal_path) as handle:
        lines = handle.read().splitlines()
    header = json.loads(lines[0])
    header["version"] = CHECKPOINT_VERSION + 1
    lines[0] = json.dumps(header)
    with open(ckpt.wal_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match="version"):
        CheckpointJournal.load(ckpt)


# -- fingerprint/divergence validation ---------------------------------------


def test_resume_with_wrong_strategy_is_rejected(tmp_path):
    ckpt, _ = run_checkpointed(tmp_path)
    with pytest.raises(CheckpointError, match="strategy"):
        TuningSession(MLConfigTuner()).restore(ckpt, make_env(), space())


def test_resume_with_wrong_space_is_rejected(tmp_path):
    ckpt, _ = run_checkpointed(tmp_path)
    with pytest.raises(CheckpointError, match="search space"):
        TuningSession(RandomSearch()).restore(
            ckpt, make_env(), ml_config_space(NODES * 2)
        )


def test_resume_with_wrong_executor_is_rejected(tmp_path):
    from repro.core.session import AsyncExecutor

    ckpt, _ = run_checkpointed(tmp_path)
    with pytest.raises(CheckpointError, match="executor"):
        TuningSession(RandomSearch(), executor=AsyncExecutor(4)).restore(
            ckpt, make_env(), space()
        )


def test_resume_with_different_seed_diverges_loudly(tmp_path):
    ckpt, _ = run_checkpointed(tmp_path, seed=1)
    with open(ckpt.path) as handle:
        snapshot = json.load(handle)
    snapshot["meta"]["seed"] = 2  # simulate operator error
    with open(ckpt.path, "w") as handle:
        json.dump(snapshot, handle)
    session = TuningSession(RandomSearch())
    with pytest.raises(CheckpointError, match="diverged"):
        session.restore(ckpt, make_env(), space())
        while session.step():
            pass


# -- inspection surface ------------------------------------------------------


def test_checkpoint_load_reports_progress(tmp_path):
    ckpt, result = run_checkpointed(tmp_path, trials=8)
    loaded = Checkpoint.load(ckpt.path)
    assert loaded.version == CHECKPOINT_VERSION
    assert loaded.status == "complete"
    assert len(loaded.history) == 8
    assert loaded.wal_trials == 8
    assert loaded.wal_probes >= 8
    assert loaded.meta["seed"] == 1
    assert loaded.meta["budget"]["max_trials"] == 8
    assert loaded.history.to_payload() == result.history.to_payload()


def test_snapshot_cadence_bounds_snapshot_staleness(tmp_path):
    ckpt = CheckpointConfig(str(tmp_path / "s.ckpt"), every_n_trials=4)

    class Kill(Exception):
        pass

    from repro.core.session import SessionCallback

    class Killer(SessionCallback):
        def on_trial_end(self, trial):
            if trial.index == 5:
                raise Kill()

    session = TuningSession(RandomSearch(), callbacks=[Killer()])
    with pytest.raises(Kill):
        session.run(
            make_env(), space(), TuningBudget(max_trials=8), seed=1,
            checkpoint=ckpt,
        )
    loaded = Checkpoint.load(ckpt.path)
    # Snapshot refreshed at trial 4; WAL is per-probe durable beyond it.
    assert len(loaded.history) == 4
    assert loaded.wal_trials == 6
    assert loaded.status == "running"


def test_strategy_snapshot_state_is_recorded_for_bo(tmp_path):
    ckpt = CheckpointConfig(str(tmp_path / "s.ckpt"))
    TuningSession(MLConfigTuner(n_initial=4)).run(
        make_env(), space(), TuningBudget(max_trials=6), seed=2, checkpoint=ckpt
    )
    loaded = Checkpoint.load(ckpt.path)
    state = loaded.strategy_state
    assert state is not None
    assert state["incumbent"] is not None
    assert state["surrogate"]["n"] >= 4


# -- durable trial log -------------------------------------------------------


def test_durable_trial_log_matches_buffered(tmp_path):
    buffered, durable = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    TuningSession(RandomSearch(), callbacks=[JsonlTrialLog(buffered)]).run(
        make_env(), space(), TuningBudget(max_trials=5), seed=4
    )
    TuningSession(
        RandomSearch(), callbacks=[JsonlTrialLog(durable, durable=True)]
    ).run(make_env(), space(), TuningBudget(max_trials=5), seed=4)
    with open(buffered) as a, open(durable) as b:
        assert a.read() == b.read()


# -- repository quarantine ---------------------------------------------------


def _write_repo_with_corruption(path):
    repo = HistoryRepository(str(path))
    repo.add_session("w1", [({"a": 1}, 1.0), ({"a": 2}, 2.0)])
    repo.add_session("w2", [({"a": 3}, 3.0), ({"a": 4}, 4.0)])
    with open(path, "a") as handle:
        handle.write("{torn json line\n")
        handle.write('["not", "an", "object"]\n')


def test_repository_quarantines_corrupt_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    _write_repo_with_corruption(path)
    with pytest.warns(UserWarning, match=r"history\.jsonl:3"):
        repo = HistoryRepository(str(path))
    assert len(repo) == 2
    assert repo.quarantined_lines == 2
    assert sorted(repo.workloads()) == ["w1", "w2"]
    with open(str(path) + ".quarantine") as handle:
        assert len(handle.read().splitlines()) == 2


def test_repository_strict_mode_still_fails_loudly(tmp_path):
    path = tmp_path / "history.jsonl"
    _write_repo_with_corruption(path)
    with pytest.raises(ValueError, match="corrupt repository line"):
        HistoryRepository(str(path), strict=True)


def test_repository_quarantine_keeps_writes_working(tmp_path):
    path = tmp_path / "history.jsonl"
    _write_repo_with_corruption(path)
    with pytest.warns(UserWarning):
        repo = HistoryRepository(str(path))
    repo.add_session("w3", [({"a": 5}, 5.0), ({"a": 6}, 6.0)])
    clean = HistoryRepository(str(path))  # no warning: file was rewritten
    assert len(clean) == 3


# -- config validation -------------------------------------------------------


def test_checkpoint_config_validation():
    with pytest.raises(ValueError):
        CheckpointConfig("")
    with pytest.raises(ValueError):
        CheckpointConfig("x.ckpt", every_n_trials=0)
    ckpt = CheckpointConfig("x.ckpt")
    assert ckpt.wal_path == "x.ckpt.wal"
    assert ckpt.quarantine_path == "x.ckpt.wal.quarantine"
