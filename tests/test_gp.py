"""Tests (incl. property-based) for kernels and Gaussian-process regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GPFitError, GaussianProcess, Matern52, RBF, make_kernel


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_self_covariance_is_variance(self, kernel_cls):
        kernel = kernel_cls(3, variance=2.5)
        x = np.random.default_rng(0).random((5, 3))
        cov = kernel(x, x)
        assert np.allclose(np.diag(cov), 2.5)

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_symmetry(self, kernel_cls):
        kernel = kernel_cls(2)
        x = np.random.default_rng(1).random((6, 2))
        cov = kernel(x, x)
        assert np.allclose(cov, cov.T)

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_positive_semidefinite(self, kernel_cls):
        kernel = kernel_cls(4)
        x = np.random.default_rng(2).random((10, 4))
        eigenvalues = np.linalg.eigvalsh(kernel(x, x))
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_covariance_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls(1)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_log_param_roundtrip(self):
        kernel = Matern52(3, variance=1.7)
        kernel.lengthscales = np.array([0.2, 0.5, 1.2])
        params = kernel.get_log_params()
        other = Matern52(3)
        other.set_log_params(params)
        assert other.variance == pytest.approx(1.7)
        assert np.allclose(other.lengthscales, [0.2, 0.5, 1.2])

    def test_set_log_params_shape_checked(self):
        kernel = Matern52(3)
        with pytest.raises(ValueError):
            kernel.set_log_params(np.zeros(2))

    def test_make_kernel(self):
        assert isinstance(make_kernel("rbf", 2), RBF)
        assert isinstance(make_kernel("matern52", 2), Matern52)
        with pytest.raises(KeyError):
            make_kernel("periodic", 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Matern52(0)
        with pytest.raises(ValueError):
            RBF(2, variance=-1.0)


class TestGaussianProcess:
    def _data(self, n=20, dim=2, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((n, dim))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
        return x, y

    def test_interpolates_training_points(self):
        x, y = self._data()
        gp = GaussianProcess(noise_variance=1e-6, fit_noise=False, restarts=1).fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, atol=0.05)

    def test_variance_small_at_data_large_far_away(self):
        x, y = self._data()
        gp = GaussianProcess(restarts=1).fit(x, y)
        _, var_at_data = gp.predict(x[:1])
        _, var_far = gp.predict(np.array([[10.0, 10.0]]))
        assert var_far[0] > 5 * var_at_data[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_mismatched_shapes_rejected(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((5, 2)), np.zeros(4))

    def test_non_finite_data_rejected(self):
        gp = GaussianProcess()
        x = np.zeros((3, 2))
        y = np.array([1.0, np.nan, 2.0])
        with pytest.raises(GPFitError):
            gp.fit(x, y)

    def test_hyperparameter_fit_improves_lml(self):
        x, y = self._data(n=25)
        unfit = GaussianProcess(restarts=0)
        unfit.fit(x, y, optimize_hypers=False)
        before = unfit.log_marginal_likelihood()
        fit = GaussianProcess(restarts=2)
        fit.fit(x, y, optimize_hypers=True)
        after = fit.log_marginal_likelihood()
        assert after >= before - 1e-6

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).random((6, 2))
        y = np.full(6, 3.0)
        gp = GaussianProcess(restarts=1).fit(x, y)
        mean, _ = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=0.1)

    def test_single_observation(self):
        gp = GaussianProcess(restarts=0).fit(np.array([[0.5]]), np.array([2.0]))
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.2)

    def test_prediction_in_original_units(self):
        """Standardisation must be invisible to the caller."""
        x, y = self._data()
        y_scaled = y * 1000 + 5000
        gp = GaussianProcess(restarts=1).fit(x, y_scaled)
        mean, _ = gp.predict(x)
        assert np.corrcoef(mean, y_scaled)[0, 1] > 0.99

    def test_num_observations(self):
        x, y = self._data(n=7)
        gp = GaussianProcess(restarts=0)
        assert gp.num_observations == 0
        gp.fit(x, y, optimize_hypers=False)
        assert gp.num_observations == 7

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_posterior_mean_bounded_by_data_for_smooth_fits(self, seed):
        """Posterior mean at interior points stays within a sane envelope."""
        rng = np.random.default_rng(seed)
        x = rng.random((12, 2))
        y = rng.random(12)
        gp = GaussianProcess(restarts=0).fit(x, y, optimize_hypers=False)
        mean, var = gp.predict(rng.random((5, 2)))
        spread = y.max() - y.min() + 1e-9
        assert np.all(mean > y.min() - 3 * spread)
        assert np.all(mean < y.max() + 3 * spread)
        assert np.all(var >= 0)
