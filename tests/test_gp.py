"""Tests (incl. property-based) for kernels and Gaussian-process regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GPFitError,
    GaussianProcess,
    Matern52,
    RBF,
    SparseGaussianProcess,
    SurrogateFactory,
    make_kernel,
)


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_self_covariance_is_variance(self, kernel_cls):
        kernel = kernel_cls(3, variance=2.5)
        x = np.random.default_rng(0).random((5, 3))
        cov = kernel(x, x)
        assert np.allclose(np.diag(cov), 2.5)

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_symmetry(self, kernel_cls):
        kernel = kernel_cls(2)
        x = np.random.default_rng(1).random((6, 2))
        cov = kernel(x, x)
        assert np.allclose(cov, cov.T)

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_positive_semidefinite(self, kernel_cls):
        kernel = kernel_cls(4)
        x = np.random.default_rng(2).random((10, 4))
        eigenvalues = np.linalg.eigvalsh(kernel(x, x))
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_covariance_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls(1)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_log_param_roundtrip(self):
        kernel = Matern52(3, variance=1.7)
        kernel.lengthscales = np.array([0.2, 0.5, 1.2])
        params = kernel.get_log_params()
        other = Matern52(3)
        other.set_log_params(params)
        assert other.variance == pytest.approx(1.7)
        assert np.allclose(other.lengthscales, [0.2, 0.5, 1.2])

    def test_set_log_params_shape_checked(self):
        kernel = Matern52(3)
        with pytest.raises(ValueError):
            kernel.set_log_params(np.zeros(2))

    def test_make_kernel(self):
        assert isinstance(make_kernel("rbf", 2), RBF)
        assert isinstance(make_kernel("matern52", 2), Matern52)
        with pytest.raises(KeyError):
            make_kernel("periodic", 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Matern52(0)
        with pytest.raises(ValueError):
            RBF(2, variance=-1.0)


class TestGaussianProcess:
    def _data(self, n=20, dim=2, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((n, dim))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
        return x, y

    def test_interpolates_training_points(self):
        x, y = self._data()
        gp = GaussianProcess(noise_variance=1e-6, fit_noise=False, restarts=1).fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, atol=0.05)

    def test_variance_small_at_data_large_far_away(self):
        x, y = self._data()
        gp = GaussianProcess(restarts=1).fit(x, y)
        _, var_at_data = gp.predict(x[:1])
        _, var_far = gp.predict(np.array([[10.0, 10.0]]))
        assert var_far[0] > 5 * var_at_data[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_mismatched_shapes_rejected(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((5, 2)), np.zeros(4))

    def test_non_finite_data_rejected(self):
        gp = GaussianProcess()
        x = np.zeros((3, 2))
        y = np.array([1.0, np.nan, 2.0])
        with pytest.raises(GPFitError):
            gp.fit(x, y)

    def test_hyperparameter_fit_improves_lml(self):
        x, y = self._data(n=25)
        unfit = GaussianProcess(restarts=0)
        unfit.fit(x, y, optimize_hypers=False)
        before = unfit.log_marginal_likelihood()
        fit = GaussianProcess(restarts=2)
        fit.fit(x, y, optimize_hypers=True)
        after = fit.log_marginal_likelihood()
        assert after >= before - 1e-6

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).random((6, 2))
        y = np.full(6, 3.0)
        gp = GaussianProcess(restarts=1).fit(x, y)
        mean, _ = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=0.1)

    def test_single_observation(self):
        gp = GaussianProcess(restarts=0).fit(np.array([[0.5]]), np.array([2.0]))
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.2)

    def test_prediction_in_original_units(self):
        """Standardisation must be invisible to the caller."""
        x, y = self._data()
        y_scaled = y * 1000 + 5000
        gp = GaussianProcess(restarts=1).fit(x, y_scaled)
        mean, _ = gp.predict(x)
        assert np.corrcoef(mean, y_scaled)[0, 1] > 0.99

    def test_num_observations(self):
        x, y = self._data(n=7)
        gp = GaussianProcess(restarts=0)
        assert gp.num_observations == 0
        gp.fit(x, y, optimize_hypers=False)
        assert gp.num_observations == 7

    def test_log_marginal_likelihood_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().log_marginal_likelihood()

    def test_cached_lml_matches_direct_recomputation(self):
        x, y = self._data()
        gp = GaussianProcess(restarts=1).fit(x, y)
        cached = gp.log_marginal_likelihood()
        recomputed = -gp._neg_log_marginal(gp._log_params())
        assert cached == pytest.approx(recomputed, abs=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_posterior_mean_bounded_by_data_for_smooth_fits(self, seed):
        """Posterior mean at interior points stays within a sane envelope."""
        rng = np.random.default_rng(seed)
        x = rng.random((12, 2))
        y = rng.random(12)
        gp = GaussianProcess(restarts=0).fit(x, y, optimize_hypers=False)
        mean, var = gp.predict(rng.random((5, 2)))
        spread = y.max() - y.min() + 1e-9
        assert np.all(mean > y.min() - 3 * spread)
        assert np.all(mean < y.max() + 3 * spread)
        assert np.all(var >= 0)


class TestIncrementalExtension:
    """extend() must be indistinguishable from a from-scratch refit."""

    @pytest.mark.parametrize("kernel_name", ["rbf", "matern52"])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_old=st.integers(min_value=1, max_value=24),
        m=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_extend_matches_full_fit(self, kernel_name, seed, n_old, m):
        rng = np.random.default_rng(seed)
        dim = 3
        x = rng.random((n_old + m, dim))
        y = rng.standard_normal(n_old + m) * (1.0 + 5.0 * rng.random())

        incremental = GaussianProcess(kernel=make_kernel(kernel_name, dim), restarts=0)
        incremental.fit(x[:n_old], y[:n_old], optimize_hypers=False)
        incremental.extend(x[n_old:], y[n_old:])

        full = GaussianProcess(kernel=make_kernel(kernel_name, dim), restarts=0)
        full.fit(x, y, optimize_hypers=False)

        x_star = rng.random((8, dim))
        mean_inc, var_inc = incremental.predict(x_star)
        mean_full, var_full = full.predict(x_star)
        assert np.allclose(mean_inc, mean_full, atol=1e-8, rtol=0)
        assert np.allclose(var_inc, var_full, atol=1e-8, rtol=0)
        assert incremental.log_marginal_likelihood() == pytest.approx(
            full.log_marginal_likelihood(), abs=1e-8
        )
        assert incremental.num_observations == n_old + m

    def test_extend_one_point_at_a_time_matches_batch_fit(self):
        rng = np.random.default_rng(3)
        x = rng.random((12, 2))
        y = np.sin(4 * x[:, 0]) - x[:, 1]
        gp = GaussianProcess(restarts=0).fit(x[:4], y[:4], optimize_hypers=False)
        for i in range(4, 12):
            gp.extend(x[i : i + 1], y[i : i + 1])
        full = GaussianProcess(restarts=0).fit(x, y, optimize_hypers=False)
        x_star = rng.random((5, 2))
        assert np.allclose(gp.predict(x_star)[0], full.predict(x_star)[0], atol=1e-8)
        assert gp.extend_fallbacks == 0

    def test_extend_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().extend(np.zeros((1, 2)), np.zeros(1))

    def test_extend_validates_inputs(self):
        gp = GaussianProcess(restarts=0).fit(np.zeros((3, 2)), np.arange(3.0))
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 2)), np.zeros(3))  # row mismatch
        with pytest.raises(ValueError):
            gp.extend(np.zeros((1, 4)), np.zeros(1))  # dim mismatch
        with pytest.raises(GPFitError):
            gp.extend(np.array([[np.nan, 0.0]]), np.zeros(1))

    def test_degenerate_extension_falls_back_to_jitter_escalation(self):
        """A duplicate input at tiny noise cannot extend the cached factor.

        The Schur pivot collapses to ~noise, far below the stability
        floor; extend() must detect the degeneracy, rebuild with the
        escalating-jitter ladder, and still produce a posterior that
        matches a from-scratch refit.
        """
        rng = np.random.default_rng(0)
        x = rng.random((10, 3))
        y = rng.standard_normal(10)
        gp = GaussianProcess(
            kernel=make_kernel("matern52", 3),
            noise_variance=1e-10,
            fit_noise=False,
            restarts=0,
        ).fit(x, y, optimize_hypers=False)
        gp.extend(x[4:5], y[4:5])  # exact duplicate of a training row
        assert gp.extend_fallbacks == 1
        assert gp.num_observations == 11

        full = GaussianProcess(
            kernel=make_kernel("matern52", 3),
            noise_variance=1e-10,
            fit_noise=False,
            restarts=0,
        ).fit(np.vstack((x, x[4:5])), np.concatenate((y, y[4:5])),
              optimize_hypers=False)
        x_star = rng.random((6, 3))
        assert np.allclose(gp.predict(x_star)[0], full.predict(x_star)[0], atol=1e-6)

    def test_jitter_escalates_on_singular_covariance(self):
        from repro.core.gp import _chol_with_jitter

        # Rank-one matrix pushed slightly indefinite: the first jitter
        # level (1e-10) cannot rescue it, so the ladder must escalate.
        matrix = np.ones((4, 4)) - 1e-8 * np.eye(4)
        chol, jitter = _chol_with_jitter(matrix)
        assert jitter > 1e-10
        assert np.all(np.isfinite(chol))


class TestSparseGaussianProcess:
    """The inducing-point tier behind the exact GP's interface."""

    def _data(self, n, dim=3, seed=0, noisy=True):
        rng = np.random.default_rng(seed)
        x = rng.random((n, dim))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        if noisy:
            y = y + 0.05 * rng.standard_normal(n)
        return x, y

    @pytest.mark.parametrize("kernel_name", ["rbf", "matern52"])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_full_inducing_set_matches_exact_gp(self, kernel_name, seed):
        """With m = n the DTC posterior *is* the exact posterior."""
        rng = np.random.default_rng(seed)
        dim = 3
        n = 8 + int(rng.integers(0, 16))
        x = rng.random((n, dim))
        y = rng.standard_normal(n) * (1.0 + 5.0 * rng.random())
        exact = GaussianProcess(kernel=make_kernel(kernel_name, dim), restarts=0)
        exact.fit(x, y, optimize_hypers=False)
        sparse = SparseGaussianProcess(
            kernel=make_kernel(kernel_name, dim), restarts=0, max_inducing=n
        )
        sparse.fit(x, y, optimize_hypers=False)
        x_star = rng.random((8, dim))
        mean_e, var_e = exact.predict(x_star)
        mean_s, var_s = sparse.predict(x_star)
        assert np.allclose(mean_s, mean_e, atol=1e-6, rtol=0)
        assert np.allclose(var_s, var_e, atol=1e-6, rtol=0)
        assert np.allclose(
            sparse.predict_mean(x_star), exact.predict_mean(x_star), atol=1e-6
        )
        assert sparse.log_marginal_likelihood() == pytest.approx(
            exact.log_marginal_likelihood(), abs=1e-4
        )

    def test_full_inducing_hyperfit_matches_exact_gp(self):
        """At m = n the hyperfit runs the exact machinery on the full data."""
        x, y = self._data(20)
        exact = GaussianProcess(restarts=1, seed=0).fit(x, y)
        sparse = SparseGaussianProcess(restarts=1, seed=0, max_inducing=20).fit(x, y)
        assert np.allclose(
            sparse.kernel.get_log_params(), exact.kernel.get_log_params()
        )
        assert sparse.noise_variance == pytest.approx(exact.noise_variance)

    def test_subset_approximation_tracks_exact_predictions(self):
        """A capped inducing set stays a usable approximation."""
        x, y = self._data(120, noisy=False)
        exact = GaussianProcess(restarts=0).fit(x, y, optimize_hypers=False)
        sparse = SparseGaussianProcess(restarts=0, max_inducing=48).fit(
            x, y, optimize_hypers=False
        )
        x_star = np.random.default_rng(9).random((30, 3))
        mean_e, _ = exact.predict(x_star)
        mean_s, _ = sparse.predict(x_star)
        assert np.corrcoef(mean_e, mean_s)[0, 1] > 0.98

    def test_extend_matches_from_scratch_fit(self):
        """Appending (no re-selection) equals a full fit at the same set."""
        x, y = self._data(80, seed=3)
        sparse = SparseGaussianProcess(
            restarts=0, max_inducing=24, reselect_growth=10.0
        ).fit(x[:64], y[:64], optimize_hypers=False)
        for i in range(64, 80):
            sparse.extend(x[i : i + 1], y[i : i + 1])
        assert sparse.reselections == 0
        assert sparse.num_observations == 80
        x_star = np.random.default_rng(4).random((10, 3))
        mean_inc, var_inc = sparse.predict(x_star)
        lml_inc = sparse.log_marginal_likelihood()
        # Re-factor the whole projected system from scratch at the same
        # inducing set — the incrementally maintained posterior must match
        # to numerical precision.
        sparse._rebuild()
        mean_rb, var_rb = sparse.predict(x_star)
        assert np.allclose(mean_inc, mean_rb, atol=1e-8)
        assert np.allclose(var_inc, var_rb, atol=1e-8)
        assert lml_inc == pytest.approx(sparse.log_marginal_likelihood(), abs=1e-6)

    def test_extend_reselects_past_growth_mark(self):
        x, y = self._data(120, seed=5)
        sparse = SparseGaussianProcess(
            restarts=0, max_inducing=16, reselect_growth=1.25
        ).fit(x[:40], y[:40], optimize_hypers=False)
        sparse.extend(x[40:120], y[40:120])  # 3x growth: well past the mark
        assert sparse.reselections == 1
        assert sparse.num_observations == 120
        # The re-selected inducing set spans the whole history, not just
        # the 40-point prefix.
        assert int(np.max(sparse._idx)) >= 40

    def test_extend_grows_inducing_set_below_cap(self):
        """Below max_inducing the inducing set tracks the data exactly."""
        x, y = self._data(30, seed=6)
        sparse = SparseGaussianProcess(restarts=0, max_inducing=64).fit(
            x[:20], y[:20], optimize_hypers=False
        )
        assert sparse.num_inducing == 20
        sparse.extend(x[20:], y[20:])
        assert sparse.num_inducing == 30
        exact = GaussianProcess(restarts=0)
        exact.kernel = make_kernel("matern52", 3)
        exact.kernel.set_log_params(sparse.kernel.get_log_params())
        exact.noise_variance = sparse.noise_variance
        exact.fit(x, y, optimize_hypers=False)
        x_star = np.random.default_rng(7).random((6, 3))
        assert np.allclose(
            sparse.predict(x_star)[0], exact.predict(x_star)[0], atol=1e-6
        )

    def test_validation_and_error_paths(self):
        with pytest.raises(GPFitError):
            SparseGaussianProcess().predict(np.zeros((1, 2)))
        with pytest.raises(GPFitError):
            SparseGaussianProcess().log_marginal_likelihood()
        with pytest.raises(GPFitError):
            SparseGaussianProcess().extend(np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValueError):
            SparseGaussianProcess(max_inducing=0)
        with pytest.raises(ValueError):
            SparseGaussianProcess(reselect_growth=1.0)
        gp = SparseGaussianProcess(restarts=0).fit(
            np.zeros((3, 2)), np.arange(3.0), optimize_hypers=False
        )
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            gp.extend(np.zeros((1, 4)), np.zeros(1))
        with pytest.raises(GPFitError):
            gp.fit(np.array([[np.nan, 0.0]]), np.zeros(1))

    def test_constant_targets_handled(self):
        x = np.random.default_rng(0).random((12, 2))
        y = np.full(12, 3.0)
        sparse = SparseGaussianProcess(restarts=1, max_inducing=6).fit(x, y)
        mean, _ = sparse.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=0.1)


class TestSurrogateFactory:
    def test_tier_policy(self):
        factory = SurrogateFactory(
            lambda: make_kernel("matern52", 3), sparse_threshold=32, max_inducing=16
        )
        assert factory.tier_for(31) == "exact"
        assert factory.tier_for(32) == "sparse"
        assert isinstance(factory.build(8), GaussianProcess)
        sparse = factory.build(64)
        assert isinstance(sparse, SparseGaussianProcess)
        assert sparse.max_inducing == 16
        assert factory.tier_of(factory.build(8)) == "exact"
        assert factory.tier_of(sparse) == "sparse"

    def test_threshold_none_never_sparse(self):
        factory = SurrogateFactory(
            lambda: make_kernel("matern52", 3), sparse_threshold=None
        )
        assert factory.tier_for(10**6) == "exact"
        assert isinstance(factory.build(10**6), GaussianProcess)

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateFactory(lambda: None, sparse_threshold=2)
        with pytest.raises(ValueError):
            SurrogateFactory(lambda: None, max_inducing=2)


class TestAnalyticGradients:
    """Closed-form LML gradients must match central finite differences."""

    @pytest.mark.parametrize("kernel_name", ["rbf", "matern52"])
    @pytest.mark.parametrize("fit_noise", [True, False])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_gradient_matches_finite_differences(self, kernel_name, fit_noise, seed):
        rng = np.random.default_rng(seed)
        dim = 3
        x = rng.random((15, dim))
        y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] + 0.1 * rng.standard_normal(15)
        gp = GaussianProcess(
            kernel=make_kernel(kernel_name, dim), fit_noise=fit_noise, restarts=0
        )
        gp.fit(x, y, optimize_hypers=False)
        # Perturb away from the defaults but stay inside the optimiser's
        # bounds (where the clipping in set_log_params is inactive).
        params = gp._log_params() + 0.2 * rng.standard_normal(
            gp._log_params().shape
        )
        value, grad = gp._neg_log_marginal(params.copy(), jac=True)
        assert np.isfinite(value)
        eps = 1e-6
        for j in range(len(params)):
            plus, minus = params.copy(), params.copy()
            plus[j] += eps
            minus[j] -= eps
            fd = (gp._neg_log_marginal(plus) - gp._neg_log_marginal(minus)) / (2 * eps)
            assert grad[j] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_grad_log_params_shape(self):
        x = np.random.default_rng(0).random((7, 4))
        for kernel_cls in (RBF, Matern52):
            grads = kernel_cls(4).grad_log_params(x)
            assert grads.shape == (5, 7, 7)
            # Slice 0 (d/d log variance) is the covariance matrix itself.
            assert np.allclose(grads[0], kernel_cls(4)(x, x))

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_grad_contraction_matches_tensor_einsum(self, kernel_cls, seed):
        """The GEMM-based contraction equals the (p, n, n)-tensor einsum."""
        rng = np.random.default_rng(seed)
        kernel = kernel_cls(4)
        kernel.set_log_params(0.4 * rng.standard_normal(5))
        x = rng.random((12, 4))
        m = rng.standard_normal((12, 12))  # deliberately non-symmetric
        reference = np.einsum("ij,pij->p", m, kernel.grad_log_params(x))
        fast = kernel.grad_log_params_dot(x, m)
        assert np.allclose(fast, reference, rtol=1e-9, atol=1e-11)

    def test_analytic_and_fd_fits_agree(self):
        rng = np.random.default_rng(1)
        x = rng.random((18, 2))
        y = np.sin(5 * x[:, 0]) + x[:, 1] ** 2
        analytic = GaussianProcess(restarts=2, analytic_gradients=True).fit(x, y)
        fd = GaussianProcess(restarts=2, analytic_gradients=False).fit(x, y)
        # Both optimisers should land at (near-)equivalent optima.
        assert analytic.log_marginal_likelihood() == pytest.approx(
            fd.log_marginal_likelihood(), abs=0.5
        )
