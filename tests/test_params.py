"""Tests (incl. property-based) for typed parameters and encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configspace import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
)

RNG = np.random.default_rng(0)


class TestIntParameter:
    def test_encode_bounds(self):
        param = IntParameter("n", 1, 9)
        assert param.encode(1) == [0.0]
        assert param.encode(9) == [1.0]
        assert param.encode(5) == [0.5]

    def test_out_of_range_rejected(self):
        param = IntParameter("n", 1, 9)
        with pytest.raises(ValueError):
            param.encode(0)
        with pytest.raises(ValueError):
            param.encode(10)

    def test_decode_clamps(self):
        param = IntParameter("n", 1, 9)
        assert param.decode([-0.5]) == 1
        assert param.decode([1.5]) == 9

    def test_log_scale_midpoint_is_geometric(self):
        param = IntParameter("b", 1, 256, log=True)
        assert param.decode([0.5]) == 16  # sqrt(1 * 256)

    def test_log_requires_positive_low(self):
        with pytest.raises(ValueError):
            IntParameter("b", 0, 256, log=True)

    def test_degenerate_range(self):
        param = IntParameter("n", 4, 4)
        assert param.encode(4) == [0.0]
        assert param.decode([0.7]) == 4
        assert param.grid(5) == [4]

    def test_grid_spans_range(self):
        param = IntParameter("n", 1, 100)
        grid = param.grid(5)
        assert grid[0] == 1
        assert grid[-1] == 100
        assert grid == sorted(grid)

    def test_neighbors_stay_in_range(self):
        param = IntParameter("n", 1, 10)
        for value in (1, 5, 10):
            for neighbor in param.neighbors(value, RNG):
                assert 1 <= neighbor <= 10
                assert neighbor != value

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=60)
    def test_roundtrip_linear(self, value):
        param = IntParameter("n", 1, 512)
        assert param.decode(param.encode(value)) == value

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=60)
    def test_roundtrip_log(self, value):
        param = IntParameter("n", 1, 512, log=True)
        assert param.decode(param.encode(value)) == value


class TestFloatParameter:
    def test_roundtrip(self):
        param = FloatParameter("x", 0.1, 10.0)
        for value in (0.1, 1.0, 5.5, 10.0):
            assert param.decode(param.encode(value)) == pytest.approx(value)

    def test_log_roundtrip(self):
        param = FloatParameter("x", 0.01, 100.0, log=True)
        for value in (0.01, 1.0, 100.0):
            assert param.decode(param.encode(value)) == pytest.approx(value)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 5.0, 5.0)
        with pytest.raises(ValueError):
            FloatParameter("x", -1.0, 1.0, log=True)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=60)
    def test_decode_always_in_range(self, coord):
        param = FloatParameter("x", 2.0, 7.0)
        assert 2.0 <= param.decode([coord]) <= 7.0

    def test_cardinality_infinite(self):
        assert FloatParameter("x", 0.0, 1.0).cardinality() == float("inf")


class TestCategoricalParameter:
    def test_one_hot_encoding(self):
        param = CategoricalParameter("mode", ["a", "b", "c"])
        assert param.dims == 3
        assert param.encode("b") == [0.0, 1.0, 0.0]

    def test_decode_argmax(self):
        param = CategoricalParameter("mode", ["a", "b", "c"])
        assert param.decode([0.1, 0.9, 0.3]) == "b"

    def test_roundtrip_all_choices(self):
        param = CategoricalParameter("mode", ["bsp", "asp", "ssp"])
        for choice in param.choices:
            assert param.decode(param.encode(choice)) == choice

    def test_unknown_choice_rejected(self):
        param = CategoricalParameter("mode", ["a", "b"])
        with pytest.raises(ValueError):
            param.encode("z")

    def test_wrong_coord_length_rejected(self):
        param = CategoricalParameter("mode", ["a", "b"])
        with pytest.raises(ValueError):
            param.decode([1.0])

    def test_needs_two_distinct_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("mode", ["only"])
        with pytest.raises(ValueError):
            CategoricalParameter("mode", ["a", "a"])

    def test_neighbors_are_other_choices(self):
        param = CategoricalParameter("mode", ["a", "b", "c"])
        assert sorted(param.neighbors("a", RNG)) == ["b", "c"]


class TestBoolParameter:
    def test_roundtrip(self):
        param = BoolParameter("flag")
        assert param.decode(param.encode(True)) is True
        assert param.decode(param.encode(False)) is False

    def test_threshold(self):
        param = BoolParameter("flag")
        assert param.decode([0.49]) is False
        assert param.decode([0.51]) is True

    def test_neighbors_flip(self):
        param = BoolParameter("flag")
        assert param.neighbors(True, RNG) == [False]

    def test_grid(self):
        assert BoolParameter("flag").grid(10) == [False, True]
