"""Tests (incl. property-based) for acquisition functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    expected_improvement,
    expected_improvement_per_cost,
    get_acquisition,
    probability_of_improvement,
    upper_confidence_bound,
)


class TestExpectedImprovement:
    def test_non_negative(self):
        mu = np.array([-5.0, 0.0, 5.0])
        sigma = np.array([1.0, 1.0, 1.0])
        assert np.all(expected_improvement(mu, sigma, incumbent=0.0) >= 0)

    def test_increases_with_mean(self):
        sigma = np.ones(3)
        ei = expected_improvement(np.array([0.0, 1.0, 2.0]), sigma, incumbent=0.5)
        assert ei[0] < ei[1] < ei[2]

    def test_increases_with_uncertainty_below_incumbent(self):
        mu = np.zeros(3)
        ei = expected_improvement(mu, np.array([0.1, 1.0, 5.0]), incumbent=1.0)
        assert ei[0] < ei[1] < ei[2]

    def test_zero_when_certain_and_worse(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-12]), incumbent=10.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_equals_gap_when_certain_and_better(self):
        ei = expected_improvement(np.array([3.0]), np.array([1e-12]), incumbent=1.0)
        assert ei[0] == pytest.approx(2.0, abs=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(3), np.zeros(2), 0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(1), np.array([-1.0]), 0.0)

    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=1e-6, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=100)
    def test_always_finite_and_nonnegative(self, mu, sigma, incumbent):
        ei = expected_improvement(np.array([mu]), np.array([sigma]), incumbent)
        assert np.isfinite(ei[0])
        assert ei[0] >= -1e-12


class TestProbabilityOfImprovement:
    def test_in_unit_interval(self):
        mu = np.linspace(-5, 5, 11)
        sigma = np.ones(11)
        pi = probability_of_improvement(mu, sigma, incumbent=0.0)
        assert np.all((pi >= 0) & (pi <= 1))

    def test_half_at_incumbent(self):
        pi = probability_of_improvement(np.array([2.0]), np.array([1.0]), incumbent=2.0)
        assert pi[0] == pytest.approx(0.5)


class TestUpperConfidenceBound:
    def test_formula(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([2.0]), beta=3.0)
        assert ucb[0] == pytest.approx(7.0)

    def test_beta_zero_is_mean(self):
        mu = np.array([1.0, 2.0])
        ucb = upper_confidence_bound(mu, np.ones(2), beta=0.0)
        assert np.allclose(ucb, mu)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            upper_confidence_bound(np.zeros(1), np.ones(1), beta=-1.0)


class TestEiPerCost:
    def test_divides_by_cost(self):
        mu = np.array([1.0, 1.0])
        sigma = np.array([1.0, 1.0])
        cost = np.array([1.0, 4.0])
        scores = expected_improvement_per_cost(mu, sigma, 0.0, cost)
        assert scores[0] == pytest.approx(4 * scores[1])

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError):
            expected_improvement_per_cost(
                np.zeros(1), np.ones(1), 0.0, np.array([0.0])
            )

    def test_prefers_cheap_among_equals(self):
        mu = np.array([2.0, 2.0])
        sigma = np.array([0.5, 0.5])
        cost = np.array([10.0, 1.0])
        scores = expected_improvement_per_cost(mu, sigma, 1.0, cost)
        assert scores[1] > scores[0]


class TestRegistry:
    def test_lookup(self):
        assert get_acquisition("ei") is expected_improvement
        assert get_acquisition("ucb") is upper_confidence_bound

    def test_unknown(self):
        with pytest.raises(KeyError, match="choose from"):
            get_acquisition("thompson")
