"""Tests for the N-seed statistical sweep harness."""

import numpy as np
import pytest

from repro.harness import SweepCell, clear_optimum_cache, run_sweep, seed_spread_stats
from repro.harness.experiments import clear_experiment_cache


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_experiment_cache()
    clear_optimum_cache()
    yield
    clear_experiment_cache()
    clear_optimum_cache()


def small_cells():
    return [
        SweepCell(
            name="resnet-random",
            workload="resnet50-imagenet",
            nodes=8,
            strategy="random",
            max_trials=6,
            optimum_samples=150,
        ),
        SweepCell(
            name="resnet-coordinate",
            workload="resnet50-imagenet",
            nodes=8,
            strategy="coordinate",
            max_trials=6,
            optimum_samples=150,
        ),
    ]


class TestSeedSpreadStats:
    def test_boxplot_ordering(self):
        stats = seed_spread_stats([0.9, 0.2, 0.5, 0.7, 0.4])
        assert (
            stats["min"]
            <= stats["q1"]
            <= stats["median"]
            <= stats["q3"]
            <= stats["max"]
        )
        assert stats["iqr"] == pytest.approx(stats["q3"] - stats["q1"])
        assert stats["mean"] == pytest.approx(0.54)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            seed_spread_stats([])


class TestSweepCell:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            SweepCell(name="x", workload="resnet50-imagenet", nodes=8, strategy="gibberish")

    def test_cells_are_hashable_and_frozen(self):
        cell = small_cells()[0]
        assert hash(cell)
        with pytest.raises(AttributeError):
            cell.max_trials = 3


class TestRunSweep:
    def test_report_structure_and_stats(self):
        seeds = [0, 1, 2]
        report = run_sweep(small_cells(), seeds=seeds, n_jobs=1)
        assert report["seeds"] == seeds
        assert report["n_cells"] == 2
        assert report["n_sessions"] == 6
        for name in ("resnet-random", "resnet-coordinate"):
            cell = report["cells"][name]
            assert len(cell["values"]) == len(seeds)
            # Normalised against the noise-free optimum: nothing above ~1
            # beyond measurement noise.
            assert all(0.0 <= v <= 1.1 for v in cell["values"])
            stats = cell["stats"]
            assert stats["min"] <= stats["median"] <= stats["max"]
            assert cell["mean_trials"] <= 6.0
            assert cell["optimum_value"] > 0

    def test_parallel_matches_serial(self):
        serial = run_sweep(small_cells(), seeds=[0, 1], n_jobs=1)
        clear_experiment_cache()
        clear_optimum_cache()
        parallel = run_sweep(small_cells(), seeds=[0, 1], n_jobs=2)
        assert serial == parallel

    def test_sessions_are_memoised_across_calls(self):
        from repro.harness import experiments

        cells = small_cells()[:1]
        first = run_sweep(cells, seeds=[0, 1], n_jobs=1)
        # Drop only the in-memory tier: the persistent disk tier must
        # serve the rerun with identical session summaries.
        experiments._memo.clear()
        clear_optimum_cache()
        second = run_sweep(cells, seeds=[0, 1], n_jobs=1)
        assert first == second

    def test_rejects_duplicate_names_and_empty_inputs(self):
        cells = small_cells()
        with pytest.raises(ValueError, match="unique"):
            run_sweep([cells[0], cells[0]], seeds=[0])
        with pytest.raises(ValueError, match="cell"):
            run_sweep([], seeds=[0])
        with pytest.raises(ValueError, match="seed"):
            run_sweep(cells, seeds=[])
