"""End-to-end integration tests across module boundaries."""

import pytest

from repro.baselines import (
    CherryPick,
    OtterTuneStyle,
    RandomSearch,
    SuccessiveHalving,
    TPE,
    WorkloadRepository,
    default_strategy,
)
from repro.cluster import homogeneous
from repro.configspace import ml_config_space, to_training_config
from repro.core import MLConfigTuner, TuningBudget, knob_importance
from repro.harness import compare_strategies, estimate_optimum, metrics
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


class TestFullTuningPipeline:
    """The complete story: space → tuner → probes → analysis."""

    def test_bo_tuning_with_importance_analysis(self):
        nodes = 8
        workload = get_workload("word2vec-wiki")
        env = TrainingEnvironment(workload, homogeneous(nodes), seed=0)
        space = ml_config_space(nodes)
        result = MLConfigTuner(seed=0).run(
            env, space, TuningBudget(max_trials=25), seed=0
        )
        assert result.best_objective > 0

        importance = knob_importance(result.history, space, seed=0)
        assert set(importance) == set(space.names())
        # For the most communication-bound workload, the communication
        # knobs together must carry substantial importance.
        comm_knobs = (
            importance["num_ps"]
            + importance["gradient_precision"]
            + importance["architecture"]
            + importance["colocate_ps"]
        )
        assert comm_knobs > 0.15

    def test_tuned_config_reproduces_outside_tuner(self):
        """The config a tuner reports must deliver its objective when
        re-measured independently (no hidden state)."""
        nodes = 8
        workload = get_workload("resnet50-imagenet")
        env = TrainingEnvironment(workload, homogeneous(nodes), seed=0)
        space = ml_config_space(nodes)
        result = MLConfigTuner(seed=0).run(
            env, space, TuningBudget(max_trials=15), seed=0
        )
        fresh_env = TrainingEnvironment(
            workload, homogeneous(nodes), seed=0, noise_cv=0.0
        )
        replay = fresh_env.measure(to_training_config(result.best_config))
        assert replay.ok
        assert replay.throughput == pytest.approx(
            result.best_objective, rel=0.15  # tuner saw noisy values
        )

    def test_objective_switch_changes_best_config_family(self):
        """Throughput- and TTA-tuning should be able to disagree (the
        batch-size knob trades hardware vs statistical efficiency)."""
        nodes = 8
        workload = get_workload("lstm-ptb")
        space = ml_config_space(nodes)
        thpt = MLConfigTuner(seed=0).run(
            TrainingEnvironment(workload, homogeneous(nodes), seed=0),
            space, TuningBudget(max_trials=25), seed=0,
        )
        tta = MLConfigTuner(seed=0).run(
            TrainingEnvironment(
                workload, homogeneous(nodes), seed=0, objective_name="tta"
            ),
            space, TuningBudget(max_trials=25), seed=0,
        )
        # TTA tuning prefers an equal or smaller global batch than pure
        # throughput tuning (statistical efficiency pushes batch down).
        thpt_batch = thpt.best_config["num_workers"] * thpt.best_config["batch_per_worker"]
        tta_batch = tta.best_config["num_workers"] * tta.best_config["batch_per_worker"]
        assert tta_batch <= thpt_batch * 1.5  # never dramatically larger


class TestAllStrategiesEndToEnd:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: MLConfigTuner(seed=1),
            lambda: CherryPick(seed=1),
            lambda: TPE(seed=1),
            lambda: SuccessiveHalving(seed=1),
            lambda: RandomSearch(),
        ],
        ids=["bo", "cherrypick", "tpe", "halving", "random"],
    )
    def test_strategy_beats_default(self, strategy_factory):
        nodes = 8
        workload = get_workload("resnet50-imagenet")
        space = ml_config_space(nodes)
        result = strategy_factory().run(
            TrainingEnvironment(workload, homogeneous(nodes), seed=2),
            space,
            TuningBudget(max_trials=20),
            seed=2,
        )
        default = default_strategy().run(
            TrainingEnvironment(workload, homogeneous(nodes), seed=2),
            space,
            TuningBudget(max_trials=1),
            seed=2,
        )
        assert result.best_objective > default.best_objective


class TestTransferPipeline:
    def test_repository_built_from_real_sessions_maps_correctly(self):
        """Tuning ResNet then warm-starting Inception (its architectural
        sibling) should map Inception onto ResNet, not word2vec."""
        nodes = 8
        space = ml_config_space(nodes)
        repo = WorkloadRepository()
        for prior in ("resnet50-imagenet", "word2vec-wiki"):
            env = TrainingEnvironment(get_workload(prior), homogeneous(nodes), seed=3)
            session = RandomSearch().run(
                env, space, TuningBudget(max_trials=20), seed=3
            )
            repo.add_session(
                prior, [(t.config, t.objective) for t in session.history.successful()]
            )
        strategy = OtterTuneStyle(repository=repo, seed=3)
        env = TrainingEnvironment(
            get_workload("inception-imagenet"), homogeneous(nodes), seed=3
        )
        strategy.run(env, space, TuningBudget(max_trials=15), seed=3)
        assert strategy.mapped_workload == "resnet50-imagenet"


class TestComparisonOptimumConsistency:
    def test_no_strategy_beats_the_estimated_optimum_materially(self):
        nodes = 8
        workload = get_workload("lstm-ptb")
        comparison = compare_strategies(
            {
                "bo": lambda seed: MLConfigTuner(seed=seed),
                "random": lambda seed: RandomSearch(),
            },
            workload,
            homogeneous(nodes),
            TuningBudget(max_trials=15),
            repeats=2,
            seed=4,
        )
        for outcome in comparison.outcomes.values():
            # Measurement noise can push a observed value slightly past the
            # noise-free optimum, but not by more than the noise envelope.
            assert outcome.mean_normalized_best < 1.12
