"""Property-based tests on core invariants (hypothesis).

These complement the example-based suites: the fabric conserves bytes and
never exceeds link capacities, the convergence model is monotone in its
penalties, probes are deterministic given seeds, and histories preserve
accounting identities under arbitrary trial sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Fabric, homogeneous
from repro.configspace import ml_config_space, to_training_config
from repro.core.trial import TrialHistory
from repro.mlsim import (
    Measurement,
    TrainingConfig,
    TrainingEnvironment,
    estimate,
)
from repro.sim import Simulator
from repro.workloads import ConvergenceProfile, get_workload


class TestFabricProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # src
                st.integers(min_value=0, max_value=3),  # dst
                st.floats(min_value=1e3, max_value=1e9),  # bytes
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_all_transfers_complete_and_bytes_conserved(self, flows):
        sim = Simulator()
        fabric = Fabric(
            sim,
            egress_capacity={i: 1.25e9 for i in range(4)},
            latency_s=1e-5,
        )
        completed = []

        def proc(src, dst, size):
            yield fabric.transfer(src, dst, size)
            completed.append(size)

        for src, dst, size in flows:
            sim.spawn(proc(src, dst, size))
        sim.run()
        assert len(completed) == len(flows)
        assert fabric.active_transfers == 0
        expected = sum(size for src, dst, size in flows if src != dst)
        assert fabric.total_bytes_delivered == pytest.approx(expected, rel=1e-3)

    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1e6, max_value=1e9),
    )
    @settings(max_examples=25, deadline=None)
    def test_fan_in_time_scales_with_flow_count(self, n_flows, size):
        """n equal flows into one NIC take ~n times one flow's time."""
        def run(count):
            sim = Simulator()
            fabric = Fabric(
                sim,
                egress_capacity={i: 1.25e9 for i in range(count + 1)},
                latency_s=0.0,
            )
            done = []

            def proc(src):
                yield fabric.transfer(src, count, size)
                done.append(sim.now)

            for src in range(count):
                sim.spawn(proc(src))
            sim.run()
            return max(done)

        single = run(1)
        many = run(n_flows)
        assert many == pytest.approx(n_flows * single, rel=1e-3)


class TestConvergenceProperties:
    @given(
        st.integers(min_value=1, max_value=65536),
        st.floats(min_value=0.0, max_value=32.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80)
    def test_iterations_positive_and_monotone_in_penalties(
        self, batch, staleness, ratio
    ):
        profile = ConvergenceProfile(
            base_iters=10_000, ref_batch=64, critical_batch=1024
        )
        base = profile.iterations_to_target(batch)
        with_staleness = profile.iterations_to_target(batch, staleness)
        with_both = profile.iterations_to_target(batch, staleness, ratio)
        assert 0 < base <= with_staleness <= with_both

    @given(st.integers(min_value=1, max_value=1024))
    @settings(max_examples=40)
    def test_more_batch_never_more_iterations(self, batch):
        profile = ConvergenceProfile(
            base_iters=10_000, ref_batch=64, critical_batch=1024
        )
        assert profile.iterations_to_target(batch + 1) <= profile.iterations_to_target(
            batch
        ) * (1 + 1e-9)


class TestEstimateProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_estimate_finite_positive_for_valid_samples(self, seed):
        cluster = homogeneous(8, jitter_cv=0.0)
        space = ml_config_space(8)
        rng = np.random.default_rng(seed)
        config = to_training_config(space.sample(rng))
        workload = get_workload("lstm-ptb")
        try:
            perf = estimate(config, workload, cluster)
        except Exception as exc:  # noqa: BLE001 — only feasibility errors allowed
            from repro.mlsim import InfeasibleConfigError

            assert isinstance(exc, InfeasibleConfigError)
            return
        assert perf.throughput > 0
        assert np.isfinite(perf.throughput)
        assert perf.iteration_time_s > 0
        assert perf.mean_staleness >= 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_measure_deterministic_per_seed_and_index(self, seed):
        config = TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32)
        a = TrainingEnvironment(
            get_workload("resnet50-imagenet"), homogeneous(8), seed=seed
        ).measure(config)
        b = TrainingEnvironment(
            get_workload("resnet50-imagenet"), homogeneous(8), seed=seed
        ).measure(config)
        assert a.throughput == b.throughput
        assert a.probe_cost_s == b.probe_cost_s


class TestHistoryProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.floats(min_value=0.1, max_value=1e6)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_accounting_identities(self, objectives):
        history = TrialHistory()
        for objective in objectives:
            ok = objective is not None
            history.record(
                {"x": 1},
                Measurement(
                    config=TrainingConfig(),
                    ok=ok,
                    fidelity="analytic",
                    objective=objective,
                    probe_cost_s=7.5,
                ),
            )
        assert len(history) == len(objectives)
        assert len(history.successful()) + len(history.failed()) == len(objectives)
        assert history.total_cost_s == pytest.approx(7.5 * len(objectives))
        series = history.best_so_far_series()
        assert len(series) == len(objectives)
        # Best-so-far is monotone non-decreasing once defined.
        defined = [v for v in series if v is not None]
        assert all(b >= a for a, b in zip(defined, defined[1:]))
        best = history.best_objective()
        valid = [o for o in objectives if o is not None]
        if valid:
            assert best == max(valid)
        else:
            assert best is None
        # Cost series is strictly increasing.
        costs = history.cost_series()
        assert all(b > a for a, b in zip(costs, costs[1:]))
