"""Tests for the Tree-structured Parzen Estimator baseline."""

import numpy as np
import pytest

from repro.baselines import TPE, RandomSearch
from repro.baselines.tpe import _kde_log_density
from repro.cluster import homogeneous
from repro.configspace import ConfigSpace, FloatParameter, ml_config_space
from repro.core import TrialHistory, TuningBudget
from repro.mlsim import Measurement, TrainingConfig, TrainingEnvironment
from repro.workloads import get_workload


class TestKde:
    def test_density_higher_near_points(self):
        points = np.array([[0.5, 0.5]])
        queries = np.array([[0.5, 0.5], [0.9, 0.9]])
        log_density = _kde_log_density(points, queries, bandwidth=0.1)
        assert log_density[0] > log_density[1]

    def test_empty_points_uniform(self):
        queries = np.random.default_rng(0).random((5, 3))
        log_density = _kde_log_density(np.empty((0, 3)), queries, bandwidth=0.1)
        assert np.allclose(log_density, 0.0)

    def test_numerically_stable_far_from_data(self):
        points = np.array([[0.0, 0.0]])
        queries = np.array([[1.0, 1.0]])
        log_density = _kde_log_density(points, queries, bandwidth=0.01)
        assert np.isfinite(log_density[0])


class TestTpeProposals:
    def _history(self, space, objective_fn, count, seed=0):
        rng = np.random.default_rng(seed)
        history = TrialHistory()
        for _ in range(count):
            config = space.sample(rng)
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(),
                    ok=True,
                    fidelity="analytic",
                    objective=objective_fn(config),
                    probe_cost_s=1.0,
                ),
            )
        return history

    def test_random_until_startup(self):
        space = ConfigSpace([FloatParameter("x", 0.0, 1.0)])
        tpe = TPE(n_startup=5, seed=0)
        history = self._history(space, lambda c: c["x"], 3)
        config = tpe.propose(history, space, np.random.default_rng(0))
        assert 0.0 <= config["x"] <= 1.0  # still random phase, just valid

    def test_proposals_concentrate_in_good_region(self):
        space = ConfigSpace([FloatParameter("x", 0.0, 1.0)])
        tpe = TPE(n_startup=5, n_candidates=128, seed=0)
        history = self._history(space, lambda c: -abs(c["x"] - 0.8), 30)
        rng = np.random.default_rng(1)
        proposals = [tpe.propose(history, space, rng)["x"] for _ in range(10)]
        assert np.mean(proposals) > 0.55  # pulled toward 0.8

    def test_beats_random_on_mlspace(self):
        nodes = 8
        workload = get_workload("word2vec-wiki")
        space = ml_config_space(nodes)
        tpe_result = TPE(seed=0).run(
            TrainingEnvironment(workload, homogeneous(nodes), seed=5),
            space, TuningBudget(max_trials=25), seed=5,
        )
        random_result = RandomSearch().run(
            TrainingEnvironment(workload, homogeneous(nodes), seed=5),
            space, TuningBudget(max_trials=25), seed=5,
        )
        assert tpe_result.best_objective >= 0.9 * random_result.best_objective

    def test_failed_trials_count_as_bad_evidence(self):
        space = ConfigSpace([FloatParameter("x", 0.0, 1.0)])
        tpe = TPE(n_startup=4, n_candidates=128, seed=0)
        history = TrialHistory()
        rng = np.random.default_rng(2)
        for _ in range(20):
            config = space.sample(rng)
            ok = config["x"] < 0.5
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(),
                    ok=ok,
                    fidelity="analytic",
                    objective=config["x"] if ok else None,
                    probe_cost_s=1.0,
                ),
            )
        proposals = [
            tpe.propose(history, space, np.random.default_rng(i))["x"]
            for i in range(8)
        ]
        # The crashing right half should be mostly avoided.
        assert np.mean([p < 0.5 for p in proposals]) >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TPE(gamma=0.0)
        with pytest.raises(ValueError):
            TPE(n_startup=1)
        with pytest.raises(ValueError):
            TPE(n_candidates=4)
        with pytest.raises(ValueError):
            TPE(bandwidth=0.0)
