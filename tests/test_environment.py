"""Tests for the TrainingEnvironment probe interface."""

import pytest

from repro.cluster import homogeneous
from repro.mlsim import (
    STARTUP_OVERHEAD_S,
    TrainingConfig,
    TrainingEnvironment,
)
from repro.workloads import get_workload

WORKLOAD = get_workload("resnet50-imagenet")
GOOD = TrainingConfig(num_workers=6, num_ps=2, batch_per_worker=32)
BAD = TrainingConfig(num_workers=20, num_ps=4)  # does not fit 8 nodes


def make_env(**kwargs):
    kwargs.setdefault("seed", 0)
    return TrainingEnvironment(WORKLOAD, homogeneous(8), **kwargs)


class TestValidation:
    def test_bad_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            make_env(fidelity="quantum")

    def test_bad_objective(self):
        with pytest.raises(ValueError, match="objective_name"):
            make_env(objective_name="latency")

    def test_bad_probe_iterations(self):
        with pytest.raises(ValueError):
            make_env(probe_iterations=1)
        env = make_env()
        with pytest.raises(ValueError):
            env.measure(GOOD, probe_iterations=1)


class TestMeasurement:
    def test_successful_probe(self):
        m = make_env().measure(GOOD)
        assert m.ok
        assert m.throughput > 0
        assert m.objective == m.throughput
        assert m.probe_cost_s > STARTUP_OVERHEAD_S
        assert m.tta_s > 0

    def test_failed_probe_is_not_an_exception(self):
        m = make_env().measure(BAD)
        assert not m.ok
        assert m.objective is None
        assert "placement" in m.error or "nodes" in m.error
        assert m.probe_cost_s == STARTUP_OVERHEAD_S

    def test_noise_differs_across_trials(self):
        env = make_env(noise_cv=0.05)
        a = env.measure(GOOD)
        b = env.measure(GOOD)
        assert a.throughput != b.throughput

    def test_same_trial_index_same_noise(self):
        a = make_env(noise_cv=0.05).measure(GOOD)
        b = make_env(noise_cv=0.05).measure(GOOD)
        assert a.throughput == b.throughput

    def test_zero_noise_is_deterministic(self):
        env = make_env(noise_cv=0.0)
        assert env.measure(GOOD).throughput == env.measure(GOOD).throughput

    def test_cost_accounting_accumulates(self):
        env = make_env()
        m1 = env.measure(GOOD)
        m2 = env.measure(BAD)
        assert env.total_probe_cost_s == pytest.approx(
            m1.probe_cost_s + m2.probe_cost_s
        )
        assert env.trials_run == 2

    def test_shorter_probe_costs_less(self):
        env = make_env(noise_cv=0.0)
        full = env.measure(GOOD)
        short = env.measure(GOOD, probe_iterations=5)
        assert short.probe_cost_s < full.probe_cost_s

    def test_shorter_probe_is_noisier_in_expectation(self):
        """Noise sigma scales with 1/sqrt(iterations)."""
        import numpy as np

        deviations_full, deviations_short = [], []
        for seed in range(12):
            env = make_env(seed=seed, noise_cv=0.05)
            truth = env.true_objective(GOOD)
            deviations_full.append(abs(env.measure(GOOD).throughput - truth) / truth)
            env_s = make_env(seed=seed, noise_cv=0.05)
            deviations_short.append(
                abs(env_s.measure(GOOD, probe_iterations=3).throughput - truth) / truth
            )
        assert np.mean(deviations_short) > np.mean(deviations_full)

    def test_continuation_skips_startup(self):
        env = make_env(noise_cv=0.0)
        charged = env.measure(GOOD)
        continued = env.measure(GOOD, charge_startup=False)
        assert continued.probe_cost_s == pytest.approx(
            charged.probe_cost_s - STARTUP_OVERHEAD_S
        )


class TestObjectives:
    def test_tta_objective_is_negative(self):
        env = make_env(objective_name="tta")
        m = env.measure(GOOD)
        assert m.objective == pytest.approx(-m.tta_s)

    def test_tta_consistent_with_convergence_model(self):
        """TTA = startup + iterations-to-target × global_batch / throughput."""
        from repro.mlsim import STARTUP_OVERHEAD_S

        env = make_env(objective_name="tta", noise_cv=0.0)
        m = env.measure(GOOD)
        iters = WORKLOAD.model.convergence.iterations_to_target(
            GOOD.global_batch, m.mean_staleness
        )
        expected = STARTUP_OVERHEAD_S + iters * GOOD.global_batch / m.throughput
        assert m.tta_s == pytest.approx(expected, rel=1e-9)

    def test_true_objective_infeasible_is_none(self):
        assert make_env().true_objective(BAD) is None

    def test_true_objective_has_no_noise(self):
        env = make_env(noise_cv=0.5)
        assert env.true_objective(GOOD) == env.true_objective(GOOD)


class TestFidelityConsistency:
    def test_event_and_analytic_agree_roughly(self):
        analytic = make_env(fidelity="analytic", noise_cv=0.0).measure(GOOD)
        event = make_env(fidelity="event", noise_cv=0.0).measure(GOOD)
        ratio = event.throughput / analytic.throughput
        assert 0.6 < ratio < 1.7

    def test_describe(self):
        env = make_env()
        env.measure(GOOD)
        info = env.describe()
        assert info["workload"] == WORKLOAD.name
        assert info["nodes"] == 8
        assert info["trials_run"] == 1
