"""Tests (incl. property-based) for ConfigSpace and the ML config space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configspace import (
    BoolParameter,
    CategoricalParameter,
    ConfigSpace,
    ExhaustedSpaceError,
    IntParameter,
    from_training_config,
    ml_config_space,
    to_training_config,
)
from repro.mlsim import DEFAULT_CONFIG, TrainingConfig


def small_space():
    return ConfigSpace(
        [
            IntParameter("a", 1, 8),
            CategoricalParameter("mode", ["x", "y", "z"]),
            BoolParameter("flag"),
        ],
        constraints={"a_even_when_flag": lambda c: (not c["flag"]) or c["a"] % 2 == 0},
    )


class TestConfigSpaceBasics:
    def test_dims_sum_parameter_dims(self):
        space = small_space()
        assert space.dims == 1 + 3 + 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntParameter("a", 1, 2), IntParameter("a", 1, 3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([])

    def test_getitem_and_contains(self):
        space = small_space()
        assert space["a"].name == "a"
        assert "mode" in space
        assert "nope" not in space
        with pytest.raises(KeyError):
            space["nope"]

    def test_encode_decode_roundtrip(self):
        space = small_space()
        config = {"a": 4, "mode": "y", "flag": True}
        assert space.decode(space.encode(config)) == config

    def test_encode_missing_key(self):
        space = small_space()
        with pytest.raises(KeyError, match="missing"):
            space.encode({"a": 4})

    def test_decode_wrong_shape(self):
        space = small_space()
        with pytest.raises(ValueError):
            space.decode(np.zeros(3))


class TestValidityAndSampling:
    def test_is_valid_and_violations(self):
        space = small_space()
        assert space.is_valid({"a": 4, "mode": "x", "flag": True})
        assert not space.is_valid({"a": 3, "mode": "x", "flag": True})
        assert space.violated_constraints({"a": 3, "mode": "x", "flag": True}) == [
            "a_even_when_flag"
        ]

    def test_samples_are_valid(self):
        space = small_space()
        rng = np.random.default_rng(0)
        for config in space.sample_batch(rng, 100):
            assert space.is_valid(config)

    def test_unsatisfiable_constraints_raise(self):
        space = ConfigSpace(
            [IntParameter("a", 1, 8)],
            constraints={"impossible": lambda c: False},
            max_rejection_tries=50,
        )
        with pytest.raises(ExhaustedSpaceError):
            space.sample(np.random.default_rng(0))

    def test_latin_hypercube_count_and_validity(self):
        space = small_space()
        rng = np.random.default_rng(1)
        design = space.latin_hypercube(rng, 12)
        assert len(design) == 12
        for config in design:
            assert space.is_valid(config)

    def test_latin_hypercube_spreads_values(self):
        space = ConfigSpace([IntParameter("a", 1, 100)])
        rng = np.random.default_rng(2)
        design = space.latin_hypercube(rng, 10)
        values = sorted(c["a"] for c in design)
        assert values[0] <= 15 and values[-1] >= 85  # covers both ends
        assert len(set(values)) >= 8  # little collision

    def test_neighbors_valid_and_single_knob(self):
        space = small_space()
        rng = np.random.default_rng(3)
        base = {"a": 4, "mode": "x", "flag": True}
        for neighbor in space.neighbors(base, rng):
            assert space.is_valid(neighbor)
            diffs = [k for k in base if neighbor[k] != base[k]]
            assert len(diffs) == 1

    def test_grid_respects_constraints(self):
        space = small_space()
        points = list(space.grid(4))
        assert points
        for config in points:
            assert space.is_valid(config)

    def test_cardinality(self):
        space = small_space()
        assert space.cardinality() == 8 * 3 * 2

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_decode_valid_always_valid(self, seed):
        space = small_space()
        rng = np.random.default_rng(seed)
        vector = rng.random(space.dims)
        config = space.decode_valid(vector, rng)
        assert space.is_valid(config)


class TestMlConfigSpace:
    def test_samples_produce_runnable_configs(self):
        space = ml_config_space(16)
        rng = np.random.default_rng(0)
        for config in space.sample_batch(rng, 200):
            training = to_training_config(config)
            assert training.machines_needed() <= 16

    def test_default_config_is_valid(self):
        space = ml_config_space(16)
        assert space.is_valid(from_training_config(DEFAULT_CONFIG))

    def test_roundtrip_through_dict(self):
        config = TrainingConfig(
            num_workers=5, num_ps=3, sync_mode="ssp", staleness_bound=4
        )
        assert to_training_config(from_training_config(config)) == config.canonical()

    def test_ssp_zero_staleness_excluded(self):
        space = ml_config_space(16)
        bad = from_training_config(DEFAULT_CONFIG)
        bad["sync_mode"] = "ssp"
        bad["staleness_bound"] = 0
        assert not space.is_valid(bad)

    def test_ps_only_variant(self):
        space = ml_config_space(16, include_allreduce=False)
        rng = np.random.default_rng(0)
        for config in space.sample_batch(rng, 50):
            assert config["architecture"] == "ps"

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ml_config_space(1)

    def test_describe_covers_all_knobs(self):
        space = ml_config_space(16)
        described = {row["name"] for row in space.describe()}
        assert described == set(space.names())

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_encode_decode_identity_on_samples(self, seed):
        space = ml_config_space(8)
        rng = np.random.default_rng(seed)
        config = space.sample(rng)
        assert space.decode(space.encode(config)) == config


class TestEncodeBatch:
    def test_matches_scalar_encode_bitwise(self):
        space = ml_config_space(16)
        rng = np.random.default_rng(0)
        configs = space.sample_batch(rng, 64)
        batch = space.encode_batch(configs)
        stacked = np.array([space.encode(c) for c in configs])
        assert batch.shape == (64, space.dims)
        assert np.array_equal(batch, stacked)

    def test_matches_scalar_encode_on_small_space(self):
        space = small_space()
        rng = np.random.default_rng(1)
        configs = space.sample_batch(rng, 32)
        assert np.array_equal(
            space.encode_batch(configs),
            np.array([space.encode(c) for c in configs]),
        )

    def test_empty_batch_has_right_shape(self):
        space = ml_config_space(8)
        assert space.encode_batch([]).shape == (0, space.dims)

    def test_missing_parameter_raises(self):
        space = small_space()
        with pytest.raises(KeyError):
            space.encode_batch([{"a": 2, "mode": "x"}])

    def test_out_of_range_value_raises(self):
        space = small_space()
        with pytest.raises(ValueError):
            space.encode_batch([{"a": 99, "mode": "x", "flag": False}])
        with pytest.raises(ValueError):
            space.encode_batch([{"a": 2, "mode": "nope", "flag": False}])

    def test_nan_value_raises(self):
        space = ConfigSpace([IntParameter("a", 1, 8)])
        with pytest.raises(ValueError):
            space.encode_batch([{"a": float("nan")}])
