"""Tests for the multi-tenant TuningService.

Pins the PR's acceptance properties: clean admission control, the
weighted fair-share allocation invariants, tenant isolation (failure,
cost caps, and scheduling order never perturb another tenant's
trajectory or accounting), bit-identical concurrent-vs-standalone runs
for pinned tenants, repository recording, and warm-start wiring.
"""

import os

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.configspace import ml_config_space
from repro.core import TuningBudget
from repro.core.service import (
    AdmissionError,
    ShardTemplate,
    TenantHandle,
    TenantSpec,
    TuningService,
    training_shard_templates,
)
from repro.core.strategy import SearchStrategy
from repro.core.transfer import HistoryRepository
from repro.core.tuner import MLConfigTuner
from repro.workloads import get_workload

NODES = 8
RESNET = get_workload("resnet50-imagenet")
VGG = get_workload("vgg16-imagenet")


def space():
    return ml_config_space(NODES)


def templates(multipliers=(1.0, 1.25, 0.8, 1.5)):
    return training_shard_templates(nodes=NODES, cost_multipliers=multipliers)


def service(**kwargs):
    kwargs.setdefault("repository", None)
    return TuningService(templates(), space(), **kwargs)


def tenant(name, seed=0, trials=8, workload=RESNET, **kwargs):
    kwargs.setdefault("slots", 2)
    return TenantSpec(
        name,
        lambda: RandomSearch(),
        TuningBudget(max_trials=trials),
        seed=seed,
        workload=workload,
        **kwargs,
    )


def trajectory(result):
    return [(t.config, t.objective, t.shard) for t in result.history.trials]


class _ExplodingStrategy(SearchStrategy):
    """Proposes randomly, then raises after ``healthy`` proposals."""

    name = "exploding"

    def __init__(self, healthy=3):
        self.healthy = healthy
        self._calls = 0

    def reset(self):
        self._calls = 0

    def propose(self, history, space, rng):
        self._calls += 1
        if self._calls > self.healthy:
            raise RuntimeError("tenant strategy exploded")
        return space.sample(rng)


class TestAdmission:
    def test_over_capacity_guarantee_rejected(self):
        svc = service()
        with pytest.raises(AdmissionError, match="demands 99 guaranteed slots"):
            svc.submit(tenant("big", slots=99))

    def test_duplicate_name_rejected(self):
        svc = service()
        svc.submit(tenant("a"))
        with pytest.raises(AdmissionError, match="already submitted"):
            svc.submit(tenant("a"))

    def test_max_tenants_enforced(self):
        svc = service(max_tenants=1)
        svc.submit(tenant("a"))
        with pytest.raises(AdmissionError, match="max_tenants"):
            svc.submit(tenant("b"))

    def test_invalid_specs_rejected(self):
        svc = service()
        with pytest.raises(AdmissionError, match="slots must be >= 1"):
            svc.submit(tenant("a", slots=0))
        with pytest.raises(AdmissionError, match="below the guaranteed"):
            svc.submit(tenant("b", slots=3, max_slots=2))
        with pytest.raises(AdmissionError, match="weight must be positive"):
            svc.submit(tenant("c", weight=0.0))
        with pytest.raises(AdmissionError, match="executor_mode"):
            svc.submit(tenant("d", executor_mode="warp"))

    def test_oversubscription_queues_instead_of_rejecting(self):
        svc = service()
        for name in ("a", "b", "c"):
            svc.submit(tenant(name, trials=4))
        result = svc.run()
        assert [h.state for h in result.tenants] == ["done", "done", "done"]
        # The third tenant could not start until a guarantee freed up.
        third = result.tenants[2]
        assert third.started_at > 0
        assert third.started_at >= min(
            h.finished_at for h in result.tenants[:2]
        ) - 1e-9


class TestFairShare:
    def _handles(self, specs):
        return [TenantHandle(spec, order=i) for i, spec in enumerate(specs)]

    def test_allocation_invariants(self):
        svc = service()
        handles = self._handles(
            [
                tenant("a", slots=1, max_slots=4, weight=2.0),
                tenant("b", slots=1, max_slots=2, weight=1.0),
                tenant("c", slots=1),  # pinned
            ]
        )
        allocation = svc._allocation(handles)
        assert sum(allocation.values()) <= svc.total_capacity
        for handle in handles:
            assert handle.spec.slots <= allocation[handle] <= handle.spec.ceiling
        # Work-conserving: a slot stays idle only when everyone is capped.
        if sum(allocation.values()) < svc.total_capacity:
            assert all(
                allocation[h] == h.spec.ceiling for h in handles
            )
        # The pinned tenant never grows past its guarantee.
        assert allocation[handles[2]] == 1

    def test_spare_goes_to_heavier_weight(self):
        svc = service()
        heavy, light = self._handles(
            [
                tenant("heavy", slots=1, max_slots=4, weight=3.0),
                tenant("light", slots=1, max_slots=4, weight=1.0),
            ]
        )
        allocation = svc._allocation([heavy, light])
        assert allocation[heavy] > allocation[light]
        assert sum(allocation.values()) == svc.total_capacity

    def test_lone_elastic_tenant_reclaims_whole_fleet(self):
        svc = service()
        (handle,) = self._handles([tenant("solo", slots=1, max_slots=8)])
        assert svc._allocation([handle])[handle] == svc.total_capacity

    def test_reclaim_capped_at_ceiling(self):
        svc = service()
        (handle,) = self._handles([tenant("solo", slots=1, max_slots=2)])
        assert svc._allocation([handle])[handle] == 2


class TestAccounting:
    def test_per_tenant_costs_sum_to_pool_totals(self):
        svc = service()
        svc.submit(tenant("a", seed=1, trials=6))
        svc.submit(tenant("b", seed=2, trials=6, workload=VGG))
        svc.run()
        by_shard = svc.cost_by_shard()
        assert sum(by_shard.values()) == pytest.approx(svc.total_cost_s())
        tenant_sum = {}
        for handle in svc._handles:
            for shard, cost in handle.history.cost_by_shard().items():
                tenant_sum[shard] = tenant_sum.get(shard, 0.0) + cost
        assert tenant_sum == pytest.approx(by_shard)

    def test_ledger_plus_cancellations_covers_totals(self):
        svc = service()
        # A cost cap strands in-flight probes, whose machine time is
        # charged as cancellation rather than through the ledger.
        svc.submit(
            TenantSpec(
                "capped",
                lambda: RandomSearch(),
                TuningBudget(max_trials=None, max_cost_s=400.0),
                seed=3,
                slots=2,
                workload=RESNET,
            )
        )
        svc.submit(tenant("b", seed=4, trials=6))
        svc.run()
        recorded = sum(svc.recorded_cost_by_shard.values())
        total = svc.total_cost_s()
        assert recorded <= total + 1e-9
        cancelled = total - recorded
        assert cancelled >= 0
        assert sum(svc.cost_by_shard().values()) == pytest.approx(total)

    def test_cost_cap_tenant_does_not_perturb_neighbour(self):
        baseline = service()
        neighbour_alone = baseline.run_standalone(tenant("b", seed=4, trials=6))
        svc = service()
        svc.submit(
            TenantSpec(
                "capped",
                lambda: RandomSearch(),
                TuningBudget(max_trials=None, max_cost_s=400.0),
                seed=3,
                slots=2,
                workload=RESNET,
            )
        )
        svc.submit(tenant("b", seed=4, trials=6))
        result = svc.run()
        neighbour = next(h for h in result.tenants if h.spec.name == "b")
        assert trajectory(neighbour.result) == trajectory(neighbour_alone)


class TestDeterminism:
    def test_concurrent_equals_standalone_for_pinned_tenants(self):
        svc = service()
        svc.submit(tenant("a", seed=1, trials=8))
        svc.submit(tenant("b", seed=2, trials=8, workload=VGG))
        result = svc.run()
        for handle in result.tenants:
            alone = service().run_standalone(handle.spec)
            assert trajectory(handle.result) == trajectory(alone)

    def test_submission_order_does_not_perturb_trajectories(self):
        first = service()
        first.submit(tenant("a", seed=1, trials=8))
        first.submit(tenant("b", seed=2, trials=8, workload=VGG))
        forward = {h.spec.name: trajectory(h.result) for h in first.run().tenants}
        second = service()
        second.submit(tenant("b", seed=2, trials=8, workload=VGG))
        second.submit(tenant("a", seed=1, trials=8))
        reverse = {h.spec.name: trajectory(h.result) for h in second.run().tenants}
        assert forward == reverse

    def test_rng_streams_are_per_tenant(self):
        svc = service()
        svc.submit(tenant("a", seed=7, trials=6))
        svc.submit(tenant("twin", seed=7, trials=6))
        result = svc.run()
        a, twin = result.tenants
        # Same seed, same workload: identical streams regardless of the
        # interleaved scheduling between them.
        assert trajectory(a.result) == trajectory(twin.result)


class TestIsolation:
    def test_failed_tenant_leaves_neighbour_untouched(self):
        alone = service().run_standalone(tenant("b", seed=2, trials=8))
        svc = service()
        svc.submit(
            TenantSpec(
                "bad",
                lambda: _ExplodingStrategy(healthy=2),
                TuningBudget(max_trials=20),
                seed=1,
                slots=2,
                workload=RESNET,
                executor_mode="serial",
            )
        )
        svc.submit(tenant("b", seed=2, trials=8))
        result = svc.run()
        bad = next(h for h in result.tenants if h.spec.name == "bad")
        good = next(h for h in result.tenants if h.spec.name == "b")
        assert bad.state == "failed"
        assert "exploded" in str(bad.error)
        assert good.state == "done"
        assert trajectory(good.result) == trajectory(alone)

    def test_failure_frees_capacity_for_queued_tenant(self):
        svc = service()
        svc.submit(
            TenantSpec(
                "bad",
                lambda: _ExplodingStrategy(healthy=2),
                TuningBudget(max_trials=20),
                seed=1,
                slots=2,
                workload=RESNET,
                executor_mode="serial",
            )
        )
        svc.submit(tenant("b", seed=2, trials=4))
        svc.submit(tenant("c", seed=3, trials=4))
        result = svc.run()
        states = {h.spec.name: h.state for h in result.tenants}
        assert states == {"bad": "failed", "b": "done", "c": "done"}


class TestRepositoryIntegration:
    def _repo(self, tmp_path):
        return HistoryRepository(os.path.join(tmp_path, "history.jsonl"))

    def test_completed_sessions_recorded(self, tmp_path):
        repo = self._repo(tmp_path)
        svc = service(repository=repo)
        svc.submit(tenant("a", seed=1, trials=6))
        svc.submit(tenant("b", seed=2, trials=6, workload=VGG))
        svc.run()
        assert len(repo) == 2
        assert repo.workloads() == sorted({RESNET.name, VGG.name})
        entry = repo.sessions()[0]
        assert entry["fingerprint"]
        assert entry["metadata"]["tenant"] in ("a", "b")

    def test_record_sessions_off(self, tmp_path):
        repo = self._repo(tmp_path)
        svc = service(repository=repo, record_sessions=False)
        svc.submit(tenant("a", seed=1, trials=6))
        svc.run()
        assert len(repo) == 0

    def test_warm_start_installs_prior(self, tmp_path):
        repo = self._repo(tmp_path)
        cold = TuningService(templates(), space(), repository=repo)
        cold.submit(
            TenantSpec(
                "seed",
                lambda: MLConfigTuner(n_initial=4, seed=1),
                TuningBudget(max_trials=10),
                seed=1,
                slots=2,
                workload=RESNET,
            )
        )
        cold.run()
        warm_svc = TuningService(templates(), space(), repository=repo)
        handle = warm_svc.submit(
            TenantSpec(
                "warm",
                lambda: MLConfigTuner(n_initial=8, seed=2),
                TuningBudget(max_trials=8),
                seed=2,
                slots=2,
                workload=RESNET,
            )
        )
        warm_svc.run()
        assert handle.warm
        assert handle.mapped_from == RESNET.name
        assert handle.strategy.prior_mean is not None
        assert handle.strategy.n_initial == 4  # trimmed to warm_n_initial

    def test_warm_start_switch_off(self, tmp_path):
        repo = self._repo(tmp_path)
        cold = TuningService(templates(), space(), repository=repo)
        cold.submit(tenant("seed", seed=1, trials=6))
        cold.run()
        svc = TuningService(templates(), space(), repository=repo, warm_start=False)
        handle = svc.submit(
            TenantSpec(
                "cold",
                lambda: MLConfigTuner(n_initial=8, seed=2),
                TuningBudget(max_trials=6),
                seed=2,
                slots=2,
                workload=RESNET,
            )
        )
        svc.run()
        assert not handle.warm
        assert handle.strategy.prior_mean is None

    def test_warm_start_unwraps_stopping_wrapper(self, tmp_path):
        from repro.core.stopping import StoppedStrategy, TargetRule

        repo = self._repo(tmp_path)
        cold = TuningService(templates(), space(), repository=repo)
        cold.submit(
            TenantSpec(
                "seed",
                lambda: MLConfigTuner(n_initial=4, seed=1),
                TuningBudget(max_trials=10),
                seed=1,
                slots=2,
                workload=RESNET,
            )
        )
        cold.run()
        warm_svc = TuningService(templates(), space(), repository=repo)
        handle = warm_svc.submit(
            TenantSpec(
                "warm",
                lambda: StoppedStrategy(
                    MLConfigTuner(n_initial=8, seed=2), [TargetRule(1e12)]
                ),
                TuningBudget(max_trials=8),
                seed=2,
                slots=2,
                workload=RESNET,
            )
        )
        warm_svc.run()
        # The prior lands on the wrapped tuner, not the stopping shell.
        assert handle.warm
        assert handle.strategy.inner.prior_mean is not None
        assert handle.strategy.inner.n_initial == 4

    def test_strategy_without_prior_hook_stays_cold(self, tmp_path):
        repo = self._repo(tmp_path)
        cold = TuningService(templates(), space(), repository=repo)
        cold.submit(tenant("seed", seed=1, trials=6))
        cold.run()
        svc = TuningService(templates(), space(), repository=repo)
        handle = svc.submit(tenant("random", seed=2, trials=6))
        svc.run()
        assert not handle.warm


class TestServiceResult:
    def test_result_shape(self):
        svc = service()
        svc.submit(tenant("a", seed=1, trials=6))
        svc.submit(tenant("b", seed=2, trials=6))
        result = svc.run()
        assert len(result.completed) == 2
        assert not result.failed
        assert result.makespan_s == pytest.approx(
            max(h.finished_at for h in result.tenants)
        )
        assert result.sessions_per_hour() > 0

    def test_shard_template_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ShardTemplate("s", lambda spec, i: None, capacity=0)
        with pytest.raises(ValueError, match="cost_multiplier"):
            ShardTemplate("s", lambda spec, i: None, cost_multiplier=-1.0)
        with pytest.raises(ValueError, match="unique"):
            TuningService(
                [
                    ShardTemplate("s", lambda spec, i: None),
                    ShardTemplate("s", lambda spec, i: None),
                ],
                space(),
            )

    def test_lease_width_tracked_on_handles(self):
        svc = service()
        handle = svc.submit(tenant("a", seed=1, trials=4, slots=2, max_slots=4))
        svc.run()
        # Alone on a 4-slot fleet with ceiling 4, reclaim grows the lease.
        assert handle.lease == 4
