"""Property tests for the vectorized candidate pipeline (PR 5).

The batched sampling/decoding/neighbour paths must agree with the scalar
paths they replace: identical values where a shared deterministic path is
documented (decode, neighbours, encodings), identical *distributions* for
sampling (the batched sampler consumes the RNG stream in a different
order, so individual draws differ but the law does not).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configspace import (
    BoolParameter,
    CategoricalParameter,
    ConfigSpace,
    ExhaustedSpaceError,
    FloatParameter,
    IntParameter,
    ml_config_space,
)


def small_space():
    return ConfigSpace(
        [
            IntParameter("a", 1, 8),
            IntParameter("b", 1, 64, log=True),
            FloatParameter("f", 0.0, 2.0),
            CategoricalParameter("mode", ["x", "y", "z"]),
            BoolParameter("flag"),
        ],
        constraints={"a_even_when_flag": lambda c: (not c["flag"]) or c["a"] % 2 == 0},
    )


class TestDecodeBatch:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_decode_rowwise(self, seed):
        space = small_space()
        matrix = np.random.default_rng(seed).random((40, space.dims))
        assert space.decode_batch(matrix) == [space.decode(row) for row in matrix]

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_scalar_decode_on_ml_space(self, seed):
        space = ml_config_space(16)
        matrix = np.random.default_rng(seed).random((25, space.dims))
        assert space.decode_batch(matrix) == [space.decode(row) for row in matrix]

    def test_values_are_native_python_types(self):
        space = small_space()
        config = space.decode_batch(np.full((1, space.dims), 0.4))[0]
        assert {type(v) for v in config.values()} <= {int, float, str, bool}

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            small_space().decode_batch(np.zeros((3, 2)))


class TestSampleBatch:
    def test_all_valid_and_deterministic(self):
        space = ml_config_space(16)
        batch_a = space.sample_batch(np.random.default_rng(7), 128)
        batch_b = space.sample_batch(np.random.default_rng(7), 128)
        assert batch_a == batch_b
        assert all(space.is_valid(c) for c in batch_a)

    def test_distribution_matches_scalar_sampling(self):
        """Same marginal law as the scalar loop (tolerant statistical check)."""
        space = ml_config_space(16)
        vec = space.sample_batch(np.random.default_rng(11), 2500)
        scalar_rng = np.random.default_rng(12)
        sca = [space.sample(scalar_rng) for _ in range(2500)]
        for knob in ("num_workers", "num_ps", "intra_op_threads"):
            mv = np.mean([c[knob] for c in vec])
            ms = np.mean([c[knob] for c in sca])
            assert abs(mv - ms) / max(abs(ms), 1.0) < 0.08, (knob, mv, ms)
        for knob in ("architecture", "sync_mode", "colocate_ps"):
            for value in {c[knob] for c in vec}:
                fv = np.mean([c[knob] == value for c in vec])
                fs = np.mean([c[knob] == value for c in sca])
                assert abs(fv - fs) < 0.05, (knob, value, fv, fs)

    def test_encoded_matrix_matches_reencoding(self):
        space = ml_config_space(16)
        matrix, columns = space.sample_batch_encoded(np.random.default_rng(3), 300)
        configs = [space.config_at(columns, i) for i in range(300)]
        assert all(space.is_valid(c) for c in configs)
        # encode_column may differ from encode_batch in the last ulp on
        # log-scaled knobs (vectorised log); nothing more.
        assert np.allclose(matrix, space.encode_batch(configs), rtol=0, atol=1e-12)

    def test_scalar_only_runtime_constraint_honoured(self):
        # exp_f6 pins constraints at runtime with no vectorised twin: the
        # batch sampler must fall back to the scalar predicate.
        space = ml_config_space(16, include_allreduce=False)
        space.constraints["pin_bsp"] = lambda c: c["sync_mode"] == "bsp"
        batch = space.sample_batch(np.random.default_rng(0), 100)
        assert all(c["sync_mode"] == "bsp" for c in batch)

    def test_unsatisfiable_raises(self):
        space = ConfigSpace(
            [IntParameter("a", 1, 8)],
            constraints={"impossible": lambda c: False},
            max_rejection_tries=20,
        )
        with pytest.raises(ExhaustedSpaceError):
            space.sample_batch(np.random.default_rng(0), 4)

    def test_count_zero(self):
        assert small_space().sample_batch(np.random.default_rng(0), 0) == []


class TestBatchConstraints:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_ml_space_batch_twins_agree_with_scalar(self, seed):
        space = ml_config_space(12)
        matrix = np.random.default_rng(seed).random((30, space.dims))
        columns = space._decode_columns(matrix)
        mask = space.valid_mask(columns)
        expected = [
            space.is_valid(space.config_at(columns, i)) for i in range(30)
        ]
        assert mask.tolist() == expected

    def test_ps_only_twin(self):
        space = ml_config_space(12, include_allreduce=False)
        matrix = np.random.default_rng(5).random((40, space.dims))
        columns = space._decode_columns(matrix)
        mask = space.valid_mask(columns)
        for i in range(40):
            assert mask[i] == space.is_valid(space.config_at(columns, i))

    def test_bad_batch_constraint_shape_rejected(self):
        space = small_space()
        space.batch_constraints["a_even_when_flag"] = lambda cols: np.ones(3, bool)
        with pytest.raises(ValueError, match="batch constraint"):
            space.sample_batch(np.random.default_rng(0), 8)


class TestNeighborsBatch:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bit_identical_to_scalar_neighbors(self, seed):
        space = ml_config_space(16)
        rng = np.random.default_rng(seed)
        config = space.sample(rng)
        matrix, moves = space.neighbors_batch(config, rng)
        assert moves == space.neighbors(config, rng)
        assert np.array_equal(matrix, space.encode_batch(moves))

    def test_base_row_shortcut(self):
        space = ml_config_space(16)
        rng = np.random.default_rng(1)
        config = space.sample(rng)
        with_row = space.neighbors_batch(config, rng, base_row=space.encode(config))
        plain = space.neighbors_batch(config, rng)
        assert with_row[1] == plain[1]
        assert np.array_equal(with_row[0], plain[0])

    def test_empty_neighbourhood(self):
        space = ConfigSpace([IntParameter("a", 3, 3)])
        matrix, moves = space.neighbors_batch({"a": 3}, np.random.default_rng(0))
        assert moves == [] and matrix.shape == (0, space.dims)


class TestNameLookup:
    def test_getitem_contains_via_index(self):
        space = small_space()
        assert space["mode"].name == "mode"
        assert "flag" in space and "nope" not in space
        with pytest.raises(KeyError):
            space["nope"]

    def test_duplicate_names_still_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSpace([IntParameter("a", 1, 2), IntParameter("a", 1, 3)])
