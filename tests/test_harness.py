"""Tests for harness metrics, optimum estimation, comparisons, and tables."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ml_config_space, to_training_config
from repro.core import MLConfigTuner, TrialHistory, TuningBudget, TuningResult
from repro.harness import (
    clear_optimum_cache,
    compare_strategies,
    estimate_optimum,
    metrics,
    render_series,
    render_table,
    to_csv,
)
from repro.mlsim import Measurement, TrainingConfig, TrainingEnvironment
from repro.workloads import get_workload

WORKLOAD = get_workload("resnet50-imagenet")


def synthetic_result(objectives, costs=None):
    history = TrialHistory()
    costs = costs or [10.0] * len(objectives)
    for objective, cost in zip(objectives, costs):
        ok = objective is not None
        history.record(
            {"i": len(history)},
            Measurement(
                config=TrainingConfig(),
                ok=ok,
                fidelity="analytic",
                objective=objective,
                probe_cost_s=cost,
            ),
        )
    return TuningResult(
        strategy="synthetic", history=history, best_trial=history.best(), environment={}
    )


class TestNormalization:
    def test_positive_objective(self):
        assert metrics.normalize_objective(80.0, 100.0) == pytest.approx(0.8)
        assert metrics.normalize_objective(100.0, 100.0) == pytest.approx(1.0)

    def test_negative_objective_tta(self):
        # optimum = -100 s, found = -125 s: normalized 0.8.
        assert metrics.normalize_objective(-125.0, -100.0) == pytest.approx(0.8)
        assert metrics.normalize_objective(-100.0, -100.0) == pytest.approx(1.0)

    def test_none_maps_to_zero(self):
        assert metrics.normalize_objective(None, 100.0) == 0.0

    def test_zero_optimum_rejected(self):
        with pytest.raises(ValueError):
            metrics.normalize_objective(1.0, 0.0)


class TestSearchCostMetrics:
    def test_trials_to_within(self):
        result = synthetic_result([50.0, 80.0, 96.0, 99.0])
        assert metrics.trials_to_within(result, 100.0, 0.05) == 3
        assert metrics.trials_to_within(result, 100.0, 0.01) == 4

    def test_unreached_threshold_is_none(self):
        result = synthetic_result([50.0, 60.0])
        assert metrics.trials_to_within(result, 100.0, 0.05) is None
        assert metrics.cost_to_within(result, 100.0, 0.05) is None

    def test_cost_to_within(self):
        result = synthetic_result([50.0, 96.0], costs=[10.0, 30.0])
        assert metrics.cost_to_within(result, 100.0, 0.05) == pytest.approx(40.0)

    def test_fraction_validation(self):
        result = synthetic_result([1.0])
        with pytest.raises(ValueError):
            metrics.trials_to_within(result, 1.0, 1.5)

    def test_failed_trials_skipped_in_best_so_far(self):
        result = synthetic_result([None, 90.0, None, 95.0])
        curve = metrics.normalized_best_so_far(result, 100.0)
        assert curve == pytest.approx([0.0, 0.9, 0.9, 0.95])


class TestMeanCurve:
    def test_pointwise_mean(self):
        assert metrics.mean_curve([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_short_curves_padded_with_last_value(self):
        assert metrics.mean_curve([[1.0], [3.0, 5.0]]) == [2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.mean_curve([])
        with pytest.raises(ValueError):
            metrics.mean_curve([[]])


class TestSpeedup:
    def test_throughput_speedup(self):
        assert metrics.speedup(300.0, 100.0) == pytest.approx(3.0)

    def test_tta_speedup(self):
        assert metrics.speedup(-100.0, -300.0) == pytest.approx(3.0)


class TestEstimateOptimum:
    def test_optimum_dominates_random_search(self):
        clear_optimum_cache()
        cluster = homogeneous(8)
        env = TrainingEnvironment(WORKLOAD, cluster, seed=0)
        space = ml_config_space(8)
        _, optimum = estimate_optimum(env, space, samples=400, seed=0)
        random = RandomSearch().run(
            TrainingEnvironment(WORKLOAD, cluster, seed=0, noise_cv=0.0),
            space,
            TuningBudget(max_trials=30),
            seed=1,
        )
        assert optimum >= random.best_objective * 0.999

    def test_cached_between_calls(self):
        clear_optimum_cache()
        cluster = homogeneous(8)
        env = TrainingEnvironment(WORKLOAD, cluster, seed=0)
        space = ml_config_space(8)
        first = estimate_optimum(env, space, samples=200, seed=0)
        second = estimate_optimum(env, space, samples=200, seed=0)
        assert first == second

    def test_optimum_config_is_feasible(self):
        clear_optimum_cache()
        cluster = homogeneous(8)
        env = TrainingEnvironment(WORKLOAD, cluster, seed=0)
        space = ml_config_space(8)
        config, value = estimate_optimum(env, space, samples=200, seed=0)
        assert env.true_objective(to_training_config(config)) == pytest.approx(value)

    @pytest.mark.parametrize("objective", ["throughput", "tta"])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_batch_path_bit_identical_to_scalar(self, objective, seed):
        cluster = homogeneous(8)
        env = TrainingEnvironment(WORKLOAD, cluster, seed=3, objective_name=objective)
        space = ml_config_space(8)
        clear_optimum_cache()
        batch = estimate_optimum(
            env, space, samples=300, refinement_rounds=8, seed=seed, vectorized=True
        )
        clear_optimum_cache()
        scalar = estimate_optimum(
            env, space, samples=300, refinement_rounds=8, seed=seed, vectorized=False
        )
        clear_optimum_cache()
        # Same winning config AND the exact same float, not approx: the
        # batch engine replays the scalar path's operation order.
        assert batch == scalar

    def test_drifted_environment_does_not_reuse_stationary_optimum(self):
        # Regression: the memo key once ignored the drift schedule, so a
        # drifted environment silently reused its stationary twin's
        # optimum (and vice versa) — normalising post-drift results
        # against a pre-drift anchor.
        from repro.mlsim import StepDrift, StragglerOnset, CompositeDrift

        clear_optimum_cache()
        cluster = homogeneous(8)
        space = ml_config_space(8)
        drift = CompositeDrift(
            (
                StragglerOnset(at_s=10.0, fraction=0.5, slowdown=8.0),
                StepDrift(at_s=10.0, intensity=2.0),
            )
        )
        stationary = TrainingEnvironment(WORKLOAD, cluster, seed=0)
        drifted = TrainingEnvironment(WORKLOAD, cluster, seed=0, drift=drift)
        drifted.set_clock(50.0)
        _, stationary_value = estimate_optimum(stationary, space, samples=200, seed=0)
        _, drifted_value = estimate_optimum(drifted, space, samples=200, seed=0)
        assert drifted_value != stationary_value

        # Two clock epochs of one drifted environment are different
        # problems too: advancing the clock must miss the earlier entry.
        late = TrainingEnvironment(WORKLOAD, cluster, seed=0, drift=drift)
        late.set_clock(5.0)  # pre-drift epoch
        _, early_value = estimate_optimum(late, space, samples=200, seed=0)
        assert early_value != drifted_value
        assert early_value == stationary_value  # pre-onset surface is stationary
        clear_optimum_cache()


class TestCompareStrategies:
    def test_structure_and_ranking(self):
        comparison = compare_strategies(
            {
                "random": lambda seed: RandomSearch(),
                "bo": lambda seed: MLConfigTuner(seed=seed, n_initial=4),
            },
            WORKLOAD,
            homogeneous(8),
            TuningBudget(max_trials=10),
            repeats=2,
            seed=0,
        )
        assert set(comparison.outcomes) == {"random", "bo"}
        for outcome in comparison.outcomes.values():
            assert len(outcome.results) == 2
            assert len(outcome.mean_curve) >= 10
            assert 0 < outcome.mean_normalized_best <= 1.05
        assert comparison.ranking()[0] in {"random", "bo"}

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            compare_strategies(
                {"r": lambda seed: RandomSearch()},
                WORKLOAD,
                homogeneous(8),
                TuningBudget(max_trials=2),
                repeats=0,
            )


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [None, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("a")
        assert "—" in lines[3]  # None renders as an em dash

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        text = render_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"s": [0.1]})

    def test_csv_roundtrip(self):
        csv_text = to_csv(["a", "b"], [[1, None], ["x", 2.5]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
