"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    EventQueue,
    SimulationError,
    Simulator,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, (2,))
        queue.push(1.0, fired.append, (1,))
        queue.push(3.0, fired.append, (3,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == [1, 2, 3]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.push(1.0, fired.append, (i,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == list(range(10))

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, (1,))
        queue.push(2.0, fired.append, (2,))
        event.cancel()
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == [2]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_nan_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(float("nan"), lambda: None)

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
        assert len(queue) == 1
        queue.clear()
        assert len(queue) == 0


class TestSimulatorScheduling:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, (1,))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [1]

    def test_run_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_steps(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_steps=3)
        assert sim.steps_executed == 3


class TestProcesses:
    def test_simple_timeout_process(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(1.5)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [1.5]

    def test_yield_number_is_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            yield 2.0
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [2.0]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        log = []

        def proc():
            for _ in range(3):
                yield sim.timeout(1.0)
                log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_join_on_child_process(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(4.0)
            return "done"

        def parent():
            result = yield sim.spawn(child())
            log.append((sim.now, result))

        sim.spawn(parent())
        sim.run()
        assert log == [(4.0, "done")]

    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        log = []

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def parent():
            results = yield sim.all_of(
                [sim.spawn(worker(d)) for d in (1.0, 3.0, 2.0)]
            )
            log.append((sim.now, results))

        sim.spawn(parent())
        sim.run()
        assert log == [(3.0, [1.0, 3.0, 2.0])]

    def test_all_of_empty_completes_immediately(self):
        sim = Simulator()
        log = []

        def parent():
            result = yield sim.all_of([])
            log.append(result)

        sim.spawn(parent())
        sim.run()
        assert log == [[]]

    def test_signal_wakes_waiter(self):
        sim = Simulator()
        signal = sim.signal()
        log = []

        def waiter():
            value = yield signal
            log.append((sim.now, value))

        def firer():
            yield sim.timeout(7.0)
            signal.complete("fired")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert log == [(7.0, "fired")]

    def test_waiting_on_completed_waitable_resumes_immediately(self):
        sim = Simulator()
        signal = sim.signal()
        signal.complete("early")
        log = []

        def waiter():
            value = yield signal
            log.append(value)

        sim.spawn(waiter())
        sim.run()
        assert log == ["early"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-0.5)

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a waitable"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_kill_terminates_process(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(10.0)
            log.append("should not happen")

        process = sim.spawn(proc())
        sim.run(until=1.0)
        process.kill()
        sim.run()
        assert log == []
        assert not process.alive

    def test_determinism_two_identical_runs(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(name, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    log.append((sim.now, name))

            sim.spawn(worker("a", 1.0))
            sim.spawn(worker("b", 1.0))
            sim.spawn(worker("c", 0.7))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
