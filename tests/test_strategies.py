"""Tests for the strategy interface and every baseline tuner."""

import pytest

from repro.baselines import (
    CherryPick,
    CoordinateDescent,
    FixedConfig,
    GridSearch,
    HillClimbing,
    OtterTuneStyle,
    RandomSearch,
    SimulatedAnnealing,
    WorkloadRepository,
    default_strategy,
    expert_strategy,
)
from repro.cluster import homogeneous
from repro.configspace import from_training_config, ml_config_space
from repro.core import TuningBudget
from repro.mlsim import DEFAULT_CONFIG, TrainingEnvironment
from repro.workloads import get_workload

NODES = 8
WORKLOAD = get_workload("resnet50-imagenet")


def make_env(seed=0, **kwargs):
    return TrainingEnvironment(WORKLOAD, homogeneous(NODES), seed=seed, **kwargs)


def space():
    return ml_config_space(NODES)


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuningBudget(max_trials=None, max_cost_s=None)
        with pytest.raises(ValueError):
            TuningBudget(max_trials=0)
        with pytest.raises(ValueError):
            TuningBudget(max_trials=None, max_cost_s=-5)

    def test_trial_budget_respected(self):
        result = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=7))
        assert result.num_trials == 7

    def test_cost_budget_respected(self):
        budget = TuningBudget(max_trials=None, max_cost_s=500.0)
        result = RandomSearch().run(make_env(), space(), budget)
        # Stops after the first trial that pushes cumulative cost past cap.
        assert result.history.total_cost_s >= 500.0
        assert result.history[-2].cumulative_cost_s < 500.0 or result.num_trials == 1


class TestRandomSearch:
    def test_result_well_formed(self):
        result = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=10), seed=1)
        assert result.strategy == "random"
        assert result.best_trial is not None
        assert result.best_objective > 0
        assert result.environment["workload"] == WORKLOAD.name

    def test_reproducible_given_seed(self):
        a = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=8), seed=3)
        b = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=8), seed=3)
        assert [t.config for t in a.history] == [t.config for t in b.history]

    def test_best_so_far_is_monotone(self):
        result = RandomSearch().run(make_env(), space(), TuningBudget(max_trials=15), seed=2)
        series = [v for v in result.history.best_so_far_series() if v is not None]
        assert all(b >= a for a, b in zip(series, series[1:]))


class TestFixedStrategies:
    def test_fixed_config_runs_once(self):
        strategy = FixedConfig(from_training_config(DEFAULT_CONFIG), name="fixed-test")
        result = strategy.run(make_env(), space(), TuningBudget(max_trials=10))
        assert result.num_trials == 1
        assert result.strategy == "fixed-test"

    def test_default_strategy(self):
        result = default_strategy().run(make_env(), space(), TuningBudget(max_trials=5))
        assert result.num_trials == 1
        assert result.best_objective > 0

    def test_expert_beats_default_on_resnet(self):
        default = default_strategy().run(make_env(), space(), TuningBudget(max_trials=1))
        expert = expert_strategy(NODES, WORKLOAD.compute_comm_ratio).run(
            make_env(), space(), TuningBudget(max_trials=1)
        )
        assert expert.best_objective > default.best_objective


class TestGridSearch:
    def test_stops_when_grid_exhausted(self):
        strategy = GridSearch(resolution=1)
        result = strategy.run(make_env(), space(), TuningBudget(max_trials=500))
        assert result.num_trials == strategy.grid_size(space())

    def test_no_duplicate_points_within_grid(self):
        strategy = GridSearch(resolution=2, seed=1)
        result = strategy.run(make_env(), space(), TuningBudget(max_trials=30))
        seen = [tuple(sorted(t.config.items())) for t in result.history]
        assert len(seen) == len(set(seen))

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            GridSearch(resolution=0)


class TestLocalSearches:
    @pytest.mark.parametrize(
        "strategy_cls", [HillClimbing, SimulatedAnnealing, CoordinateDescent]
    )
    def test_runs_and_improves_over_first_trial(self, strategy_cls):
        result = strategy_cls(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=25), seed=0
        )
        assert result.num_trials == 25
        first = next(t.objective for t in result.history if t.ok)
        assert result.best_objective >= first

    def test_coordinate_starts_from_default(self):
        result = CoordinateDescent(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=5), seed=0
        )
        assert result.history[0].config == from_training_config(DEFAULT_CONFIG)

    def test_validation(self):
        with pytest.raises(ValueError):
            HillClimbing(patience=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.5)
        with pytest.raises(ValueError):
            CoordinateDescent(resolution=1)


class TestCherryPick:
    def test_runs_within_budget(self):
        result = CherryPick(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=18), seed=0
        )
        assert result.num_trials <= 18
        assert result.best_objective > 0

    def test_stop_fraction_validation(self):
        with pytest.raises(ValueError):
            CherryPick(ei_stop_fraction=1.5)


class TestOtterTune:
    def test_repository_normalises(self):
        repo = WorkloadRepository()
        observations = [({"a": i}, float(i)) for i in range(5)]
        repo.add_session("w1", observations)
        values = [v for _, v in repo.observations("w1")]
        assert abs(sum(values)) < 1e-9  # zero mean

    def test_repository_needs_two_observations(self):
        repo = WorkloadRepository()
        with pytest.raises(ValueError):
            repo.add_session("w1", [({"a": 1}, 1.0)])

    def test_runs_with_empty_repository(self):
        result = OtterTuneStyle(seed=0).run(
            make_env(), space(), TuningBudget(max_trials=12), seed=0
        )
        assert result.num_trials == 12
        assert result.best_objective > 0

    def test_maps_to_prior_workload(self):
        repo = WorkloadRepository()
        prior_env = make_env(seed=1)
        session = RandomSearch().run(
            prior_env, space(), TuningBudget(max_trials=15), seed=1
        )
        repo.add_session(
            "prior", [(t.config, t.objective) for t in session.history.successful()]
        )
        strategy = OtterTuneStyle(repository=repo, seed=0)
        strategy.run(make_env(), space(), TuningBudget(max_trials=12), seed=0)
        assert strategy.mapped_workload == "prior"
