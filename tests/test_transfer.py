"""Tests for repro.core.transfer and the PriorMeanGP warm-start tier.

Covers the OtterTune extraction (the baseline must remain bit-identical
to its pre-refactor behaviour), the persistent HistoryRepository, the
fingerprint-based nearest-workload matching, TransferPrior construction,
and the residual-GP prior-mean wrapper the service installs.
"""

import json
import os

import numpy as np
import pytest

import repro.baselines.ottertune as ottertune_module
from repro.baselines import OtterTuneStyle, RandomSearch, WorkloadRepository
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import TuningBudget
from repro.core.bo import BayesianProposer
from repro.core.gp import GaussianProcess, GPFitError, PriorMeanGP, SurrogateFactory
from repro.core.kernels import make_kernel
from repro.core.transfer import (
    HistoryRepository,
    TransferPrior,
    augment_history,
    build_prior,
    landmark_set,
    map_workload,
    workload_fingerprint,
)
from repro.core.trial import TrialHistory
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload

NODES = 8
WORKLOAD = get_workload("resnet50-imagenet")


def make_env(seed=0, **kwargs):
    return TrainingEnvironment(WORKLOAD, homogeneous(NODES), seed=seed, **kwargs)


def space():
    return ml_config_space(NODES)


def seeded_repository(seed=1, trials=15):
    repo = WorkloadRepository()
    session = RandomSearch().run(
        make_env(seed=seed), space(), TuningBudget(max_trials=trials), seed=seed
    )
    repo.add_session(
        "prior", [(t.config, t.objective) for t in session.history.successful()]
    )
    return repo


class _FrozenOtterTune(OtterTuneStyle):
    """The baseline with its pre-refactor mapping logic frozen inline.

    These three method bodies are verbatim copies of the implementation
    before the extraction into :mod:`repro.core.transfer`; the shim must
    produce bit-identical trajectories against them.
    """

    def _landmark_set(self, s):
        if self._landmarks is None:
            rng = np.random.default_rng(self.seed + 101)
            self._landmarks = s.latin_hypercube(rng, self.n_landmarks)
        return self._landmarks

    def _map_workload(self, history, s):
        if self.mapped_workload is not None or not len(self.repository):
            return
        landmark_trials = [t for t in history.trials[: self.n_landmarks] if t.ok]
        if len(landmark_trials) < 2:
            return
        target = np.array([t.objective for t in landmark_trials])
        target = (target - target.mean()) / (
            target.std() if target.std() > 0 else 1.0
        )
        target_x = [s.encode(t.config) for t in landmark_trials]
        best_name, best_dist = None, np.inf
        for name in self.repository.workloads():
            observations = self.repository.observations(name)
            if len(observations) < 3:
                continue
            x = np.array([s.encode(c) for c, _ in observations])
            y = np.array([v for _, v in observations])
            try:
                surrogate = GaussianProcess(
                    kernel=make_kernel("matern52", s.dims), seed=self.seed
                ).fit(x, y, optimize_hypers=False)
                mu, _ = surrogate.predict(np.array(target_x))
            except GPFitError:
                continue
            dist = float(np.linalg.norm(mu - target))
            if dist < best_dist:
                best_name, best_dist = name, dist
        self.mapped_workload = best_name

    def _augment_history(self, history, s):
        if self.mapped_workload is None:
            return history
        successes = history.successful()
        if len(successes) < 2:
            return history
        values = np.array([t.objective for t in successes])
        mean, std = float(values.mean()), float(values.std())
        if std <= 0:
            std = abs(mean) * 0.1 + 1.0
        from repro.mlsim import Measurement
        from repro.mlsim.config import TrainingConfig

        augmented = TrialHistory()
        for trial in history.trials:
            augmented.record(trial.config, trial.measurement)
        for config, norm_obj in self.repository.observations(self.mapped_workload):
            if not s.is_valid(config):
                continue
            synthetic = Measurement(
                config=TrainingConfig.from_dict(config),
                ok=True,
                fidelity="transfer",
                objective=mean + norm_obj * std,
                probe_cost_s=0.0,
            )
            augmented.record(config, synthetic)
        return augmented


class TestOtterTuneExtraction:
    def test_shim_reexports_the_same_repository_class(self):
        import repro.core.transfer as transfer

        assert ottertune_module.WorkloadRepository is transfer.WorkloadRepository

    def test_shim_trajectory_bit_identical_to_frozen_reference(self):
        repo = seeded_repository()
        budget = TuningBudget(max_trials=14)
        current = OtterTuneStyle(repository=repo, seed=0).run(
            make_env(), space(), budget, seed=0
        )
        frozen = _FrozenOtterTune(repository=repo, seed=0).run(
            make_env(), space(), budget, seed=0
        )
        assert [t.config for t in current.history.trials] == [
            t.config for t in frozen.history.trials
        ]
        assert [t.objective for t in current.history.trials] == [
            t.objective for t in frozen.history.trials
        ]

    def test_landmark_set_matches_strategy(self):
        strategy = OtterTuneStyle(seed=3)
        s = space()
        assert strategy._landmark_set(s) == landmark_set(s, strategy.n_landmarks, 3)

    def test_map_workload_needs_two_ok_landmarks(self):
        assert map_workload(seeded_repository(), TrialHistory(), space(), 4, 0) is None

    def test_augment_history_passthrough_without_mapping(self):
        history = TrialHistory()
        assert augment_history(history, space(), seeded_repository(), None) is history


class TestHistoryRepository:
    def _observations(self, n=4, offset=0.0):
        return [({"num_workers": i + 1}, float(i) + offset) for i in range(n)]

    def test_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "history.jsonl")
        repo = HistoryRepository(path)
        repo.add_session(
            "w1", self._observations(), fingerprint={"f": 2.0}, metadata={"seed": 7}
        )
        repo.add_session("w2", self._observations(offset=10.0))
        reloaded = HistoryRepository(path)
        assert len(reloaded) == 2
        assert reloaded.workloads() == ["w1", "w2"]
        assert reloaded.sessions() == repo.sessions()
        assert reloaded.observations("w1") == repo.observations("w1")
        assert reloaded.fingerprint("w1") == {"f": 2.0}
        # No temp files left behind by the atomic flush.
        assert [p.name for p in tmp_path.iterdir()] == ["history.jsonl"]

    def test_observations_normalised_per_session(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        repo.add_session("w", self._observations())
        repo.add_session("w", self._observations(offset=100.0))
        values = np.array([v for _, v in repo.observations("w")])
        # Each session normalises independently: both halves are zero-mean.
        assert abs(values[:4].mean()) < 1e-9
        assert abs(values[4:].mean()) < 1e-9

    def test_matches_in_memory_repository(self, tmp_path):
        persistent = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        in_memory = WorkloadRepository()
        for name, offset in (("a", 0.0), ("b", 5.0)):
            persistent.add_session(name, self._observations(offset=offset))
            in_memory.add_session(name, self._observations(offset=offset))
        converted = persistent.to_workload_repository()
        assert converted.workloads() == in_memory.workloads()
        for name in in_memory.workloads():
            assert persistent.observations(name) == in_memory.observations(name)
            assert converted.observations(name) == in_memory.observations(name)

    def test_needs_two_observations(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        with pytest.raises(ValueError):
            repo.add_session("w", self._observations(n=1))

    def test_corrupt_line_raises_with_location_in_strict_mode(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        with open(path, "w") as fh:
            fh.write('{"workload": "w", "observations": []}\n')
            fh.write("not json\n")
        with pytest.raises(ValueError, match="h.jsonl:2"):
            HistoryRepository(path, strict=True)

    def test_corrupt_line_quarantined_by_default(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        with open(path, "w") as fh:
            fh.write('{"workload": "w", "observations": []}\n')
            fh.write("not json\n")
        with pytest.warns(UserWarning, match="h.jsonl:2"):
            repo = HistoryRepository(path)
        assert repo.quarantined_lines == 1
        assert len(repo) == 1
        with open(repo.quarantine_path) as fh:
            assert fh.read() == "not json\n"

    def test_missing_file_is_empty(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "absent.jsonl"))
        assert len(repo) == 0
        assert repo.workloads() == []
        assert repo.nearest({"f": 1.0}) is None

    def test_numpy_values_serialise(self, tmp_path):
        path = os.path.join(tmp_path, "h.jsonl")
        repo = HistoryRepository(path)
        repo.add_session(
            "w",
            [({"k": np.int64(3)}, np.float64(1.0)), ({"k": np.int64(4)}, 2.0)],
            fingerprint={"f": np.float64(0.5)},
        )
        with open(path) as fh:
            entry = json.loads(fh.readline())
        assert entry["observations"][0][0]["k"] == 3
        assert entry["fingerprint"]["f"] == 0.5


class TestNearestFingerprint:
    def _repo(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        obs = [({"k": i}, float(i)) for i in range(3)]
        repo.add_session("small", obs, fingerprint={"flops": 1e9, "params": 1e6})
        repo.add_session("large", obs, fingerprint={"flops": 1e12, "params": 1e9})
        return repo

    def test_nearest_prefers_closest_in_log_space(self, tmp_path):
        repo = self._repo(tmp_path)
        assert repo.nearest({"flops": 2e9, "params": 2e6}) == "small"
        assert repo.nearest({"flops": 5e11, "params": 5e8}) == "large"

    def test_exclude_skips_self(self, tmp_path):
        repo = self._repo(tmp_path)
        assert repo.nearest({"flops": 1e9, "params": 1e6}, exclude=("small",)) == "large"

    def test_disjoint_features_is_none(self, tmp_path):
        assert self._repo(tmp_path).nearest({"other": 1.0}) is None

    def test_workload_fingerprint_features(self):
        fingerprint = workload_fingerprint(WORKLOAD)
        assert set(fingerprint) == {
            "flops_per_sample",
            "param_bytes",
            "activation_bytes_per_sample",
            "compute_comm_ratio",
            "num_samples",
            "bytes_per_sample",
            "sample_cost_cv",
        }
        assert all(isinstance(v, float) for v in fingerprint.values())
        assert fingerprint["flops_per_sample"] > 0


class TestTransferPrior:
    def _observations(self, n=8, seed=0):
        s = space()
        rng = np.random.default_rng(seed)
        configs = s.latin_hypercube(rng, n)
        return [(c, float(i % 3) - 1.0) for i, c in enumerate(configs)]

    def test_deterministic(self):
        s = space()
        obs = self._observations()
        a = TransferPrior(s, obs, seed=5)
        b = TransferPrior(s, obs, seed=5)
        x = np.array([s.encode(c) for c, _ in obs[:3]])
        np.testing.assert_array_equal(a(x), b(x))

    def test_needs_three_observations(self):
        with pytest.raises(ValueError):
            TransferPrior(space(), self._observations(n=2))

    def test_build_prior_from_repository(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        session = RandomSearch().run(
            make_env(seed=1), space(), TuningBudget(max_trials=10), seed=1
        )
        repo.add_session(
            "prior",
            [(t.config, t.objective) for t in session.history.successful()],
        )
        prior = build_prior(repo, "prior", space(), seed=0)
        assert prior is not None
        assert prior.source == "prior"
        assert prior.num_observations >= 3

    def test_build_prior_none_when_sparse(self, tmp_path):
        repo = HistoryRepository(os.path.join(tmp_path, "h.jsonl"))
        repo.add_session("thin", [({"k": 0}, 0.0), ({"k": 1}, 1.0)])
        assert build_prior(repo, "thin", space()) is None
        assert build_prior(repo, "unknown", space()) is None


class TestPriorMeanGP:
    def _data(self, n=12, dims=3, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(n, dims))
        y = np.sin(x.sum(axis=1)) + 0.1 * rng.standard_normal(n)
        return x, y

    def _factory(self, dims=3, prior=None):
        return SurrogateFactory(
            lambda: make_kernel("matern52", dims), seed=0, prior_mean=prior
        )

    def test_factory_wraps_and_tier_unwraps(self):
        factory = self._factory(prior=lambda x: np.zeros(len(np.atleast_2d(x))))
        gp = factory.build(8)
        assert isinstance(gp, PriorMeanGP)
        assert SurrogateFactory.tier_of(gp) == "exact"

    def test_zero_prior_matches_plain_gp(self):
        x, y = self._data()
        plain = self._factory().build(len(x)).fit(x, y, optimize_hypers=False)
        wrapped = (
            self._factory(prior=lambda q: np.zeros(len(np.atleast_2d(q))))
            .build(len(x))
            .fit(x, y, optimize_hypers=False)
        )
        x_star = x[:4]
        mu_p, var_p = plain.predict(x_star)
        mu_w, var_w = wrapped.predict(x_star)
        np.testing.assert_allclose(mu_w, mu_p, atol=1e-9)
        np.testing.assert_allclose(var_w, var_p, atol=1e-9)

    def test_informative_prior_shapes_mean_far_from_data(self):
        x, y = self._data()
        prior = lambda q: np.atleast_2d(q).sum(axis=1)  # noqa: E731
        gp = self._factory(prior=prior).build(len(x)).fit(x, y, optimize_hypers=False)
        far_a = np.full((1, 3), 50.0)
        far_b = np.full((1, 3), 10.0)
        mu_a, _ = gp.predict(far_a)
        mu_b, _ = gp.predict(far_b)
        # Far from the data the residual GP reverts to a constant, so the
        # difference between two far predictions is the (rescaled) prior's
        # shape — a flat-start GP would predict the same value at both.
        expected = float(y.std()) * (150.0 - 30.0)
        assert abs((mu_a[0] - mu_b[0]) - expected) < 1e-6

    def test_extend_matches_refit_at_same_hypers(self):
        x, y = self._data(n=10)
        prior = lambda q: np.atleast_2d(q).sum(axis=1)  # noqa: E731
        extended = self._factory(prior=prior).build(8).fit(
            x[:8], y[:8], optimize_hypers=False
        )
        extended.extend(x[8:], y[8:])
        refit = self._factory(prior=prior).build(8).fit(
            x[:8], y[:8], optimize_hypers=False
        )
        refit.fit(x, y, optimize_hypers=False)
        # extend() keeps the scale frozen at the first fit, so compare
        # against a refit through the same instance semantics: predictions
        # must agree with an exact GP fitted to the same residuals.
        x_star = x[:5]
        mu_a, var_a = extended.predict(x_star)
        inner = GaussianProcess(kernel=make_kernel("matern52", 3), seed=0)
        mean, std = float(y[:8].mean()), float(y[:8].std())
        residuals = y - (mean + std * prior(x))
        inner.fit(x, residuals, optimize_hypers=False)
        mu_b, var_b = inner.predict(x_star)
        np.testing.assert_allclose(mu_a, mu_b + mean + std * prior(x_star), atol=1e-8)
        np.testing.assert_allclose(var_a, var_b, atol=1e-8)

    def test_delegated_surface(self):
        x, y = self._data()
        gp = (
            self._factory(prior=lambda q: np.zeros(len(np.atleast_2d(q))))
            .build(len(x))
            .fit(x, y, optimize_hypers=False)
        )
        assert gp.num_observations == len(x)
        gp.noise_variance = 0.123
        assert gp.inner.noise_variance == pytest.approx(0.123)
        assert gp.kernel is gp.inner.kernel
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_proposer_accepts_prior_mean(self):
        s = space()
        prior = lambda q: np.zeros(len(np.atleast_2d(q)))  # noqa: E731
        env = make_env()
        history = TrialHistory()
        from repro.configspace import to_training_config

        seeding = BayesianProposer(s, n_initial=3, seed=0)
        for _ in range(4):
            config = seeding.propose(history, np.random.default_rng(1))
            history.record(config, env.measure(to_training_config(config)))
        # Two fresh proposers, same history, same rng: a zero prior must
        # reproduce the flat-start proposal exactly.
        with_prior = BayesianProposer(s, n_initial=3, prior_mean=prior, seed=0)
        without = BayesianProposer(s, n_initial=3, seed=0)
        assert with_prior.propose(history, np.random.default_rng(2)) == without.propose(
            history, np.random.default_rng(2)
        )
