"""Tests for the event-driven PS and all-reduce training simulators,
including cross-validation against the analytic model."""

import pytest

from repro.cluster import Cluster, homogeneous
from repro.mlsim import (
    TrainingConfig,
    estimate,
    run_allreduce_probe,
    run_ps_probe,
)
from repro.sim import RngRegistry, Simulator
from repro.workloads import get_workload

RESNET = get_workload("resnet50-imagenet")
W2V = get_workload("word2vec-wiki")


def run_probe(config, workload, nodes=16, iterations=20, seed=0, **cluster_kwargs):
    cluster_kwargs.setdefault("jitter_cv", 0.0)
    spec = homogeneous(nodes, **cluster_kwargs)
    sim = Simulator()
    cluster = Cluster(sim, spec, RngRegistry(seed))
    rng = RngRegistry(seed).fork(1)
    if config.uses_ps:
        return run_ps_probe(cluster, config, workload, iterations, rng)
    return run_allreduce_probe(cluster, config, workload, iterations, rng)


class TestPsProbe:
    def test_bsp_processes_expected_samples(self):
        """Lockstep BSP spends the global update budget exactly."""
        config = TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32)
        trace = run_probe(config, RESNET, iterations=10)
        assert trace.samples_processed == 10 * 4 * 32
        assert len(trace.completion_times) == 40

    def test_bsp_staleness_is_zero(self):
        config = TrainingConfig(num_workers=4, num_ps=2, sync_mode="bsp",
                                batch_per_worker=32)
        trace = run_probe(config, RESNET, iterations=10)
        assert trace.mean_staleness == pytest.approx(0.0)

    def test_asp_staleness_positive_with_stragglers(self):
        config = TrainingConfig(
            num_workers=8, num_ps=2, sync_mode="asp", batch_per_worker=256
        )
        trace = run_probe(
            config, W2V, iterations=15,
            straggler_fraction=0.25, straggler_slowdown=0.4,
        )
        assert trace.mean_staleness > 0.5

    def test_asp_throughput_beats_bsp_under_stragglers(self):
        """Compute-bound workload: ASP lets fast workers lap the straggler."""
        kwargs = dict(
            iterations=15, straggler_fraction=0.25, straggler_slowdown=0.3
        )
        bsp = run_probe(
            TrainingConfig(num_workers=8, num_ps=4, sync_mode="bsp",
                           batch_per_worker=32, gradient_precision="fp16"),
            RESNET, **kwargs,
        )
        asp = run_probe(
            TrainingConfig(num_workers=8, num_ps=4, sync_mode="asp",
                           batch_per_worker=32, gradient_precision="fp16"),
            RESNET, **kwargs,
        )
        assert asp.throughput > bsp.throughput

    def test_ssp_bounds_worker_spread(self):
        """Under SSP, no worker may lead the slowest by more than the bound."""
        config = TrainingConfig(
            num_workers=4, num_ps=2, sync_mode="ssp", staleness_bound=2,
            batch_per_worker=256,
        )
        trace = run_probe(
            config, W2V, iterations=20,
            straggler_fraction=0.25, straggler_slowdown=0.3,
        )
        # The global budget may overshoot by at most one in-flight iteration
        # per worker.
        budget = 20 * 4
        updates = len(trace.completion_times)
        assert budget <= updates <= budget + 4

    def test_deterministic_given_seed(self):
        config = TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32)
        a = run_probe(config, RESNET, iterations=8, seed=5)
        b = run_probe(config, RESNET, iterations=8, seed=5)
        assert a.elapsed_s == b.elapsed_s
        assert a.completion_times == b.completion_times

    def test_different_seeds_differ(self):
        config = TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32)
        a = run_probe(config, RESNET, iterations=8, seed=5, jitter_cv=0.05)
        b = run_probe(config, RESNET, iterations=8, seed=6, jitter_cv=0.05)
        assert a.elapsed_s != b.elapsed_s

    def test_rejects_allreduce_config(self):
        config = TrainingConfig(architecture="allreduce", num_workers=4)
        spec = homogeneous(8)
        cluster = Cluster(Simulator(), spec, RngRegistry(0))
        with pytest.raises(ValueError, match="PS-architecture"):
            run_ps_probe(cluster, config, RESNET, 5, RngRegistry(0))


class TestAllReduceProbe:
    def test_processes_expected_samples(self):
        config = TrainingConfig(
            architecture="allreduce", num_workers=8, batch_per_worker=32
        )
        trace = run_probe(config, RESNET, iterations=10)
        assert trace.samples_processed == 10 * 8 * 32
        assert trace.mean_staleness == 0.0

    def test_single_worker_works(self):
        config = TrainingConfig(
            architecture="allreduce", num_workers=1, batch_per_worker=32
        )
        trace = run_probe(config, RESNET, iterations=5)
        assert trace.samples_processed == 5 * 32

    def test_rejects_ps_config(self):
        config = TrainingConfig(architecture="ps", num_workers=4, num_ps=2)
        spec = homogeneous(8)
        cluster = Cluster(Simulator(), spec, RngRegistry(0))
        with pytest.raises(ValueError, match="all-reduce"):
            run_allreduce_probe(cluster, config, RESNET, 5, RngRegistry(0))

    def test_straggler_stalls_whole_ring(self):
        clean = run_probe(
            TrainingConfig(architecture="allreduce", num_workers=8,
                           batch_per_worker=32),
            RESNET, iterations=10,
        )
        straggled = run_probe(
            TrainingConfig(architecture="allreduce", num_workers=8,
                           batch_per_worker=32),
            RESNET, iterations=10,
            straggler_fraction=0.15, straggler_slowdown=0.4,
        )
        assert straggled.throughput < 0.7 * clean.throughput


class TestAnalyticCrossValidation:
    """The closed-form model must track the event simulator where its
    assumptions hold (no jitter, BSP or all-reduce)."""

    @pytest.mark.parametrize(
        "config,workload",
        [
            (TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32), RESNET),
            (TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=64), RESNET),
            (TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=256), W2V),
            (
                TrainingConfig(
                    architecture="allreduce", num_workers=8, batch_per_worker=32
                ),
                RESNET,
            ),
        ],
    )
    def test_within_tolerance(self, config, workload):
        spec = homogeneous(16, jitter_cv=0.0)
        analytic = estimate(config, workload, spec)
        trace = run_probe(config, workload, iterations=20)
        ratio = trace.throughput / analytic.throughput
        assert 0.6 < ratio < 1.7, (
            f"event {trace.throughput:.1f} vs analytic {analytic.throughput:.1f}"
        )

    def test_relative_ordering_preserved(self):
        """The analytic model must rank configurations like the simulator."""
        spec = homogeneous(16, jitter_cv=0.0)
        configs = [
            TrainingConfig(num_workers=2, num_ps=1, batch_per_worker=32),
            TrainingConfig(num_workers=8, num_ps=4, batch_per_worker=32),
            TrainingConfig(num_workers=12, num_ps=4, batch_per_worker=64),
        ]
        analytic = [estimate(c, RESNET, spec).throughput for c in configs]
        event = [run_probe(c, RESNET, iterations=15).throughput for c in configs]
        assert sorted(range(3), key=lambda i: analytic[i]) == sorted(
            range(3), key=lambda i: event[i]
        )
