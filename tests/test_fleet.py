"""Tests for the EnvironmentPool fleet layer (shards, schedulers, executors)."""

import json

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ConfigSpace, FloatParameter, ml_config_space
from repro.core import (
    AsyncExecutor,
    CheapestEligibleScheduler,
    EnvironmentPool,
    EnvironmentShard,
    LeastLoadedScheduler,
    MLConfigTuner,
    ParallelExecutor,
    RoundRobinScheduler,
    SerialExecutor,
    TrialHistory,
    TuningBudget,
    TuningSession,
    make_scheduler,
    parse_shard_spec,
)
from repro.core.bo import BayesianProposer
from repro.core.parallel import propose_async
from repro.core.session import JsonlTrialLog, executor_for
from repro.mlsim import Measurement, TrainingConfig, TrainingEnvironment
from repro.workloads import get_workload

NODES = 8


def make_env(seed=0, nodes=NODES, workload="resnet50-imagenet"):
    return TrainingEnvironment(get_workload(workload), homogeneous(nodes), seed=seed)


def space(nodes=NODES):
    return ml_config_space(nodes)


def stub_space():
    return ConfigSpace([FloatParameter("x", 0.0, 1.0)])


class StubEnv:
    def describe(self):
        return {"workload": "stub"}


from repro.core.strategy import SearchStrategy  # noqa: E402


class CostedStrategy(SearchStrategy):
    """Deterministic stub with scripted probe costs (mirrors test_session)."""

    name = "costed-stub"

    def __init__(self, costs):
        self.costs = list(costs)
        self.cursor = 0

    def propose(self, history, space_, rng):
        return {"x": 0.5}

    def measure(self, env, config):
        cost = float(self.costs[self.cursor % len(self.costs)])
        self.cursor += 1
        return Measurement(
            config=TrainingConfig(),
            ok=True,
            fidelity="stub",
            objective=cost,
            probe_cost_s=cost,
        )


def two_speed_pool(multipliers=(1.0, 2.0), capacities=None, scheduler=None):
    capacities = capacities or [1] * len(multipliers)
    shards = [
        EnvironmentShard(
            f"s{i}", StubEnv(), capacity=c, cost_multiplier=m
        )
        for i, (m, c) in enumerate(zip(multipliers, capacities))
    ]
    return EnvironmentPool(shards, scheduler=scheduler or RoundRobinScheduler())


class TestPoolConstruction:
    def test_validation(self):
        env = StubEnv()
        with pytest.raises(ValueError):
            EnvironmentPool([])
        with pytest.raises(ValueError):
            EnvironmentPool(
                [EnvironmentShard("a", env), EnvironmentShard("a", env)]
            )
        with pytest.raises(ValueError):
            EnvironmentShard("", env)
        with pytest.raises(ValueError):
            EnvironmentShard("a", env, capacity=0)
        with pytest.raises(ValueError):
            EnvironmentShard("a", env, cost_multiplier=0.0)

    def test_capacity_and_descriptors(self):
        pool = two_speed_pool(capacities=[2, 1])
        assert pool.total_capacity == 3
        descriptors = pool.descriptors()
        assert [d.name for d in descriptors] == ["s0", "s1"]
        assert [d.capacity for d in descriptors] == [2, 1]
        assert descriptors[1].cost_multiplier == 2.0

    def test_occupancy_bookkeeping(self):
        pool = two_speed_pool(capacities=[1, 1])
        pool.acquire("s0")
        assert pool.free_slots("s0") == 0 and pool.busy("s0") == 1
        with pytest.raises(RuntimeError):
            pool.acquire("s0")
        pool.release("s0")
        with pytest.raises(RuntimeError):
            pool.release("s0")

    def test_reset_restores_occupancy_and_rng_streams(self):
        pool = two_speed_pool()
        pool.acquire("s0")
        pool.reset(seed=7)
        assert pool.busy("s0") == 0
        first = pool.rng_for("s0").random(3)
        pool.reset(seed=7)
        assert np.allclose(pool.rng_for("s0").random(3), first)
        pool.reset(seed=8)
        assert not np.allclose(pool.rng_for("s0").random(3), first)
        # Distinct shards get distinct streams at the same session seed.
        pool.reset(seed=7)
        assert not np.allclose(
            pool.rng_for("s0").random(3), pool.rng_for("s1").random(3)
        )

    def test_shard_measure_scales_probe_cost_only(self):
        shard = EnvironmentShard("slow", StubEnv(), cost_multiplier=2.5)
        measurement = shard.measure(CostedStrategy([4.0]), {"x": 0.5})
        assert measurement.probe_cost_s == pytest.approx(10.0)
        assert measurement.objective == pytest.approx(4.0)

    def test_describe_summarises_fleet(self):
        description = two_speed_pool().describe()
        assert description["pool"] is True
        assert description["num_shards"] == 2
        assert description["total_capacity"] == 2
        assert [s["name"] for s in description["shards"]] == ["s0", "s1"]


class TestSchedulers:
    def test_round_robin_cycles_and_skips_saturated(self):
        pool = two_speed_pool(multipliers=(1.0, 1.0, 1.0))
        picks = []
        for _ in range(3):
            shard = pool.scheduler.select(pool)
            pool.acquire(shard.name)
            picks.append(shard.name)
        assert picks == ["s0", "s1", "s2"]
        assert pool.scheduler.select(pool) is None
        pool.release("s1")
        assert pool.scheduler.select(pool).name == "s1"

    def test_round_robin_cursor_only_advances_on_launch(self):
        # select() is pure: an executor may select and then decline (budget
        # gate, strategy waiting at a rung boundary) — repeated selections
        # without a launch must not drift the rotation.
        pool = two_speed_pool(multipliers=(1.0, 1.0, 1.0))
        assert pool.scheduler.select(pool).name == "s0"
        assert pool.scheduler.select(pool).name == "s0"
        pool.acquire("s0")  # the commit point advances the cursor
        assert pool.scheduler.select(pool).name == "s1"
        assert pool.scheduler.select(pool).name == "s1"

    def test_least_loaded_picks_emptiest_fraction(self):
        pool = two_speed_pool(
            multipliers=(1.0, 1.0), capacities=[4, 1],
            scheduler=LeastLoadedScheduler(),
        )
        pool.acquire("s0")
        # s0 is 1/4 loaded, s1 empty: the empty 1-slot shard wins.
        assert pool.scheduler.select(pool).name == "s1"
        pool.acquire("s1")
        assert pool.scheduler.select(pool).name == "s0"

    def test_cheapest_eligible_prefers_fast_shards(self):
        pool = two_speed_pool(
            multipliers=(1.5, 0.5, 1.0), scheduler=CheapestEligibleScheduler()
        )
        assert pool.scheduler.select(pool).name == "s1"
        pool.acquire("s1")
        assert pool.scheduler.select(pool).name == "s2"
        pool.acquire("s2")
        assert pool.scheduler.select(pool).name == "s0"
        pool.acquire("s0")
        assert pool.scheduler.select(pool) is None

    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("roundrobin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("least-loaded"), LeastLoadedScheduler)
        assert isinstance(make_scheduler("cheapest"), CheapestEligibleScheduler)
        with pytest.raises(ValueError, match="least-loaded"):
            make_scheduler("fifo")


class TestShardSpecParsing:
    def test_full_grammar(self):
        recipes = parse_shard_spec("std-cpu:16,std-cpu:16x2@1.5,gpu-v100:8@0.5")
        assert [r["node_type"] for r in recipes] == ["std-cpu", "std-cpu", "gpu-v100"]
        assert [r["nodes"] for r in recipes] == [16, 16, 8]
        assert [r["capacity"] for r in recipes] == [1, 2, 1]
        assert [r["cost_multiplier"] for r in recipes] == [1.0, 1.5, 0.5]

    @pytest.mark.parametrize(
        "bad", ["", "std-cpu", "std-cpu:", "std-cpu:x2", ":16", "std-cpu:0"]
    )
    def test_bad_entries_raise(self, bad):
        with pytest.raises(ValueError):
            parse_shard_spec(bad)


class TestSeedDeterminism:
    """A homogeneous pool over one shared environment is seed-identical."""

    @pytest.mark.parametrize(
        "factory,trials",
        [(lambda: RandomSearch(), 10), (lambda: MLConfigTuner(seed=0), 14)],
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_two_shard_round_robin_serial_matches_single_env(
        self, factory, trials, seed
    ):
        budget = TuningBudget(max_trials=trials)
        single = factory().run(make_env(seed=seed), space(), budget, seed=seed)
        pool = EnvironmentPool.homogeneous_over(
            make_env(seed=seed), shards=2, scheduler=RoundRobinScheduler()
        )
        fleet = factory().run(
            None, space(), budget, seed=seed, executor=executor_for(1, pool=pool)
        )
        assert [t.config for t in fleet.history] == [
            t.config for t in single.history
        ]
        assert [t.objective for t in fleet.history] == [
            t.objective for t in single.history
        ]
        assert fleet.history.cost_series() == single.history.cost_series()
        assert fleet.history.wall_clock_series() == single.history.wall_clock_series()
        # Round-robin over two shards alternates deterministically.
        assert [t.shard for t in fleet.history] == ["shard0", "shard1"] * (
            trials // 2
        )

    def test_pool_reuse_across_runs_is_deterministic(self):
        pool = EnvironmentPool.homogeneous_over(make_env(), shards=2)
        executor = executor_for(1, pool=pool)
        budget = TuningBudget(max_trials=8)
        first = RandomSearch().run(None, space(), budget, seed=1, executor=executor)
        second = RandomSearch().run(None, space(), budget, seed=1, executor=executor)
        assert [t.objective for t in first.history] == [
            t.objective for t in second.history
        ]


class TestExecutorDispatch:
    def test_executor_for_pool_routing(self):
        pool = two_speed_pool()
        serial = executor_for(1, pool=pool)
        assert isinstance(serial, SerialExecutor) and serial.pool is pool
        sync = executor_for(4, mode="sync", pool=pool)
        assert isinstance(sync, ParallelExecutor) and sync.workers == 2
        asyn = executor_for(4, mode="async", pool=pool)
        assert isinstance(asyn, AsyncExecutor) and asyn.workers == 2
        one_slot = EnvironmentPool([EnvironmentShard("only", StubEnv())])
        assert isinstance(executor_for(4, mode="async", pool=one_slot), SerialExecutor)

    def test_executor_for_unknown_mode_names_valid_modes(self):
        with pytest.raises(ValueError, match="'sync', 'async'"):
            executor_for(4, mode="bsp")
        with pytest.raises(ValueError, match="'sync', 'async'"):
            executor_for(4, mode="bsp", pool=two_speed_pool())

    def test_async_per_shard_timelines(self):
        # Equal 2s probes; shard s1 runs them at 2x duration.  Slot s0
        # completes at 2,4,6,8 while s1 completes at 4,8: the fast shard
        # absorbs twice the probes in the same makespan.
        pool = two_speed_pool(multipliers=(1.0, 2.0))
        result = TuningSession(
            CostedStrategy([2.0]), executor=AsyncExecutor(pool=pool)
        ).run(None, stub_space(), TuningBudget(max_trials=6), seed=0)
        per_shard = {}
        for trial in result.history:
            per_shard.setdefault(trial.shard, []).append(trial)
        assert len(per_shard["s0"]) == 4 and len(per_shard["s1"]) == 2
        assert [t.cumulative_wall_clock_s for t in per_shard["s0"]] == [2, 4, 6, 8]
        assert [t.cumulative_wall_clock_s for t in per_shard["s1"]] == [4, 8]
        assert result.total_wall_clock_s == pytest.approx(8.0)
        assert result.history.wall_clock_by_shard() == {"s0": 8.0, "s1": 8.0}
        assert result.history.cost_by_shard() == {"s0": 8.0, "s1": 8.0}
        assert sum(result.history.cost_by_shard().values()) == pytest.approx(
            result.total_cost_s
        )

    def test_parallel_round_spans_pool_capacity(self):
        pool = two_speed_pool(multipliers=(1.0, 2.0), capacities=[2, 1])
        result = TuningSession(
            CostedStrategy([3.0]), executor=ParallelExecutor(pool=pool)
        ).run(None, stub_space(), TuningBudget(max_trials=6), seed=0)
        assert result.num_trials == 6
        assert result.history.num_rounds == 2
        # Round-robin interleaves until a shard saturates (s0, s1, then s0
        # again — s1's single slot is taken) and the cursor carries across
        # rounds, so round two starts at s1.
        assert [t.shard for t in result.history] == [
            "s0", "s1", "s0", "s1", "s0", "s0",
        ]
        # Round wall is its slowest member: the 2x shard's 6s probe.
        assert result.total_wall_clock_s == pytest.approx(12.0)
        assert result.history.cost_by_shard() == {"s0": 12.0, "s1": 12.0}

    def test_async_cancellation_bills_under_shard(self):
        # Two slots; the 1s probe on s0 completes and exhausts the wall
        # cap, cancelling s1's 10s in-flight probe after 1 elapsed second.
        pool = two_speed_pool(multipliers=(1.0, 1.0))
        result = TuningSession(
            CostedStrategy([1.0, 10.0]), executor=AsyncExecutor(pool=pool)
        ).run(
            None,
            stub_space(),
            TuningBudget(max_trials=None, max_wall_clock_s=0.5),
            seed=0,
        )
        assert result.num_trials == 1
        assert result.history.cancelled_cost_s == pytest.approx(1.0)
        assert result.history.cost_by_shard() == {"s0": 1.0, "s1": 1.0}
        assert sum(result.history.cost_by_shard().values()) == pytest.approx(
            result.total_cost_s
        )

    def test_sync_mid_round_cancellation_bills_under_shard(self):
        pool = two_speed_pool(multipliers=(1.0, 1.0, 1.0, 1.0))
        result = TuningSession(
            CostedStrategy([10.0]), executor=ParallelExecutor(pool=pool)
        ).run(
            None,
            stub_space(),
            TuningBudget(max_trials=None, max_cost_s=15.0),
            seed=0,
        )
        # Members on s0 and s1 record (20s); s2 and s3 are cancelled and
        # each billed the 10s their slots were occupied.
        assert result.num_trials == 2
        assert result.history.cancelled_cost_s == pytest.approx(20.0)
        assert result.history.cost_by_shard() == {
            "s0": 10.0, "s1": 10.0, "s2": 10.0, "s3": 10.0,
        }
        assert sum(result.history.cost_by_shard().values()) == pytest.approx(
            result.total_cost_s
        )
        # The pool must be fully released despite the mid-round stop.
        assert all(pool.busy(s.name) == 0 for s in pool.shards)

    def test_sync_cancellation_bills_running_round_wall(self):
        # The cap is detected when member 1 (10s) records, but member 0's
        # 30s completion is what pushed the total over it: each cancelled
        # slot was occupied for the round's running wall maximum (30s),
        # not the tripping member's own 10s.
        result = TuningSession(
            CostedStrategy([30.0, 10.0, 10.0, 10.0]),
            executor=ParallelExecutor(4),
        ).run(
            StubEnv(),
            stub_space(),
            TuningBudget(max_trials=None, max_cost_s=35.0),
            seed=0,
        )
        assert result.num_trials == 2
        assert result.history.cancelled_cost_s == pytest.approx(60.0)
        assert result.total_cost_s == pytest.approx(100.0)

    def test_parallel_releases_acquired_slots_when_scheduler_fails(self):
        class FlakyScheduler(RoundRobinScheduler):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def select(self, pool):
                self.calls += 1
                if self.calls >= 2:
                    return None  # violates the free-slot contract mid-round
                return super().select(pool)

        pool = two_speed_pool(
            multipliers=(1.0, 1.0), scheduler=FlakyScheduler()
        )
        with pytest.raises(RuntimeError, match="saturated mid-assignment"):
            TuningSession(
                CostedStrategy([1.0]), executor=ParallelExecutor(pool=pool)
            ).run(None, stub_space(), TuningBudget(max_trials=4), seed=0)
        # The slot acquired before the failure must not leak.
        assert all(pool.busy(s.name) == 0 for s in pool.shards)

    def test_heterogeneous_fleet_run_completes_with_itemisation(self):
        shards = [
            EnvironmentShard(
                f"shard{i}", make_env(seed=i), capacity=1, cost_multiplier=m
            )
            for i, m in enumerate([1.0, 1.5, 0.75, 2.0])
        ]
        pool = EnvironmentPool(shards, scheduler=CheapestEligibleScheduler())
        result = MLConfigTuner(seed=0, shard_cost_feature=True).run(
            None,
            space(),
            TuningBudget(max_trials=16),
            seed=0,
            executor=executor_for(4, mode="async", pool=pool),
        )
        assert result.num_trials == 16
        assert result.best_objective is not None
        cost_by_shard = result.history.cost_by_shard()
        assert all(shard is not None for shard in cost_by_shard)
        assert sum(cost_by_shard.values()) == pytest.approx(result.total_cost_s)
        timelines = result.history.wall_clock_by_shard()
        assert max(timelines.values()) == pytest.approx(result.total_wall_clock_s)
        # The fleet's stopwatch beats its machine bill: probes overlapped.
        assert result.total_wall_clock_s < result.total_cost_s

    def test_env_none_without_pool_raises(self):
        with pytest.raises(ValueError, match="EnvironmentPool"):
            RandomSearch().run(None, space(), TuningBudget(max_trials=2), seed=0)

    def test_async_rejects_explicit_workers_with_pool(self):
        # Async slots are the pool's shard slots: a separate worker count
        # is ambiguous and must not be silently ignored.
        with pytest.raises(ValueError, match="total capacity"):
            AsyncExecutor(workers=2, pool=two_speed_pool())


class TestShardAwareProposals:
    def test_strategy_receives_target_shard_descriptor(self):
        seen = []

        class Recorder(SearchStrategy):
            name = "recorder"

            def propose(self, history, space_, rng):
                return {"x": 0.5}

            def propose_async(self, history, pending, space_, rng, shard=None):
                seen.append(shard)
                return {"x": 0.5}

            def measure(self, env, config):
                return Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=1.0, probe_cost_s=1.0,
                )

        pool = two_speed_pool(multipliers=(1.0, 2.0))
        TuningSession(Recorder(), executor=AsyncExecutor(pool=pool)).run(
            None, stub_space(), TuningBudget(max_trials=4), seed=0
        )
        assert all(s is not None for s in seen)
        assert {s.name for s in seen} == {"s0", "s1"}
        assert {s.cost_multiplier for s in seen} == {1.0, 2.0}

    def test_parallel_executor_passes_round_shards_to_batch(self):
        seen = []

        class Recorder(SearchStrategy):
            name = "recorder"

            def propose(self, history, space_, rng):
                return {"x": 0.5}

            def propose_batch(self, history, space_, rng, k, shards=None):
                seen.append(shards)
                return [{"x": 0.5} for _ in range(k)]

            def measure(self, env, config):
                return Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=1.0, probe_cost_s=1.0,
                )

        pool = two_speed_pool(multipliers=(1.0, 2.0))
        TuningSession(Recorder(), executor=ParallelExecutor(pool=pool)).run(
            None, stub_space(), TuningBudget(max_trials=4), seed=0
        )
        # Every round's batch saw one descriptor per member, covering both
        # shards — the slots are assigned before the proposals are made.
        assert seen and all(s is not None for s in seen)
        for round_shards in seen:
            assert {d.name for d in round_shards} == {"s0", "s1"}
            assert {d.cost_multiplier for d in round_shards} == {1.0, 2.0}

    def test_batch_fantasies_carry_member_shards(self):
        from repro.core.fleet import ShardDescriptor
        from repro.core.parallel import propose_batch

        weights = []
        histories = []

        class SpyProposer:
            def propose(self, history, rng, shard_weight=None):
                weights.append(shard_weight)
                histories.append(history)
                return {"x": 0.25}

        history = TrialHistory()
        for cost in (40.0, 60.0, 80.0):
            history.record(
                {"x": 0.5},
                Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=1.0, probe_cost_s=cost,
                ),
            )
        shards = [
            ShardDescriptor("fast", 0, 1, 0.5),
            ShardDescriptor("slow", 1, 1, 2.0),
        ]
        batch = propose_batch(
            SpyProposer(), history, np.random.default_rng(0), 2, shards=shards
        )
        assert len(batch) == 2
        # Each member proposed at its own shard's weight...
        assert weights == [0.5, 2.0]
        # ...and each member's fantasy lies at its own shard's scaled cost
        # (median real cost 60s), stamped with that shard's name.
        extended = histories[-1]
        fast_fantasy, slow_fantasy = extended[3], extended[4]
        assert fast_fantasy.measurement.fidelity == "fantasy"
        assert fast_fantasy.shard == "fast"
        assert fast_fantasy.measurement.probe_cost_s == pytest.approx(30.0)
        assert slow_fantasy.shard == "slow"
        assert slow_fantasy.measurement.probe_cost_s == pytest.approx(120.0)
        with pytest.raises(ValueError):
            propose_batch(
                SpyProposer(), history, np.random.default_rng(0), 3,
                shards=shards,
            )

    def test_constant_liar_scales_cost_lie_to_shard(self):
        captured = {}

        class SpyProposer:
            def propose(self, history, rng, shard_weight=None):
                captured["history"] = history
                captured["shard_weight"] = shard_weight
                return {"x": 0.25}

        history = TrialHistory()
        for cost in (40.0, 60.0, 80.0):
            history.record(
                {"x": 0.5},
                Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=1.0, probe_cost_s=cost,
                ),
            )
        propose_async(
            SpyProposer(),
            history,
            [{"x": 0.1}],
            np.random.default_rng(0),
            cost_scale=2.0,
            shard_weight=2.0,
        )
        extended = captured["history"]
        fantasy = extended[len(extended) - 1]
        # Median real probe cost is 60s; the fantasy lies at 2x for the
        # slow target shard.
        assert fantasy.measurement.fidelity == "fantasy"
        assert fantasy.measurement.probe_cost_s == pytest.approx(120.0)
        assert captured["shard_weight"] == 2.0
        with pytest.raises(ValueError):
            propose_async(
                SpyProposer(), history, [], np.random.default_rng(0), cost_scale=0.0
            )

    def test_shard_cost_feature_widens_cost_model_input(self):
        sp = space()
        proposer = BayesianProposer(
            sp, acquisition="eipc", n_initial=4, n_candidates=32,
            shard_cost_feature=True, seed=0,
        )
        proposer.set_shard_weights({"fast": 0.5, "slow": 2.0})
        rng = np.random.default_rng(0)
        history = TrialHistory()
        for i in range(8):
            config = sp.sample(rng)
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=float(rng.random() * 100),
                    probe_cost_s=float(30 + rng.random() * 60),
                ),
                shard="fast" if i % 2 else "slow",
            )
        config = proposer.propose(history, rng, shard_weight=0.5)
        assert sp.is_valid(config)
        cost_gp = proposer._cost_cache.gp
        assert cost_gp is not None
        # One extra input column: the shard cost multiplier.
        assert cost_gp.kernel.num_params() == make_num_params(sp.dims + 1)

    def test_fantasy_rows_encode_at_target_shard_weight(self):
        # A fantasy's probe-cost lie is scaled to the target shard, so its
        # training row must be encoded at that same weight — weight 1.0
        # would teach the cost GP that baseline probes cost the scaled lie.
        sp = space()
        proposer = BayesianProposer(
            sp, acquisition="eipc", shard_cost_feature=True, seed=0
        )
        proposer._target_shard_weight = 2.0
        history = TrialHistory()
        real = history.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="stub",
                objective=1.0, probe_cost_s=60.0,
            ),
            shard="slow",
        )
        fantasy = history.record(
            {"x": 0.5},
            Measurement(
                config=TrainingConfig(), ok=True, fidelity="fantasy",
                objective=1.0, probe_cost_s=120.0,
            ),
        )
        proposer.set_shard_weights({"slow": 1.5})
        assert proposer._row_weight(real) == pytest.approx(1.5)
        assert proposer._row_weight(fantasy) == pytest.approx(2.0)
        proposer._target_shard_weight = None
        assert proposer._row_weight(fantasy) == pytest.approx(1.0)

    def test_shard_feature_off_keeps_cost_model_width(self):
        sp = space()
        proposer = BayesianProposer(
            sp, acquisition="eipc", n_initial=4, n_candidates=32, seed=0
        )
        rng = np.random.default_rng(0)
        history = TrialHistory()
        for _ in range(8):
            config = sp.sample(rng)
            history.record(
                config,
                Measurement(
                    config=TrainingConfig(), ok=True, fidelity="stub",
                    objective=float(rng.random() * 100),
                    probe_cost_s=float(30 + rng.random() * 60),
                ),
            )
        proposer.propose(history, rng)
        assert proposer._cost_cache.gp.kernel.num_params() == make_num_params(
            sp.dims
        )


def make_num_params(dims):
    """ARD Matérn-5/2 parameter count for an input dimensionality."""
    from repro.core.kernels import make_kernel

    return make_kernel("matern52", dims).num_params()


class TestFleetLogging:
    def test_jsonl_records_shard_and_cost_by_shard(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        pool = two_speed_pool(multipliers=(1.0, 2.0))
        TuningSession(
            CostedStrategy([2.0]),
            executor=AsyncExecutor(pool=pool),
            callbacks=[JsonlTrialLog(path)],
        ).run(None, stub_space(), TuningBudget(max_trials=4), seed=0)
        records = [json.loads(line) for line in open(path)]
        trials = [r for r in records if r["event"] == "trial"]
        assert {t["shard"] for t in trials} == {"s0", "s1"}
        end = records[-1]
        assert end["event"] == "session_end"
        assert set(end["cost_by_shard"]) == {"s0", "s1"}
        assert sum(end["cost_by_shard"].values()) == pytest.approx(
            end["total_cost_s"]
        )

    def test_jsonl_records_cancelled_cost(self, tmp_path):
        path = str(tmp_path / "cancelled.jsonl")
        pool = two_speed_pool(multipliers=(1.0, 1.0))
        TuningSession(
            CostedStrategy([1.0, 10.0]),
            executor=AsyncExecutor(pool=pool),
            callbacks=[JsonlTrialLog(path)],
        ).run(
            None,
            stub_space(),
            TuningBudget(max_trials=None, max_wall_clock_s=0.5),
            seed=0,
        )
        end = [json.loads(line) for line in open(path)][-1]
        assert end["cancelled_cost_s"] == pytest.approx(1.0)

    def test_jsonl_shard_is_null_outside_pools(self, tmp_path):
        path = str(tmp_path / "single.jsonl")
        TuningSession(
            CostedStrategy([1.0]), callbacks=[JsonlTrialLog(path)]
        ).run(StubEnv(), stub_space(), TuningBudget(max_trials=2), seed=0)
        records = [json.loads(line) for line in open(path)]
        trials = [r for r in records if r["event"] == "trial"]
        assert all(t["shard"] is None for t in trials)
        assert "cost_by_shard" not in records[-1]


class TestHarnessIntegration:
    def test_compare_strategies_over_pool(self):
        from repro.harness.comparison import compare_strategies

        workload = get_workload("resnet50-imagenet")
        cluster = homogeneous(NODES)
        pool = EnvironmentPool(
            [
                EnvironmentShard(
                    f"shard{i}",
                    TrainingEnvironment(workload, cluster, seed=i),
                    cost_multiplier=m,
                )
                for i, m in enumerate([1.0, 1.5])
            ]
        )
        comparison = compare_strategies(
            {"random": lambda s: RandomSearch()},
            workload,
            cluster,
            TuningBudget(max_trials=6),
            repeats=2,
            executor_mode="async",
            pool=pool,
        )
        outcome = comparison.outcomes["random"]
        assert len(outcome.results) == 2
        for result in outcome.results:
            assert all(t.shard in ("shard0", "shard1") for t in result.history)
            # The default workers=1 must not silently degrade the fleet to
            # serial probing: probes overlapped, so the stopwatch reads
            # less than the machine bill.
            assert result.total_wall_clock_s < result.total_cost_s
        # The pool rewinds between repeats: the same strategy seed would
        # replay identically, and distinct repeat seeds stay comparable.
        assert outcome.results[0].num_trials == outcome.results[1].num_trials

    def test_exp_p4_fleet_light(self):
        from repro.harness.experiments import clear_experiment_cache, exp_p4_fleet

        clear_experiment_cache()
        table = exp_p4_fleet(
            nodes=NODES, budget_trials=10, schedulers=("roundrobin",)
        )
        rendered = table.render()
        assert "P4" in rendered
        assert "single" in rendered and "roundrobin" in rendered
        clear_experiment_cache()
