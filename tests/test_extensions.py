"""Tests for extension features: successive halving, gradient compression,
transient-failure injection, and the CLI."""

import pytest

from repro.baselines import RandomSearch, SuccessiveHalving
from repro.cli import main as cli_main
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import MLConfigTuner, TuningBudget
from repro.mlsim import TrainingConfig, TrainingEnvironment, estimate
from repro.workloads import ConvergenceProfile, get_workload

WORKLOAD = get_workload("resnet50-imagenet")
W2V = get_workload("word2vec-wiki")


def make_env(**kwargs):
    kwargs.setdefault("seed", 0)
    return TrainingEnvironment(WORKLOAD, homogeneous(8), **kwargs)


class TestSuccessiveHalving:
    def test_runs_within_budget(self):
        result = SuccessiveHalving(seed=0).run(
            make_env(), ml_config_space(8), TuningBudget(max_trials=25), seed=0
        )
        assert result.num_trials == 25
        assert result.best_objective > 0

    def test_rung_structure_short_probes_first(self):
        strategy = SuccessiveHalving(bracket_size=9, eta=3, min_probe_iterations=4)
        env = make_env()
        result = strategy.run(env, ml_config_space(8), TuningBudget(max_trials=13), seed=0)
        costs = [t.measurement.probe_cost_s for t in result.history.successful()]
        # First rung (9 trials at 4 iters) should be cheaper than promoted
        # rung probes (12 iters).
        first_rung = costs[:9]
        later = costs[9:]
        if later:
            assert min(later) > 0  # promoted probes exist and ran

    def test_promotion_keeps_best(self):
        strategy = SuccessiveHalving(bracket_size=4, eta=2, min_probe_iterations=4, seed=0)
        strategy._rung_results = [
            ({"id": 1}, 10.0),
            ({"id": 2}, 30.0),
            ({"id": 3}, None),  # crashed
            ({"id": 4}, 20.0),
        ]
        strategy._rung_population = 4
        strategy._promote()
        promoted_ids = [c["id"] for c in strategy._pending]
        assert promoted_ids == [2, 4]  # top half by objective
        assert strategy._rung_iterations == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(bracket_size=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(min_probe_iterations=1)

    def test_num_rungs(self):
        assert SuccessiveHalving(bracket_size=9, eta=3).num_rungs() == 3
        assert SuccessiveHalving(bracket_size=8, eta=2).num_rungs() == 4


class TestGradientCompression:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(compression_ratio=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(compression_ratio=1.5)

    def test_bytes_factor_combines_precision_and_compression(self):
        config = TrainingConfig(gradient_precision="fp16", compression_ratio=0.1)
        assert config.gradient_bytes_factor == pytest.approx(0.05)

    def test_compression_raises_throughput_for_comm_bound(self):
        cluster = homogeneous(16, jitter_cv=0.0)
        dense = estimate(
            TrainingConfig(num_workers=8, num_ps=2, batch_per_worker=256),
            W2V, cluster,
        )
        sparse = estimate(
            TrainingConfig(
                num_workers=8, num_ps=2, batch_per_worker=256, compression_ratio=0.1
            ),
            W2V, cluster,
        )
        assert sparse.throughput > 2 * dense.throughput

    def test_convergence_penalty(self):
        profile = ConvergenceProfile(
            base_iters=1000, ref_batch=64, critical_batch=1024,
            compression_sensitivity=0.5,
        )
        dense = profile.iterations_to_target(64)
        mild = profile.iterations_to_target(64, compression_ratio=0.1)
        harsh = profile.iterations_to_target(64, compression_ratio=0.01)
        assert dense < mild < harsh

    def test_tta_tradeoff_visible(self):
        """Compression helps TTA for comm-bound jobs despite the penalty."""
        env = TrainingEnvironment(
            W2V, homogeneous(16), seed=0, objective_name="tta", noise_cv=0.0
        )
        dense = env.true_objective(
            TrainingConfig(num_workers=8, num_ps=2, batch_per_worker=256)
        )
        sparse = env.true_objective(
            TrainingConfig(
                num_workers=8, num_ps=2, batch_per_worker=256, compression_ratio=0.1
            )
        )
        assert sparse > dense  # less negative = faster time-to-accuracy

    def test_space_knob_optional(self):
        base = ml_config_space(8)
        extended = ml_config_space(8, include_compression=True)
        assert "compression_ratio" not in base
        assert "compression_ratio" in extended
        assert extended.dims == base.dims + 4  # one-hot over 4 ratios

    def test_roundtrip_through_dict(self):
        config = TrainingConfig(compression_ratio=0.1)
        assert TrainingConfig.from_dict(config.to_dict()) == config


class TestTransientFailures:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            make_env(transient_failure_rate=1.0)
        with pytest.raises(ValueError):
            make_env(transient_failure_rate=-0.1)

    def test_failures_injected_at_expected_rate(self):
        env = make_env(transient_failure_rate=0.3)
        config = TrainingConfig(num_workers=4, num_ps=2, batch_per_worker=32)
        outcomes = [env.measure(config).ok for _ in range(100)]
        failures = outcomes.count(False)
        assert 15 <= failures <= 45  # ~30 expected

    def test_failures_are_deterministic_per_trial_index(self):
        a = [make_env(transient_failure_rate=0.3).measure(
            TrainingConfig(num_workers=4, num_ps=2)
        ).ok]
        b = [make_env(transient_failure_rate=0.3).measure(
            TrainingConfig(num_workers=4, num_ps=2)
        ).ok]
        assert a == b

    def test_failed_probes_still_cost(self):
        env = make_env(transient_failure_rate=0.99)
        m = env.measure(TrainingConfig(num_workers=4, num_ps=2))
        assert not m.ok
        assert m.probe_cost_s > 0
        assert "transient" in m.error

    def test_tuner_survives_heavy_failures(self):
        env = make_env(transient_failure_rate=0.25)
        result = MLConfigTuner(seed=0).run(
            env, ml_config_space(8), TuningBudget(max_trials=20), seed=0
        )
        assert result.best_trial is not None
        assert result.best_objective > 0

    def test_random_search_survives_heavy_failures(self):
        env = make_env(transient_failure_rate=0.25)
        result = RandomSearch().run(
            env, ml_config_space(8), TuningBudget(max_trials=20), seed=0
        )
        assert result.best_trial is not None


class TestCli:
    def test_list_workloads(self, capsys):
        assert cli_main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "resnet50-imagenet" in out

    def test_describe_space(self, capsys):
        assert cli_main(["describe-space", "--nodes", "4"]) == 0
        assert "num_workers" in capsys.readouterr().out

    def test_tune_random(self, capsys):
        code = cli_main(
            [
                "tune", "--workload", "lstm-ptb", "--nodes", "4",
                "--trials", "5", "--strategy", "random",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "samples/s" in out
        assert "num_workers" in out

    def test_tune_tta_objective(self, capsys):
        code = cli_main(
            [
                "tune", "--workload", "mlp-criteo", "--nodes", "4",
                "--trials", "4", "--strategy", "random", "--objective", "tta",
            ]
        )
        assert code == 0
        assert "hours to target accuracy" in capsys.readouterr().out

    def test_tune_async_executor(self, capsys):
        code = cli_main(
            [
                "tune", "--workload", "lstm-ptb", "--nodes", "4",
                "--trials", "8", "--strategy", "random",
                "--workers", "4", "--executor", "async",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "async" in out
        assert "barrier-free" in out

    def test_tune_rejects_nonpositive_trials(self, capsys):
        """Regression: --trials 0 used to crash with a raw ValueError."""
        for trials in ("0", "-3"):
            code = cli_main(
                ["tune", "--workload", "lstm-ptb", "--trials", trials]
            )
            assert code == 2
            assert "--trials must be >= 1" in capsys.readouterr().err

    def test_tune_rejects_nonpositive_wall_cap(self, capsys):
        code = cli_main(
            ["tune", "--workload", "lstm-ptb", "--trials", "4",
             "--max-wall-hours", "0"]
        )
        assert code == 2
        assert "--max-wall-hours" in capsys.readouterr().err

    def test_unknown_experiment_id(self, capsys):
        assert cli_main(["experiment", "--id", "Z9"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_t1(self, capsys):
        assert cli_main(["experiment", "--id", "T1"]) == 0
        assert "Configuration space" in capsys.readouterr().out
