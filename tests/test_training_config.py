"""Tests for TrainingConfig validation, canonicalisation, and defaults."""

import pytest

from repro.mlsim import DEFAULT_CONFIG, TrainingConfig, expert_config


class TestValidation:
    def test_defaults_are_valid(self):
        config = TrainingConfig()
        assert config.architecture == "ps"
        assert config.global_batch == config.num_workers * config.batch_per_worker

    def test_bad_architecture(self):
        with pytest.raises(ValueError, match="architecture"):
            TrainingConfig(architecture="gossip")

    def test_bad_sync_mode(self):
        with pytest.raises(ValueError, match="sync_mode"):
            TrainingConfig(sync_mode="eventually")

    def test_bad_precision(self):
        with pytest.raises(ValueError, match="gradient_precision"):
            TrainingConfig(gradient_precision="fp8")

    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            TrainingConfig(num_workers=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_per_worker=0)
        with pytest.raises(ValueError):
            TrainingConfig(intra_op_threads=-1)
        with pytest.raises(ValueError):
            TrainingConfig(staleness_bound=-1)


class TestDerivedProperties:
    def test_global_batch(self):
        config = TrainingConfig(num_workers=8, batch_per_worker=64)
        assert config.global_batch == 512

    def test_precision_factor(self):
        assert TrainingConfig(gradient_precision="fp32").gradient_bytes_factor == 1.0
        assert TrainingConfig(gradient_precision="fp16").gradient_bytes_factor == 0.5

    def test_effective_staleness_bound(self):
        assert TrainingConfig(sync_mode="bsp").effective_staleness_bound == 0
        assert TrainingConfig(sync_mode="asp").effective_staleness_bound >= 1_000_000
        assert TrainingConfig(sync_mode="ssp", staleness_bound=5).effective_staleness_bound == 5

    def test_machines_needed(self):
        assert TrainingConfig(num_workers=4, num_ps=2, colocate_ps=False).machines_needed() == 6
        assert TrainingConfig(num_workers=4, num_ps=2, colocate_ps=True).machines_needed() == 4
        assert (
            TrainingConfig(architecture="allreduce", num_workers=4).machines_needed() == 4
        )


class TestCanonical:
    def test_allreduce_normalises_ps_fields(self):
        config = TrainingConfig(
            architecture="allreduce", num_workers=4, num_ps=7, colocate_ps=True,
            sync_mode="asp",
        )
        canonical = config.canonical()
        assert canonical.num_ps == 1
        assert not canonical.colocate_ps
        assert canonical.sync_mode == "bsp"

    def test_bsp_zeroes_staleness(self):
        config = TrainingConfig(sync_mode="bsp", staleness_bound=9)
        assert config.canonical().staleness_bound == 0

    def test_equivalent_configs_become_equal(self):
        a = TrainingConfig(architecture="allreduce", num_workers=4, num_ps=3).canonical()
        b = TrainingConfig(architecture="allreduce", num_workers=4, num_ps=9).canonical()
        assert a == b

    def test_canonical_is_idempotent(self):
        config = TrainingConfig(sync_mode="ssp", staleness_bound=4)
        assert config.canonical() == config.canonical().canonical()


class TestRoundTrip:
    def test_to_from_dict(self):
        config = TrainingConfig(num_workers=6, sync_mode="ssp", staleness_bound=3)
        assert TrainingConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_extra_keys(self):
        values = DEFAULT_CONFIG.to_dict()
        values["unrelated"] = 42
        assert TrainingConfig.from_dict(values) == DEFAULT_CONFIG


class TestExpertConfig:
    def test_compute_bound_gets_allreduce(self):
        config = expert_config(16, compute_comm_ratio=120.0)
        assert config.architecture == "allreduce"
        assert config.num_workers == 16

    def test_balanced_gets_few_ps(self):
        config = expert_config(16, compute_comm_ratio=20.0)
        assert config.architecture == "ps"
        assert config.num_ps < config.num_workers

    def test_comm_bound_gets_many_ps(self):
        config = expert_config(16, compute_comm_ratio=1.0)
        assert config.num_ps >= 16 // 2 - 1

    def test_fits_cluster(self):
        for ratio in (0.1, 5.0, 20.0, 200.0):
            for nodes in (2, 4, 16, 64):
                config = expert_config(nodes, ratio)
                assert config.machines_needed() <= nodes

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            expert_config(1, 10.0)
