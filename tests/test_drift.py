"""Tests for the non-stationarity stack.

Covers the drift-schedule layer (`repro.mlsim.drift`), the fleet failure
injector (`repro.core.fleet`), the Page–Hinkley change-point detector and
re-tuning policies (`repro.core.detect`), the stale-history surrogate
plumbing (`repro.core.gp` / `repro.core.bo` / `repro.core.tuner`), and the
interaction between shard outages and `FailureStreakRule` — a shard
outage must not end a session whose other shards are healthy.
"""

import numpy as np
import pytest

from repro.cluster import homogeneous
from repro.configspace import (
    ConfigSpace,
    FloatParameter,
    ml_config_space,
    to_training_config,
)
from repro.core import (
    ChangePointDetector,
    DriftEvent,
    EnvironmentPool,
    EnvironmentShard,
    FailureInjector,
    FailureSpike,
    MLConfigTuner,
    OutageWindow,
    RetuningPolicy,
    RoundRobinScheduler,
    SerialExecutor,
    TrialHistory,
    TuningBudget,
    TuningSession,
    parse_outage_spec,
)
from repro.core.bo import BayesianProposer
from repro.core.detect import _PageHinkley
from repro.core.gp import GaussianProcess
from repro.core.stopping import FailureStreakRule, StoppedStrategy
from repro.core.strategy import SearchStrategy
from repro.mlsim import (
    CompositeDrift,
    Measurement,
    PeriodicDrift,
    RampDrift,
    StepDrift,
    StragglerOnset,
    TrainingConfig,
    TrainingEnvironment,
    parse_drift_spec,
)
from repro.workloads import get_workload

NODES = 8


def make_env(seed=0, **kwargs):
    return TrainingEnvironment(
        get_workload("resnet50-imagenet"), homogeneous(NODES), seed=seed, **kwargs
    )


def stub_space():
    return ConfigSpace([FloatParameter("x", 0.0, 1.0)])


def stub_measurement(objective, ok=True, cost=1.0):
    return Measurement(
        config=TrainingConfig(),
        ok=ok,
        fidelity="stub",
        objective=objective if ok else None,
        probe_cost_s=cost,
    )


class TestDriftSchedules:
    def test_step_is_identity_before_onset(self):
        drift = StepDrift(at_s=100.0, speed_scale=0.5, intensity=2.0)
        assert drift.state_at(99.9, NODES).is_identity
        state = drift.state_at(100.0, NODES)
        assert state.speed_scale == 0.5
        assert state.intensity == 2.0

    def test_ramp_interpolates_linearly(self):
        drift = RampDrift(start_s=100.0, end_s=200.0, speed_scale=0.5)
        assert drift.state_at(50.0, NODES).is_identity
        assert drift.state_at(150.0, NODES).speed_scale == pytest.approx(0.75)
        assert drift.state_at(1e9, NODES).speed_scale == pytest.approx(0.5)

    def test_periodic_oscillates_within_bounds(self):
        drift = PeriodicDrift(period_s=100.0, amplitude=0.4)
        scales = [drift.state_at(t, NODES).speed_scale for t in range(0, 200, 5)]
        assert min(scales) >= 0.6 - 1e-12
        assert max(scales) <= 1.0 + 1e-12
        assert min(scales) < 0.65 and max(scales) > 0.95

    def test_straggler_set_is_deterministic_and_nonempty(self):
        drift = StragglerOnset(at_s=10.0, fraction=0.25, slowdown=4.0, seed=3)
        nodes = drift.straggler_nodes(NODES)
        assert nodes == drift.straggler_nodes(NODES)
        assert len(nodes) == 2
        state = drift.state_at(10.0, NODES)
        scale = state.speed_scale
        assert isinstance(scale, tuple) and len(scale) == NODES
        for i in range(NODES):
            expected = 0.25 if i in nodes else 1.0
            assert scale[i] == pytest.approx(expected)
        assert drift.state_at(9.9, NODES).is_identity

    def test_composite_multiplies_scales_and_sums_boosts(self):
        drift = CompositeDrift(
            (
                StepDrift(at_s=0.0, speed_scale=0.5, failure_rate_boost=0.3),
                StepDrift(at_s=0.0, intensity=2.0, failure_rate_boost=0.9),
                StragglerOnset(at_s=0.0, fraction=0.25, slowdown=2.0, seed=0),
            )
        )
        state = drift.state_at(1.0, NODES)
        assert isinstance(state.speed_scale, tuple)
        stragglers = StragglerOnset(
            at_s=0.0, fraction=0.25, slowdown=2.0, seed=0
        ).straggler_nodes(NODES)
        for i in range(NODES):
            expected = 0.5 * (0.5 if i in stragglers else 1.0)
            assert state.speed_scale[i] == pytest.approx(expected)
        assert state.intensity == pytest.approx(2.0)
        assert state.failure_rate_boost == pytest.approx(0.999)  # clipped

    def test_parse_spec_single_and_composite(self):
        assert parse_drift_spec("") is None
        single = parse_drift_spec("step:at=100,intensity=1.5")
        assert isinstance(single, StepDrift)
        assert single.at_s == 100.0 and single.intensity == 1.5
        combo = parse_drift_spec(
            "stragglers:at=3600,fraction=0.25,slowdown=2.5;step:at=3600,intensity=1.2"
        )
        assert isinstance(combo, CompositeDrift)
        assert len(combo.schedules) == 2

    def test_parse_spec_rejects_unknown_kind_and_key(self):
        with pytest.raises(ValueError):
            parse_drift_spec("meteor:at=3")
        with pytest.raises(ValueError):
            parse_drift_spec("ramp:start=1,end=2,scale=0.5")  # key is 'speed'

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            StepDrift(at_s=-1.0)
        with pytest.raises(ValueError):
            RampDrift(start_s=10.0, end_s=10.0)
        with pytest.raises(ValueError):
            StragglerOnset(at_s=0.0, slowdown=1.0)
        with pytest.raises(ValueError):
            CompositeDrift(())


class TestEnvironmentDrift:
    def test_drift_none_is_bit_identical(self):
        space = ml_config_space(NODES)
        rng = np.random.default_rng(5)
        configs = [space.sample(rng) for _ in range(6)]
        plain = make_env(seed=7)
        gated = make_env(seed=7, drift=None)
        for config in configs:
            a = plain.measure(to_training_config(config))
            b = gated.measure(to_training_config(config))
            assert a == b

    def test_pre_onset_drift_is_bit_identical(self):
        space = ml_config_space(NODES)
        rng = np.random.default_rng(5)
        configs = [space.sample(rng) for _ in range(4)]
        plain = make_env(seed=7)
        drifting = make_env(seed=7, drift=StepDrift(at_s=1e12, speed_scale=0.1))
        for config in configs:
            assert plain.measure(to_training_config(config)) == drifting.measure(
                to_training_config(config)
            )

    def test_same_seed_drift_replay_is_identical(self):
        drift = CompositeDrift(
            (
                StragglerOnset(at_s=0.0, fraction=0.25, slowdown=3.0),
                StepDrift(at_s=0.0, intensity=1.5),
            )
        )
        space = ml_config_space(NODES)
        rng = np.random.default_rng(11)
        configs = [space.sample(rng) for _ in range(4)]
        first = [
            make_env(seed=3, drift=drift).measure(to_training_config(c))
            for c in configs
        ]
        second = [
            make_env(seed=3, drift=drift).measure(to_training_config(c))
            for c in configs
        ]
        assert first == second

    def test_step_drift_degrades_throughput(self):
        space = ml_config_space(NODES)
        rng = np.random.default_rng(2)
        plain = make_env(seed=1)
        slowed = make_env(seed=1, drift=StepDrift(at_s=0.0, speed_scale=0.5))
        for _ in range(20):
            config = to_training_config(space.sample(rng))
            base = plain.true_objective(config)
            if base is not None:
                break
        assert base is not None
        degraded = slowed.true_objective(config)
        assert degraded is not None
        assert degraded < base


class TestFailureInjector:
    def test_outage_window_queries(self):
        injector = FailureInjector(
            outages=[
                OutageWindow("s0", 100.0, 200.0),
                OutageWindow("s0", 200.0, 250.0),
            ]
        )
        assert not injector.is_down("s0", 99.9)
        assert injector.is_down("s0", 100.0)
        assert injector.is_down("s0", 199.9)
        assert not injector.is_down("s0", 250.0)
        assert not injector.is_down("s1", 150.0)
        # chained windows are walked through
        assert injector.up_after("s0", 150.0) == pytest.approx(250.0)
        assert injector.up_after("s0", 50.0) == pytest.approx(50.0)

    def test_preemption_at(self):
        injector = FailureInjector(outages=[OutageWindow("s0", 100.0, 200.0)])
        # probe running across the window start gets preempted at it
        assert injector.preemption_at("s0", 50.0, 150.0) == pytest.approx(100.0)
        # launch while down preempts immediately
        assert injector.preemption_at("s0", 120.0, 180.0) == pytest.approx(120.0)
        # probe entirely clear of the window runs through
        assert injector.preemption_at("s0", 200.0, 300.0) is None
        assert injector.preemption_at("s1", 50.0, 150.0) is None

    def test_failure_boost_sums_open_spikes(self):
        injector = FailureInjector(
            spikes=[
                FailureSpike("s0", 0.0, 100.0, rate=0.2),
                FailureSpike("s0", 50.0, 150.0, rate=0.3),
            ]
        )
        assert injector.failure_boost("s0", 25.0) == pytest.approx(0.2)
        assert injector.failure_boost("s0", 75.0) == pytest.approx(0.5)
        assert injector.failure_boost("s0", 125.0) == pytest.approx(0.3)
        assert injector.failure_boost("s1", 75.0) == 0.0

    def test_parse_outage_spec(self):
        windows = parse_outage_spec("shard0:100-2000;shard2:1000-1500,9000-9900")
        assert [(w.shard, w.start_s, w.end_s) for w in windows] == [
            ("shard0", 100.0, 2000.0),
            ("shard2", 1000.0, 1500.0),
            ("shard2", 9000.0, 9900.0),
        ]
        with pytest.raises(ValueError):
            parse_outage_spec("shard0")
        with pytest.raises(ValueError):
            parse_outage_spec("shard0:200-100")


class StubEnv:
    def describe(self):
        return {"workload": "stub"}


class ScriptedStrategy(SearchStrategy):
    """Stub with scripted per-probe success and cost."""

    name = "scripted-stub"

    def __init__(self, ok=True, cost=1.0):
        self.ok = ok
        self.cost = cost

    def propose(self, history, space, rng):
        return {"x": 0.5}

    def measure(self, env, config):
        return stub_measurement(self.cost, ok=self.ok, cost=self.cost)


class TestOutageAndFailureStreak:
    def test_outage_redirects_instead_of_failing(self):
        """A downed shard must not feed `FailureStreakRule`: probes are
        redirected to healthy shards and the session runs to budget."""
        injector = FailureInjector(outages=[OutageWindow("s0", 0.0, 1e9)])
        pool = EnvironmentPool(
            [
                EnvironmentShard("s0", StubEnv(), capacity=2),
                EnvironmentShard("s1", StubEnv(), capacity=1),
            ],
            scheduler=RoundRobinScheduler(),
            injector=injector,
        )
        strategy = StoppedStrategy(
            ScriptedStrategy(ok=True), [FailureStreakRule(streak=2)]
        )
        result = TuningSession(strategy, executor=SerialExecutor(pool=pool)).run(
            None, stub_space(), TuningBudget(max_trials=6), seed=0
        )
        assert strategy.stop_reason is None
        assert result.num_trials == 6
        assert all(t.ok for t in result.history)
        assert all(t.shard == "s1" for t in result.history)

    def test_preempted_probe_bills_cancelled_wall(self):
        """Preemption mid-probe bills the burned wall-clock and the probe
        completes after the window; per-shard billing stays consistent."""
        injector = FailureInjector(outages=[OutageWindow("s0", 0.5, 2.0)])
        pool = EnvironmentPool(
            [EnvironmentShard("s0", StubEnv(), capacity=1)],
            scheduler=RoundRobinScheduler(),
            injector=injector,
        )
        result = TuningSession(
            ScriptedStrategy(ok=True, cost=1.0), executor=SerialExecutor(pool=pool)
        ).run(None, stub_space(), TuningBudget(max_trials=2), seed=0)
        assert result.num_trials == 2
        assert all(t.ok for t in result.history)
        assert result.history.cancelled_cost_s == pytest.approx(0.5)
        assert sum(result.history.cost_by_shard().values()) == pytest.approx(
            result.total_cost_s
        )

    def test_all_failed_history_trips_streak(self):
        strategy = StoppedStrategy(
            ScriptedStrategy(ok=False), [FailureStreakRule(streak=3)]
        )
        result = TuningSession(strategy).run(
            make_env(seed=0), stub_space(), TuningBudget(max_trials=20), seed=0
        )
        assert strategy.stop_reason == "3 consecutive failed probes"
        assert result.num_trials == 3
        assert all(not t.ok for t in result.history)


class TestPageHinkley:
    def test_stationary_stream_never_alarms(self):
        """Production knobs stay quiet over a session-length unit-variance
        stream (random-walk excursions must not reach the threshold)."""
        ph = _PageHinkley(delta=0.3, threshold=8.0)
        rng = np.random.default_rng(0)
        for value in rng.normal(size=60):
            assert ph.update(float(value)) is None

    def test_constant_offset_is_absorbed(self):
        """Running-mean centering: a persistently biased stream (BO
        acquisition bias) must not masquerade as drift."""
        ph = _PageHinkley(delta=0.3, threshold=8.0)
        for _ in range(500):
            assert ph.update(-0.8) is None

    def test_mean_shift_alarms_with_direction(self):
        ph = _PageHinkley(delta=0.3, threshold=8.0)
        rng = np.random.default_rng(1)
        for value in rng.normal(size=50):
            assert ph.update(float(value)) is None
        alarm = None
        for value in rng.normal(loc=-3.0, size=50):
            alarm = ph.update(float(value))
            if alarm is not None:
                break
        assert alarm is not None
        direction, statistic = alarm
        assert direction == "decrease"
        assert statistic > 8.0

    def test_upward_shift_alarms_increase(self):
        ph = _PageHinkley(delta=0.3, threshold=8.0)
        rng = np.random.default_rng(2)
        for value in rng.normal(size=50):
            ph.update(float(value))
        alarm = None
        for value in rng.normal(loc=3.0, size=50):
            alarm = ph.update(float(value))
            if alarm is not None:
                break
        assert alarm is not None
        assert alarm[0] == "increase"

    def test_reset_clears_state(self):
        ph = _PageHinkley(delta=0.3, threshold=8.0)
        for _ in range(30):
            ph.update(-2.0)
        ph.reset()
        assert ph._n == 0 and ph._mean == 0.0
        assert ph.update(-2.0) is None


class TestChangePointDetector:
    def _feed(self, detector, history, objective, index):
        trial = history.record(
            {"x": 0.5}, stub_measurement(objective), wall_clock_s=1.0
        )
        detector.on_round_end(index, [trial], history)
        return trial

    def test_detects_drop_records_event_and_retunes(self):
        tuner = MLConfigTuner(seed=0)
        detector = ChangePointDetector(
            policy=RetuningPolicy(mode="evict", refresh_initial=2),
            warmup=8,
            window=10,
        )
        detector.on_session_start(tuner, None, stub_space(), None)
        history = TrialHistory()
        index = 0
        for _ in range(12):
            self._feed(detector, history, 100.0 + 0.01 * index, index)
            index += 1
        assert detector.events == []
        for _ in range(8):
            self._feed(detector, history, 10.0, index)
            index += 1
            if detector.events:
                break
        assert len(detector.events) == 1
        event = detector.events[0]
        assert isinstance(event, DriftEvent)
        assert event.direction == "decrease"
        assert history.events == [event]
        # the policy reached the tuner: pending re-tune stashed (no
        # proposer built yet), incumbent re-probe queued, refresh queued
        assert tuner._pending_retune is not None
        assert tuner._pending_retune[1] is None  # evict mode
        assert len(tuner._reprobe_queue) == 1
        assert tuner._refresh_remaining == 2

    def test_off_policy_records_without_touching_strategy(self):
        tuner = MLConfigTuner(seed=0)
        detector = ChangePointDetector(
            policy=RetuningPolicy(mode="off"), warmup=8, window=10
        )
        detector.on_session_start(tuner, None, stub_space(), None)
        history = TrialHistory()
        index = 0
        for _ in range(12):
            self._feed(detector, history, 100.0, index)
            index += 1
        for _ in range(8):
            self._feed(detector, history, 10.0, index)
            index += 1
            if detector.events:
                break
        assert len(detector.events) == 1
        assert tuner._pending_retune is None
        assert tuner._reprobe_queue == []

    def test_stationary_session_is_bit_identical_with_detector(self):
        """Attaching the detector to a drift-free session must not change
        the trajectory: it only observes until an alarm fires."""
        budget = TuningBudget(max_trials=14)
        space = ml_config_space(NODES)
        plain = TuningSession(MLConfigTuner(seed=3)).run(
            make_env(seed=3), space, budget, seed=3
        )
        detector = ChangePointDetector()
        watched = TuningSession(MLConfigTuner(seed=3), detector=detector).run(
            make_env(seed=3), space, budget, seed=3
        )
        assert detector.events == []
        assert [t.objective for t in plain.history] == [
            t.objective for t in watched.history
        ]
        assert [t.config for t in plain.history] == [
            t.config for t in watched.history
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ChangePointDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ChangePointDetector(warmup=0)
        with pytest.raises(ValueError):
            ChangePointDetector(clip=0.0)
        with pytest.raises(ValueError):
            RetuningPolicy(mode="panic")
        with pytest.raises(ValueError):
            RetuningPolicy(discount=0.0)


class TestRecommendation:
    def test_recommendation_rebases_on_drift_event(self):
        history = TrialHistory()
        history.record({"x": 0.1}, stub_measurement(100.0))
        history.record({"x": 0.2}, stub_measurement(90.0))
        assert history.recommendation().config == {"x": 0.1}
        history.record_event(
            DriftEvent(
                trial_index=1,
                wall_clock_s=2.0,
                statistic=9.0,
                threshold=5.0,
                direction="decrease",
            )
        )
        # post-change window still empty: fall back to the global best
        assert history.recommendation().config == {"x": 0.1}
        history.record({"x": 0.3}, stub_measurement(40.0))
        history.record({"x": 0.4}, stub_measurement(55.0))
        # stale 100.0 record no longer outranks fresh measurements
        assert history.recommendation().config == {"x": 0.4}
        assert history.best().config == {"x": 0.1}
        assert history.best(since_index=2).config == {"x": 0.4}


class TestStaleHistorySurrogate:
    def _fitted_gp(self, noise_scale=None):
        rng = np.random.default_rng(0)
        x = np.linspace(0.0, 1.0, 12)[:, None]
        y = np.sin(3.0 * x[:, 0]) + 0.05 * rng.normal(size=12)
        gp = GaussianProcess(noise_variance=1e-2)
        gp.fit(x, y, optimize_hypers=False, noise_scale=noise_scale)
        return gp, x, y

    def test_none_scale_matches_legacy_fit(self):
        gp_a, x, _ = self._fitted_gp()
        gp_b, _, _ = self._fitted_gp(noise_scale=None)
        grid = np.linspace(0.0, 1.0, 20)[:, None]
        mu_a, var_a = gp_a.predict(grid)
        mu_b, var_b = gp_b.predict(grid)
        assert np.array_equal(mu_a, mu_b)
        assert np.array_equal(var_a, var_b)

    def test_inflated_noise_discounts_observations(self):
        scale = np.ones(12)
        scale[:6] = 100.0
        gp_unit, x, y = self._fitted_gp()
        gp_scaled, _, _ = self._fitted_gp(noise_scale=scale)
        mu_unit, _ = gp_unit.predict(x[:6])
        mu_scaled, _ = gp_scaled.predict(x[:6])
        # discounted points pull the posterior toward them far less
        assert np.mean(np.abs(mu_scaled - y[:6])) > np.mean(
            np.abs(mu_unit - y[:6])
        )

    def test_extend_appends_at_unit_scale(self):
        scale = np.ones(12)
        scale[:4] = 10.0
        gp, x, y = self._fitted_gp(noise_scale=scale)
        gp.extend(np.array([[0.55]]), np.array([0.3]))
        assert gp._noise_scale.shape == (13,)
        assert gp._noise_scale[-1] == 1.0

    def test_scale_validation(self):
        gp = GaussianProcess()
        x = np.linspace(0.0, 1.0, 5)[:, None]
        y = np.zeros(5)
        with pytest.raises(ValueError):
            gp.fit(x, y, noise_scale=np.ones(4))
        with pytest.raises(ValueError):
            gp.fit(x, y, noise_scale=np.array([1.0, 1.0, -1.0, 1.0, 1.0]))


class TestProposerRetuning:
    def _history(self, n=10):
        history = TrialHistory()
        for i in range(n):
            history.record({"x": i / max(n - 1, 1)}, stub_measurement(float(i)))
        return history

    def test_evict_drops_stale_rows(self):
        space = stub_space()
        proposer = BayesianProposer(space, n_initial=2)
        history = self._history(10)
        proposer.apply_retuning(6, discount=None)
        rows, targets, noise_scale = proposer._training_set(history)
        assert rows.shape[0] == 4
        assert targets.shape[0] == 4
        assert noise_scale is None

    def test_discount_inflates_stale_noise(self):
        space = stub_space()
        proposer = BayesianProposer(space, n_initial=2)
        history = self._history(10)
        proposer.apply_retuning(6, discount=0.25)
        rows, targets, noise_scale = proposer._training_set(history)
        assert rows.shape[0] == 10
        assert noise_scale is not None
        assert np.all(noise_scale[:6] == pytest.approx(4.0))
        assert np.all(noise_scale[6:] == 1.0)

    def test_retuning_validation(self):
        proposer = BayesianProposer(stub_space())
        with pytest.raises(ValueError):
            proposer.apply_retuning(-1)
        with pytest.raises(ValueError):
            proposer.apply_retuning(3, discount=0.0)

    def test_tuner_reprobe_and_refresh_queue(self):
        tuner = MLConfigTuner(seed=0)
        space = stub_space()
        rng = np.random.default_rng(0)
        tuner.apply_retuning(0, reprobe={"x": 0.5}, refresh_initial=1)
        history = TrialHistory()
        first = tuner.propose(history, space, rng)
        assert first == {"x": 0.5}
        second = tuner.propose(history, space, rng)
        assert 0.0 <= second["x"] <= 1.0
        assert tuner._refresh_remaining == 0
        assert tuner._incumbent is None
