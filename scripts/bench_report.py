"""Render and regression-check BENCH_P3-style benchmark JSON files.

Two subcommands:

``report``
    Pretty-print a benchmark JSON (tables per axis, speedup columns)::

        python scripts/bench_report.py report BENCH_P3.json

``check``
    Compare a freshly measured JSON against a committed baseline and exit
    non-zero when a watched metric regressed beyond the allowed ratio —
    the CI gate for proposal latency::

        python scripts/bench_report.py check \
            --baseline BENCH_P3.json --current /tmp/bench_now.json \
            --metric propose/n=64/speedup --min-ratio 0.5

    ``--max-ratio`` bounds lower-is-better metrics (latencies):
    fail when ``current > max_ratio * baseline``.  ``--min-ratio`` bounds
    higher-is-better metrics (speedups): fail when
    ``current < min_ratio * baseline``.  Prefer gating on ``speedup``
    fields in CI — both sides of a speedup are measured on the same
    machine in the same run, so the verdict does not depend on how fast
    the runner hardware happens to be.

Metrics are addressed as ``section/cell/field`` paths into the JSON
(e.g. ``propose/n=64/incremental_ms``).
"""

import argparse
import json
import sys


def _load(path):
    with open(path) as handle:
        return json.load(handle)


def _lookup(results, metric):
    node = results
    for part in metric.split("/"):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric {metric!r} not found (missing {part!r})")
        node = node[part]
    if not isinstance(node, (int, float)):
        raise KeyError(f"metric {metric!r} resolves to {type(node).__name__}, not a number")
    return float(node)


PREFERRED_SECTION_ORDER = (
    "propose",
    "throughput",
    "batch",
    "hyperfit",
    "harness",
    "cache",
    "fleet",
)
_META_KEYS = {"schema", "quick", "config"}


def _sections(results):
    """Table sections of a benchmark JSON: every dict-of-dicts data key.

    Known sections render in their preferred order; any section a newer
    schema adds still renders (after them, in name order) instead of being
    silently dropped.
    """
    names = [
        key
        for key, value in results.items()
        if key not in _META_KEYS
        and isinstance(value, dict)
        and value
        and all(isinstance(cell, dict) for cell in value.values())
    ]
    return sorted(
        names,
        key=lambda name: (
            PREFERRED_SECTION_ORDER.index(name)
            if name in PREFERRED_SECTION_ORDER
            else len(PREFERRED_SECTION_ORDER),
            name,
        ),
    )


def render(results):
    lines = []
    quick = " (quick)" if results.get("quick") else ""
    lines.append(f"# {results.get('schema', 'benchmark')}{quick}")
    for section in _sections(results):
        cells = results.get(section)
        if not cells:
            continue
        lines.append("")
        lines.append(f"## {section}")
        fields = sorted({f for cell in cells.values() for f in cell})
        header = ["cell"] + fields
        rows = [header, ["-" * len(h) for h in header]]
        for name in sorted(cells):
            row = [name]
            for field in fields:
                value = cells[name].get(field)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def cmd_report(args):
    print(render(_load(args.path)))
    return 0


def cmd_check(args):
    if (args.max_ratio is None) == (args.min_ratio is None):
        print("check: pass exactly one of --max-ratio / --min-ratio")
        return 2
    baseline = _load(args.baseline)
    current = _load(args.current)
    failures = []
    for metric in args.metric:
        base = _lookup(baseline, metric)
        now = _lookup(current, metric)
        ratio = now / base if base > 0 else float("inf")
        if args.max_ratio is not None:
            regressed = ratio > args.max_ratio
            bound = f"max {args.max_ratio:.2f}"
        else:
            regressed = ratio < args.min_ratio
            bound = f"min {args.min_ratio:.2f}"
        status = "REGRESSED" if regressed else "ok"
        print(
            f"{metric}: baseline {base:.2f} current {now:.2f} "
            f"ratio {ratio:.2f} ({bound}) {status}"
        )
        if regressed:
            failures.append(metric)
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed beyond the allowed ratio")
        return 1
    print("PASS: no metric regressed beyond the allowed ratio")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="pretty-print a benchmark JSON")
    report.add_argument("path")
    report.set_defaults(func=cmd_report)

    check = sub.add_parser("check", help="regression-gate against a baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument("--current", required=True)
    check.add_argument(
        "--metric",
        action="append",
        required=True,
        help="section/cell/field path, e.g. propose/n=64/speedup "
        "(repeatable)",
    )
    check.add_argument(
        "--max-ratio", type=float, default=None,
        help="fail when current > max_ratio * baseline (lower-is-better metrics)",
    )
    check.add_argument(
        "--min-ratio", type=float, default=None,
        help="fail when current < min_ratio * baseline (higher-is-better metrics)",
    )
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
