"""Render and regression-check BENCH_P3-style benchmark JSON files.

Two subcommands:

``report``
    Pretty-print a benchmark JSON (tables per axis, speedup columns)::

        python scripts/bench_report.py report BENCH_P3.json

``check``
    Compare a freshly measured JSON against a committed baseline and exit
    non-zero when a watched metric regressed beyond the allowed ratio —
    the CI gate for proposal latency::

        python scripts/bench_report.py check \
            --baseline BENCH_P3.json --current /tmp/bench_now.json \
            --metric propose/n=64/speedup --min-ratio 0.5

    ``--max-ratio`` bounds lower-is-better metrics (latencies):
    fail when ``current > max_ratio * baseline``.  ``--min-ratio`` bounds
    higher-is-better metrics (speedups): fail when
    ``current < min_ratio * baseline``.  Prefer gating on ``speedup``
    fields in CI — both sides of a speedup are measured on the same
    machine in the same run, so the verdict does not depend on how fast
    the runner hardware happens to be.

    ``--min-value`` / ``--max-value`` gate on the current measurement
    alone (no baseline): fail when ``current < min_value`` or
    ``current > max_value``.  Use these for properties that must hold on
    the runner itself — e.g. "parallel hyperfit beats serial at all" on a
    multi-core CI machine, where a ratio against a baseline recorded on
    different hardware would be meaningless.

    A gated metric missing from either JSON exits 2 with a message naming
    the metric (stale benchmark file), distinct from exit 1 (regression).

Metrics are addressed as ``section/cell/field`` paths into the JSON
(e.g. ``propose/n=64/incremental_ms``).
"""

import argparse
import json
import sys


def _load(path):
    with open(path) as handle:
        return json.load(handle)


def _lookup(results, metric):
    node = results
    for part in metric.split("/"):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric {metric!r} not found (missing {part!r})")
        node = node[part]
    if not isinstance(node, (int, float)):
        raise KeyError(f"metric {metric!r} resolves to {type(node).__name__}, not a number")
    return float(node)


PREFERRED_SECTION_ORDER = (
    "propose",
    "large",
    "throughput",
    "batch",
    "hyperfit",
    "harness",
    "cache",
    "fleet",
    "service",
    "drift",
    "sweep",
)
_META_KEYS = {"schema", "quick", "config"}


def _sections(results):
    """Table sections of a benchmark JSON: every dict-of-dicts data key.

    Known sections render in their preferred order; any section a newer
    schema adds still renders (after them, in name order) instead of being
    silently dropped.
    """
    names = [
        key
        for key, value in results.items()
        if key not in _META_KEYS
        and isinstance(value, dict)
        and value
        and all(isinstance(cell, dict) for cell in value.values())
    ]
    return sorted(
        names,
        key=lambda name: (
            PREFERRED_SECTION_ORDER.index(name)
            if name in PREFERRED_SECTION_ORDER
            else len(PREFERRED_SECTION_ORDER),
            name,
        ),
    )


def render(results):
    lines = []
    quick = " (quick)" if results.get("quick") else ""
    lines.append(f"# {results.get('schema', 'benchmark')}{quick}")
    for section in _sections(results):
        cells = results.get(section)
        if not cells:
            continue
        lines.append("")
        lines.append(f"## {section}")
        fields = sorted({f for cell in cells.values() for f in cell})
        header = ["cell"] + fields
        rows = [header, ["-" * len(h) for h in header]]
        for name in sorted(cells):
            row = [name]
            for field in fields:
                value = cells[name].get(field)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def cmd_report(args):
    print(render(_load(args.path)))
    return 0


def cmd_check(args):
    bounds = (args.max_ratio, args.min_ratio, args.max_value, args.min_value)
    if sum(bound is not None for bound in bounds) != 1:
        print(
            "check: pass exactly one of "
            "--max-ratio / --min-ratio / --max-value / --min-value"
        )
        return 2
    ratio_mode = args.max_ratio is not None or args.min_ratio is not None
    if ratio_mode and args.baseline is None:
        print("check: ratio bounds compare against a baseline; pass --baseline")
        return 2
    current = _load(args.current)
    baseline = _load(args.baseline) if args.baseline is not None else None
    failures = []
    for metric in args.metric:
        try:
            now = _lookup(current, metric)
        except KeyError as exc:
            # A missing gated metric is a stale benchmark file, not a code
            # regression — name the metric AND the offending file instead of
            # dumping a traceback, and exit with the usage status so CI logs
            # read unambiguously.
            print(f"check: {exc.args[0]}")
            print(
                f"check: current file {args.current!r} does not carry this "
                "metric — regenerate it with the current benchmark script"
            )
            return 2
        try:
            base = _lookup(baseline, metric) if ratio_mode else None
        except KeyError as exc:
            print(f"check: {exc.args[0]}")
            print(
                f"check: baseline file {args.baseline!r} does not carry this "
                "metric — regenerate the committed baseline with the current "
                "benchmark script"
            )
            return 2
        if ratio_mode:
            ratio = now / base if base > 0 else float("inf")
            if args.max_ratio is not None:
                regressed = ratio > args.max_ratio
                bound = f"max {args.max_ratio:.2f}"
            else:
                regressed = ratio < args.min_ratio
                bound = f"min {args.min_ratio:.2f}"
            status = "REGRESSED" if regressed else "ok"
            print(
                f"{metric}: baseline {base:.2f} current {now:.2f} "
                f"ratio {ratio:.2f} ({bound}) {status}"
            )
        else:
            if args.max_value is not None:
                regressed = now > args.max_value
                bound = f"max value {args.max_value:.2f}"
            else:
                regressed = now < args.min_value
                bound = f"min value {args.min_value:.2f}"
            status = "REGRESSED" if regressed else "ok"
            print(f"{metric}: current {now:.2f} ({bound}) {status}")
        if regressed:
            failures.append(metric)
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed beyond the allowed bound")
        return 1
    print("PASS: no metric regressed beyond the allowed bound")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="pretty-print a benchmark JSON")
    report.add_argument("path")
    report.set_defaults(func=cmd_report)

    check = sub.add_parser("check", help="regression-gate against a baseline")
    check.add_argument(
        "--baseline", default=None,
        help="committed baseline JSON (required for the ratio bounds)",
    )
    check.add_argument("--current", required=True)
    check.add_argument(
        "--metric",
        action="append",
        required=True,
        help="section/cell/field path, e.g. propose/n=64/speedup "
        "(repeatable)",
    )
    check.add_argument(
        "--max-ratio", type=float, default=None,
        help="fail when current > max_ratio * baseline (lower-is-better metrics)",
    )
    check.add_argument(
        "--min-ratio", type=float, default=None,
        help="fail when current < min_ratio * baseline (higher-is-better metrics)",
    )
    check.add_argument(
        "--max-value", type=float, default=None,
        help="fail when current > max_value — absolute bound, no baseline needed",
    )
    check.add_argument(
        "--min-value", type=float, default=None,
        help="fail when current < min_value — absolute bound for metrics that "
        "must hold on the runner itself (e.g. a live multi-core speedup floor)",
    )
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
