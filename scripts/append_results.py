"""Inline benchmarks/results/*.txt into EXPERIMENTS.md (append once).

Run after ``pytest benchmarks/ --benchmark-only`` to record the measured
tables of a reference run.
"""

import os

ORDER = [
    "T1", "T2", "T3",
    "F1", "F2", "F3", "F4", "F5", "F6",
    "A1", "A2", "A3",
    "E1", "E2", "V1",
]


def main() -> None:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    blocks = []
    for exp_id in ORDER:
        path = os.path.join(root, "benchmarks", "results", f"{exp_id}.txt")
        if not os.path.exists(path):
            print(f"missing {exp_id} (run the benchmark suite first)")
            continue
        with open(path) as handle:
            content = handle.read().rstrip()
        blocks.append("```\n" + content + "\n```\n")
    with open(os.path.join(root, "EXPERIMENTS.md"), "a") as handle:
        handle.write("\n".join(blocks))
    print(f"appended {len(blocks)} tables to EXPERIMENTS.md")


if __name__ == "__main__":
    main()
