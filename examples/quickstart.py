#!/usr/bin/env python3
"""Quickstart: tune the system configuration of a distributed training job.

Tunes ResNet-50/ImageNet training on a simulated 16-node cluster with the
BO tuner, then compares the result against the framework default and an
expert hand-tuned configuration.

Run:  python examples/quickstart.py
"""

from repro import MLConfigTuner, TuningBudget
from repro.baselines import default_strategy, expert_strategy
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.harness import render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    workload = get_workload("resnet50-imagenet")
    cluster = homogeneous(nodes)
    space = ml_config_space(nodes)
    budget = TuningBudget(max_trials=30)

    print(f"Tuning {workload.name} on {nodes}x {cluster.pools[0][0].name} nodes")
    print(f"Config space: {space.cardinality():.2e} unconstrained combinations\n")

    tuner = MLConfigTuner(seed=0)
    result = tuner.run(
        TrainingEnvironment(workload, cluster, seed=0), space, budget, seed=0
    )

    default = default_strategy().run(
        TrainingEnvironment(workload, cluster, seed=0), space,
        TuningBudget(max_trials=1),
    )
    expert = expert_strategy(nodes, workload.compute_comm_ratio).run(
        TrainingEnvironment(workload, cluster, seed=0), space,
        TuningBudget(max_trials=1),
    )

    rows = [
        ["default", default.best_objective, 1.0],
        ["expert", expert.best_objective,
         expert.best_objective / default.best_objective],
        [tuner.name, result.best_objective,
         result.best_objective / default.best_objective],
    ]
    print(render_table(
        ["configuration", "throughput (samples/s)", "speedup vs default"], rows
    ))

    print(f"\nBest configuration found after {result.num_trials} probes "
          f"({result.total_cost_s / 3600:.2f} simulated machine-hours of probing, "
          f"{tuner.probes_terminated_early} probes cut short):")
    for knob, value in sorted(result.best_config.items()):
        print(f"  {knob:>20} = {value}")


if __name__ == "__main__":
    main()
