#!/usr/bin/env python3
"""Head-to-head tuner comparison on a communication-bound workload.

Runs the BO tuner against CherryPick-style BO, random search, simulated
annealing, and coordinate descent on word2vec (the hardest workload for
naive tuning: the PS configuration dominates) and prints the convergence
table — the data behind figure F2.

Run:  python examples/compare_tuners.py
"""

from repro.cluster import homogeneous
from repro.core import TuningBudget
from repro.harness import render_series
from repro.harness.comparison import compare_strategies, standard_strategy_set
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    workload = get_workload("word2vec-wiki")
    comparison = compare_strategies(
        standard_strategy_set(),
        workload,
        homogeneous(nodes),
        TuningBudget(max_trials=25),
        repeats=2,
        seed=0,
    )

    print(f"Workload: {workload.name} (FLOP/byte = {workload.compute_comm_ratio:.3f})")
    print(f"True optimum: {comparison.optimum_value:.1f} samples/s with")
    for knob, value in sorted(comparison.optimum_config.items()):
        print(f"  {knob:>20} = {value}")
    print()

    checkpoints = [2, 4, 8, 12, 16, 20, 25]
    series = {}
    for name, outcome in comparison.outcomes.items():
        series[name] = [
            outcome.mean_curve[min(c, len(outcome.mean_curve)) - 1]
            for c in checkpoints
        ]
    print(render_series(
        "trial", checkpoints, series,
        title="Mean normalized best-so-far (fraction of true optimum)",
    ))

    print("\nRanking:", " > ".join(comparison.ranking()))


if __name__ == "__main__":
    main()
