#!/usr/bin/env python3
"""Recovering from mid-session drift with change-point detection.

Half an hour into a time-to-accuracy tuning session the cluster turns
hostile: 40% of the nodes become 5x stragglers and ambient interference
doubles, which *moves* the optimal configuration (the tta argmax switches
architecture/sync mode rather than just sitting lower).  Two tuners face
the same schedule at the same seed:

- *oblivious* — the stock ``MLConfigTuner``; its surrogate keeps
  averaging pre- and post-drift observations, and its recommendation
  stays pinned to the stale pre-drift record (post-drift measurements
  are worse on an absolute scale, so they never outrank it);
- *adaptive* — the same tuner plus a ``ChangePointDetector``
  (Page–Hinkley over normalised surrogate residuals) whose
  ``RetuningPolicy`` noise-discounts stale history, drops the stale
  early-termination incumbent, re-probes the incumbent config, and
  queues fresh exploration.

``TrialHistory.recommendation()`` is the config a deployment would copy:
best since the last recorded drift event, falling back to the global
best while the post-change window is still empty.  The CLI equivalent:

    repro tune --objective tta --detect-drift \\
        --drift "stragglers:at=1800,fraction=0.4,slowdown=5;step:at=1800,intensity=2"

Run:  python examples/drift_recovery.py       (~a minute, all simulated time)
"""

from repro import MLConfigTuner, TuningBudget, TuningSession
from repro.cluster import homogeneous
from repro.configspace import ml_config_space, to_training_config
from repro.core.detect import ChangePointDetector, RetuningPolicy
from repro.mlsim import (
    CompositeDrift,
    StepDrift,
    StragglerOnset,
    TrainingEnvironment,
)
from repro.workloads import get_workload

NODES = 16
DRIFT_AT_S = 1800.0
HORIZON_S = 6000.0  # 100 simulated minutes


def make_env(seed):
    drift = CompositeDrift(
        (
            StragglerOnset(at_s=DRIFT_AT_S, fraction=0.4, slowdown=5.0),
            StepDrift(at_s=DRIFT_AT_S, intensity=2.0),
        )
    )
    return TrainingEnvironment(
        get_workload("resnet50-imagenet"),
        homogeneous(NODES),
        seed=seed,
        objective_name="tta",
        drift=drift,
    )


def run(label, detector):
    env = make_env(seed=0)
    space = ml_config_space(NODES)
    session = TuningSession(MLConfigTuner(seed=0), detector=detector)
    session.run(
        env, space, TuningBudget(max_trials=None, max_wall_clock_s=HORIZON_S), seed=0
    )
    history = session.history
    recommended = history.recommendation()
    # Score the recommendation on the *post-drift* truth — what the
    # config would actually deliver on the cluster as it is now.
    truth = make_env(seed=0).true_objective(
        to_training_config(recommended.config), at_s=DRIFT_AT_S + 1.0
    )
    print(f"\n== {label} ==")
    print(f"trials run:              {len(history)}")
    if detector is not None:
        for event in detector.events:
            print(
                f"drift detected:          trial {event.trial_index}, "
                f"wall {event.wall_clock_s / 60:.0f} min "
                f"({event.direction}, stat {event.statistic:.1f})"
            )
    print(f"recommended config:      {recommended.config}")
    print(f"post-drift tta of rec.:  {-truth / 3600:.1f} h")
    return truth


def main():
    print(__doc__.splitlines()[0])
    oblivious = run("oblivious (stock tuner)", detector=None)
    adaptive = run(
        "adaptive (detector + re-tuning)",
        detector=ChangePointDetector(
            policy=RetuningPolicy(mode="discount", discount=0.25, refresh_initial=2)
        ),
    )
    print(
        f"\nadaptive recommendation is {oblivious / adaptive:.2f}x better "
        "time-to-accuracy on the post-drift cluster"
    )


if __name__ == "__main__":
    main()
