#!/usr/bin/env python3
"""Fleet tuning: one session fanned across heterogeneous simulated clusters.

Production tuning rarely probes a single pristine replica of the target
cluster.  The probing fleet is a *pool* of environments — some replicas run
probes slower (older hardware, contended tenancy), some offer several probe
slots — and which shard runs a probe becomes a scheduling decision.  The
``EnvironmentPool`` layer makes that dimension first-class: shards carry a
capacity and a probe-speed multiplier, a pluggable ``ShardScheduler``
places each launch, per-shard machine cost is itemised on the history
(``TrialHistory.cost_by_shard``), and the BO tuner's constant-liar
fantasies lie with the target shard's probe cost.

This example tunes one workload three ways at the same trial budget —
single cluster (serial), a 4-shard heterogeneous fleet under round-robin
placement, and the same fleet under the cost-aware cheapest-eligible
scheduler — then prints the fleet's per-shard bill.

Run:  python examples/fleet_tuning.py
"""

from repro import MLConfigTuner, TuningBudget
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core.fleet import EnvironmentPool, EnvironmentShard, make_scheduler
from repro.core.session import executor_for
from repro.harness import metrics, render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload

NODES = 64
TRIALS = 40
# Four replicas of the target cluster: probe-duration multipliers model a
# baseline replica, two slower contended ones, and a faster spot machine.
SHARD_SPEEDS = (1.0, 1.25, 0.8, 1.5)


def build_pool(workload, cluster, seed, scheduler_name):
    shards = [
        EnvironmentShard(
            f"shard{i}",
            TrainingEnvironment(workload, cluster, seed=seed + i),
            capacity=1,
            cost_multiplier=multiplier,
        )
        for i, multiplier in enumerate(SHARD_SPEEDS)
    ]
    return EnvironmentPool(shards, scheduler=make_scheduler(scheduler_name))


def main() -> None:
    workload = get_workload("resnet50-imagenet")
    cluster = homogeneous(NODES)
    space = ml_config_space(NODES)
    budget = TuningBudget(max_trials=TRIALS)
    seed = 0

    print(f"Tuning {workload.name} on {NODES} nodes, budget {TRIALS} trials")

    single = MLConfigTuner(seed=seed).run(
        TrainingEnvironment(workload, cluster, seed=seed), space, budget, seed=seed
    )
    results = {"single cluster": single}
    for scheduler_name in ("roundrobin", "cheapest"):
        pool = build_pool(workload, cluster, seed, scheduler_name)
        results[f"4-shard fleet [{scheduler_name}]"] = MLConfigTuner(seed=seed).run(
            None,
            space,
            budget,
            seed=seed,
            executor=executor_for(len(SHARD_SPEEDS), "async", pool=pool),
        )

    rows = []
    for label, result in results.items():
        _, single_reach, reach = metrics.matched_quality_reach(single, result)
        rows.append(
            [
                label,
                result.best_objective,
                result.total_cost_s / 3600.0,
                result.total_wall_clock_s / 3600.0,
                single_reach / reach if reach and single_reach else None,
            ]
        )
    print()
    print(render_table(
        ["execution", "best (samples/s)", "machine hours",
         "wall-clock hours", "matched-quality speedup"],
        rows,
    ))

    fleet = results["4-shard fleet [cheapest]"]
    print("\nPer-shard bill of the cheapest-eligible fleet run:")
    cost_by_shard = fleet.history.cost_by_shard()
    timelines = fleet.history.wall_clock_by_shard()
    shard_rows = []
    for i, multiplier in enumerate(SHARD_SPEEDS):
        name = f"shard{i}"
        probes = sum(1 for t in fleet.history if t.shard == name)
        shard_rows.append(
            [
                name,
                f"x{multiplier:g}",
                probes,
                cost_by_shard.get(name, 0.0) / 3600.0,
                timelines.get(name, 0.0) / 3600.0,
            ]
        )
    print(render_table(
        ["shard", "probe speed", "probes", "machine hours", "timeline hours"],
        shard_rows,
    ))
    total = sum(cost_by_shard.values())
    print(
        f"\nItemised shard costs sum to {total / 3600:.2f} machine-hours — "
        f"exactly the session total ({fleet.total_cost_s / 3600:.2f}); the "
        f"cost-aware scheduler routed probes to the fastest free shard, and "
        f"the fleet reached the single cluster's matched quality in a "
        f"fraction of its wall-clock."
    )


if __name__ == "__main__":
    main()
