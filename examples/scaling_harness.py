"""Scaling the experiment harness: parallel cells, parallel fits, disk cache.

Three independent knobs make repeated evaluation sweeps scale with the
hardware instead of with patience — none of them changes any result:

1. ``compare_strategies(n_jobs=...)`` fans the independent
   (strategy × repeat) tuning sessions of a comparison across worker
   processes (:mod:`repro.harness.runner`).  ``n_jobs=None`` uses one
   process per CPU; results are identical to serial.

2. ``MLConfigTuner(fit_workers=K)`` (CLI: ``--fit-workers K``) fans each
   GP hyperparameter refit's multi-start L-BFGS-B restarts across ``K``
   processes.  The same starts run either way and the best-of reduction
   is order-independent, so the fitted hyperparameters are bit-identical
   to serial.

3. The experiment memoiser keeps a persistent JSON tier on disk (default
   ``.repro_cache/`` under the working directory, relocatable via the
   ``REPRO_CACHE_DIR`` environment variable): a table cell an ``exp_*``
   function computed in *any* earlier run is loaded instead of recomputed.
   ``clear_experiment_cache()`` wipes both tiers.

Run with::

    PYTHONPATH=src python examples/scaling_harness.py
"""

import os
import time

from repro.baselines import RandomSearch, SimulatedAnnealing
from repro.cluster import homogeneous
from repro.core import MLConfigTuner, TuningBudget
from repro.harness import compare_strategies
from repro.harness.experiments import (
    clear_experiment_cache,
    experiment_cache_dir,
    exp_f5_scalability,
)
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("resnet50-imagenet")
    cluster = homogeneous(16)
    budget = TuningBudget(max_trials=16)
    strategies = {
        "mlconfig-bo": lambda seed: MLConfigTuner(seed=seed, fit_workers=2),
        "random": lambda seed: RandomSearch(),
        "annealing": lambda seed: SimulatedAnnealing(seed=seed),
    }

    # -- 1 + 2: cell-parallel comparison, process-parallel GP refits ------
    for n_jobs in (1, None):  # None = one worker process per CPU
        start = time.perf_counter()
        comparison = compare_strategies(
            strategies, workload, cluster, budget, repeats=2, seed=0, n_jobs=n_jobs
        )
        elapsed = time.perf_counter() - start
        label = "serial" if n_jobs == 1 else f"n_jobs={os.cpu_count()}"
        print(f"[{label:>9}] sweep took {elapsed:5.1f} s wall-clock")
        for name in comparison.ranking():
            outcome = comparison.outcomes[name]
            print(
                f"            {name:>12}: {outcome.mean_normalized_best:.3f} "
                f"of optimum"
            )

    # -- 3: the persistent experiment cache ------------------------------
    clear_experiment_cache()
    start = time.perf_counter()
    exp_f5_scalability(node_counts=(8,), budget_trials=8)
    cold = time.perf_counter() - start

    # A fresh process starts with an empty in-memory tier; the disk tier
    # (one JSON file per cell under experiment_cache_dir()) still answers.
    import repro.harness.experiments as experiments

    experiments._memo.clear()
    start = time.perf_counter()
    table = exp_f5_scalability(node_counts=(8,), budget_trials=8)
    warm = time.perf_counter() - start
    print(table.render())
    print(
        f"cache at {experiment_cache_dir()}: cold {cold:.2f} s, "
        f"warm {warm * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
