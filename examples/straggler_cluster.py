#!/usr/bin/env python3
"""Tuning for time-to-accuracy on a straggler-ridden cluster.

A quarter of the nodes run at 40% speed (co-located tenants, thermal
throttling).  Tuning for raw throughput would pick fully asynchronous
training; tuning for *time-to-accuracy* has to balance hardware efficiency
against the statistical cost of stale gradients — the sync-mode crossover
of figure F6, seen from the tuner's point of view.

Run:  python examples/straggler_cluster.py
"""

from repro import MLConfigTuner, TuningBudget
from repro.baselines import default_strategy
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.harness import render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def tune_on(cluster, label, workload, nodes):
    space = ml_config_space(nodes)
    env = TrainingEnvironment(
        workload, cluster, seed=0, objective_name="tta"
    )
    result = MLConfigTuner(seed=0).run(
        env, space, TuningBudget(max_trials=30), seed=0
    )
    default = default_strategy().run(
        TrainingEnvironment(workload, cluster, seed=0, objective_name="tta"),
        space,
        TuningBudget(max_trials=1),
    )
    tuned_tta = -result.best_objective / 3600
    default_tta = -default.best_objective / 3600
    return {
        "label": label,
        "tuned_tta_h": tuned_tta,
        "default_tta_h": default_tta,
        "speedup": default_tta / tuned_tta,
        "sync_mode": result.best_config["sync_mode"],
        "architecture": result.best_config["architecture"],
    }


def main() -> None:
    nodes = 16
    workload = get_workload("mlp-criteo")
    print(f"Tuning {workload.name} for time-to-accuracy on {nodes} nodes\n")

    clean = homogeneous(nodes)
    straggly = homogeneous(
        nodes, straggler_fraction=0.25, straggler_slowdown=0.4
    )

    rows = []
    for cluster, label in ((clean, "clean cluster"), (straggly, "25% nodes at 0.4x")):
        outcome = tune_on(cluster, label, workload, nodes)
        rows.append(
            [
                outcome["label"],
                outcome["default_tta_h"],
                outcome["tuned_tta_h"],
                outcome["speedup"],
                outcome["architecture"],
                outcome["sync_mode"],
            ]
        )

    print(render_table(
        [
            "cluster",
            "default TTA (h)",
            "tuned TTA (h)",
            "speedup",
            "tuned arch",
            "tuned sync",
        ],
        rows,
    ))
    print(
        "\nOn the straggler cluster the tuner moves away from fully "
        "synchronous training; on the clean cluster synchrony is free."
    )


if __name__ == "__main__":
    main()
