#!/usr/bin/env python3
"""Tuning with the extension knobs on a realistic (oversubscribed) cluster.

Enables everything the basic experiments keep fixed:

- a two-tier topology with 4:1 uplink oversubscription (cross-rack traffic
  is expensive, so PS placement matters more);
- GPU nodes whose input pipeline can starve (io_threads / prefetch knobs);
- top-k gradient compression (throughput vs statistical-efficiency
  trade-off, tuned for time-to-accuracy).

The 12-knob space is harder than the standard 9-knob one; compare how much
of the default-config gap the tuner closes per probe.

Run:  python examples/extended_space.py
"""

from repro import MLConfigTuner, TuningBudget
from repro.baselines import default_strategy
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.harness import render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    workload = get_workload("transformer-wiki")
    cluster = homogeneous(
        nodes,
        "gpu-v100",
        rack_size=4,
        oversubscription=4.0,
    )
    space = ml_config_space(
        nodes,
        include_compression=True,
        include_pipeline=True,
    )
    print(
        f"Tuning {workload.name} on {nodes}x gpu-v100 "
        f"(racks of 4, 4:1 oversubscribed), {len(space)} knobs, "
        f"{space.cardinality():.2e} combinations\n"
    )

    env = TrainingEnvironment(
        workload, cluster, seed=0, objective_name="tta", fidelity="event",
        probe_iterations=12,
    )
    tuner = MLConfigTuner(seed=0)
    result = tuner.run(env, space, TuningBudget(max_trials=25), seed=0)

    default = default_strategy().run(
        TrainingEnvironment(workload, cluster, seed=0, objective_name="tta",
                            fidelity="event", probe_iterations=12),
        space,
        TuningBudget(max_trials=1),
    )

    tuned_tta = -result.best_objective / 3600
    default_tta = -default.best_objective / 3600
    print(render_table(
        ["configuration", "TTA (hours)", "speedup"],
        [
            ["default", default_tta, 1.0],
            ["tuned (25 event-fidelity probes)", tuned_tta, default_tta / tuned_tta],
        ],
    ))
    print("\nTuned configuration:")
    for knob, value in sorted(result.best_config.items()):
        print(f"  {knob:>20} = {value}")
    print(f"\nProbing cost: {result.total_cost_s / 3600:.2f} simulated machine-hours; "
          f"{tuner.probes_terminated_early} probes terminated early.")


if __name__ == "__main__":
    main()
