"""Surrogate tiers: staying interactive when the trial history gets long.

Every proposal of the BO tuner refits or extends a Gaussian-process
surrogate over the whole history, and the *exact* GP costs O(n^3) to
factor and O(n^2) per appended trial — fine for one CherryPick-style
search (tens of trials), hopeless for a long-lived tuning service whose
history keeps growing across workloads and reruns.

The proposer therefore keeps two surrogate tiers behind one interface
(:class:`repro.core.gp.SurrogateFactory`):

- **exact** (:class:`repro.core.gp.GaussianProcess`) below the
  threshold — bit-identical to a tuner with the sparse tier disabled, so
  short sessions are completely unaffected;
- **sparse** (:class:`repro.core.gp.SparseGaussianProcess`) once the
  history reaches ``sparse_threshold`` trials — an inducing-point
  (projected-process) approximation over at most ``max_inducing``
  k-center-selected anchor trials, with O(m^2) appends and proposal
  latency that stays flat no matter how long the history grows.

The switchover happens automatically mid-session the moment the history
crosses the threshold; per-seed determinism is preserved.  Both knobs are
constructor arguments on :class:`repro.core.MLConfigTuner` /
:class:`repro.baselines.CherryPick` and CLI flags
(``--sparse-threshold`` / ``--max-inducing``; ``--sparse-threshold 0``
pins the exact tier).

This example measures proposal latency on both tiers as one history
grows through the switchover, then shows the knobs on the tuner.

Run with::

    PYTHONPATH=src python examples/large_history.py
"""

import time

import numpy as np

from repro.configspace import ml_config_space
from repro.core import MLConfigTuner, TrialHistory
from repro.core.bo import BayesianProposer
from repro.core.gp import SparseGaussianProcess
from repro.mlsim import Measurement, TrainingConfig


def record_fake_probe(history, config, rng):
    history.record(
        config,
        Measurement(
            config=TrainingConfig(),
            ok=True,
            fidelity="analytic",
            objective=float(rng.random() * 100.0),
            probe_cost_s=float(30.0 + rng.random() * 90.0),
        ),
    )


def time_one_propose(proposer, history, rng):
    start = time.perf_counter()
    config = proposer.propose(history, rng)
    return config, (time.perf_counter() - start) * 1e3


def main() -> None:
    space = ml_config_space(16)
    rng = np.random.default_rng(0)

    # Low threshold so the demo crosses it quickly; the shipped default
    # (512) only matters for genuinely long sessions.
    threshold = 128
    tiers = {
        "exact-only": BayesianProposer(space, sparse_threshold=None, seed=0),
        "auto-tier": BayesianProposer(
            space, sparse_threshold=threshold, max_inducing=64, seed=0
        ),
    }

    history = TrialHistory()
    grow = np.random.default_rng(1)
    print(f"proposal latency while the history grows (threshold={threshold}):\n")
    print(f"{'trials':>7}  {'exact-only':>11}  {'auto-tier':>10}  tier")
    for checkpoint in (32, 64, 128, 256, 512):
        while len(history) < checkpoint:
            record_fake_probe(history, space.sample(grow), grow)
        row = {}
        for name, proposer in tiers.items():
            _, row[name] = time_one_propose(proposer, history, rng)
        tier = (
            "sparse"
            if isinstance(
                tiers["auto-tier"]._objective_cache.gp, SparseGaussianProcess
            )
            else "exact"
        )
        print(
            f"{len(history):>7}  {row['exact-only']:>9.1f} ms  "
            f"{row['auto-tier']:>8.1f} ms  {tier}"
        )

    print(
        "\nPast the threshold the auto-tier proposer runs on "
        f"{tiers['auto-tier']._objective_cache.gp.num_inducing} inducing "
        "trials regardless of history length, so its latency stays flat\n"
        "while the exact tier keeps growing with n."
    )

    # The same knobs on the tuner facade (and as --sparse-threshold /
    # --max-inducing on the CLI):
    tuner = MLConfigTuner(seed=0, sparse_threshold=512, max_inducing=256)
    print(
        f"\nMLConfigTuner(sparse_threshold={tuner.sparse_threshold}, "
        f"max_inducing={tuner.max_inducing}) — defaults; pass "
        "sparse_threshold=None to pin the exact tier."
    )


if __name__ == "__main__":
    main()
