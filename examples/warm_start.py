#!/usr/bin/env python3
"""Warm-starting a tuning session from previously tuned workloads.

Builds a repository of past tuning observations (VGG-16 and word2vec
sessions), then tunes a new workload (LSTM) with OtterTune-style workload
mapping versus cold-start CherryPick.  The warm-started tuner should reach
a good configuration in fewer probes — the data behind ablation A3.

Run:  python examples/warm_start.py
"""

from repro.baselines import CherryPick, OtterTuneStyle, RandomSearch, WorkloadRepository
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import TuningBudget
from repro.harness import estimate_optimum, metrics, render_series
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    cluster = homogeneous(nodes)
    space = ml_config_space(nodes)

    print("Building repository from prior tuning sessions...")
    repository = WorkloadRepository()
    for prior in ("vgg16-imagenet", "word2vec-wiki"):
        env = TrainingEnvironment(get_workload(prior), cluster, seed=0)
        session = RandomSearch().run(
            env, space, TuningBudget(max_trials=25), seed=0
        )
        repository.add_session(
            prior, [(t.config, t.objective) for t in session.history.successful()]
        )
        print(f"  stored {len(session.history.successful())} observations from {prior}")

    target = get_workload("lstm-ptb")
    opt_env = TrainingEnvironment(target, cluster, seed=0)
    _, optimum = estimate_optimum(opt_env, space, seed=0)
    print(f"\nTarget: {target.name} (true optimum {optimum:.1f} samples/s)\n")

    budget = TuningBudget(max_trials=20)
    curves = {}
    for name, strategy in (
        ("cold-start", CherryPick(seed=0)),
        ("warm-start", OtterTuneStyle(repository=repository, seed=0)),
    ):
        env = TrainingEnvironment(target, cluster, seed=0)
        result = strategy.run(env, space, budget, seed=0)
        curves[name] = metrics.normalized_best_so_far(result, optimum)
        mapped = getattr(strategy, "mapped_workload", None)
        if mapped:
            print(f"{name}: mapped target onto prior workload {mapped!r}")

    checkpoints = [2, 5, 8, 11, 14, 17, 20]
    series = {
        name: [curve[min(c, len(curve)) - 1] for c in checkpoints]
        for name, curve in curves.items()
    }
    print()
    print(render_series(
        "trial", checkpoints, series,
        title="Normalized best-so-far: cold vs warm start",
    ))


if __name__ == "__main__":
    main()
