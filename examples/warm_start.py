#!/usr/bin/env python3
"""Warm-starting a tuning session from previously tuned workloads.

Records prior tuning sessions (VGG-16 and word2vec) into a persistent
:class:`~repro.core.transfer.HistoryRepository` — the same on-disk store
the multi-tenant :class:`~repro.core.service.TuningService` maintains —
then tunes a new workload (LSTM) three ways:

- cold-start CherryPick (no prior knowledge);
- OtterTune-style landmark mapping over the same repository (ablation A3);
- repository-backed prior-mean transfer: the new workload's fingerprint is
  matched to the nearest stored workload, a
  :class:`~repro.core.transfer.TransferPrior` is fitted to its
  observations, and the BO tuner's surrogate starts from that prior
  instead of from flat (:class:`~repro.core.gp.PriorMeanGP`).

Run:  python examples/warm_start.py
"""

import os
import tempfile

from repro.baselines import CherryPick, OtterTuneStyle, RandomSearch
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core import MLConfigTuner, TuningBudget
from repro.core.transfer import HistoryRepository, build_prior, workload_fingerprint
from repro.harness import estimate_optimum, metrics, render_series
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    cluster = homogeneous(nodes)
    space = ml_config_space(nodes)

    path = os.path.join(tempfile.mkdtemp(prefix="repro-warmstart-"), "history.jsonl")
    print(f"Recording prior tuning sessions into {path} ...")
    repository = HistoryRepository(path)
    for prior_name in ("vgg16-imagenet", "word2vec-wiki"):
        workload = get_workload(prior_name)
        env = TrainingEnvironment(workload, cluster, seed=0)
        session = RandomSearch().run(env, space, TuningBudget(max_trials=25), seed=0)
        repository.add_session(
            prior_name,
            [(t.config, t.objective) for t in session.history.successful()],
            fingerprint=workload_fingerprint(workload),
        )
        print(f"  stored {len(session.history.successful())} observations "
              f"from {prior_name}")

    target = get_workload("lstm-ptb")
    opt_env = TrainingEnvironment(target, cluster, seed=0)
    _, optimum = estimate_optimum(opt_env, space, seed=0)
    print(f"\nTarget: {target.name} (true optimum {optimum:.1f} samples/s)")

    # The service's warm-start path: fingerprint -> nearest -> prior mean.
    source = repository.nearest(workload_fingerprint(target))
    prior = build_prior(repository, source, space, seed=0)
    print(f"Nearest stored workload by fingerprint: {source!r} "
          f"({prior.num_observations} prior observations)\n")

    budget = TuningBudget(max_trials=20)
    arms = (
        ("cold-start", CherryPick(seed=0)),
        (
            "landmark-map",
            OtterTuneStyle(repository=repository.to_workload_repository(), seed=0),
        ),
        ("repo-prior", MLConfigTuner(n_initial=4, prior_mean=prior, seed=0)),
    )
    curves = {}
    for name, strategy in arms:
        env = TrainingEnvironment(target, cluster, seed=0)
        result = strategy.run(env, space, budget, seed=0)
        curves[name] = metrics.normalized_best_so_far(result, optimum)
        mapped = getattr(strategy, "mapped_workload", None)
        if mapped:
            print(f"{name}: mapped target onto prior workload {mapped!r}")

    checkpoints = [2, 5, 8, 11, 14, 17, 20]
    series = {
        name: [curve[min(c, len(curve)) - 1] for c in checkpoints]
        for name, curve in curves.items()
    }
    print()
    print(render_series(
        "trial", checkpoints, series,
        title="Normalized best-so-far: cold vs warm start",
    ))


if __name__ == "__main__":
    main()
