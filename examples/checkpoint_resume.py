#!/usr/bin/env python3
"""Crash-safe tuning: checkpoint a session, kill it mid-run, resume exactly.

Runs the BO tuner with a crash-consistent checkpoint (fsynced write-ahead
log + atomic snapshot), simulates a process crash partway through, then
resumes from the checkpoint with freshly-built components — and shows the
resumed result is bit-identical to an uninterrupted run of the same seed.

Run:  python examples/checkpoint_resume.py

CLI equivalent:

    python -m repro tune --trials 20 --checkpoint /tmp/tune.ckpt
    # ... process dies ...
    python -m repro tune --trials 20 --checkpoint /tmp/tune.ckpt --resume
"""

import tempfile
import os

from repro import (
    CheckpointConfig,
    MLConfigTuner,
    TrainingEnvironment,
    TuningBudget,
    TuningSession,
)
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.harness import result_fingerprint
from repro.harness.chaos import ChaosKill, KillSwitch
from repro.workloads import get_workload


def main() -> None:
    nodes = 8
    workload = get_workload("resnet50-imagenet")
    space = ml_config_space(nodes)
    budget = TuningBudget(max_trials=20)

    def env():
        return TrainingEnvironment(workload, homogeneous(nodes), seed=0)

    # The uninterrupted run every crash cycle is compared against.
    baseline = TuningSession(MLConfigTuner(n_initial=4)).run(
        env(), space, budget, seed=3
    )
    print(f"baseline: {len(baseline.history)} trials, "
          f"best objective {baseline.best_objective:.4f}")

    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = CheckpointConfig(
            os.path.join(scratch, "tune.ckpt"), every_n_trials=1
        )

        # Same session, checkpointed — and killed after trial 11 records.
        session = TuningSession(
            MLConfigTuner(n_initial=4), callbacks=[KillSwitch(kill_at=11)]
        )
        try:
            session.run(env(), space, budget, seed=3, checkpoint=checkpoint)
        except ChaosKill:
            print("crashed the session at trial 11 "
                  f"(WAL: {os.path.getsize(checkpoint.wal_path)} bytes)")

        # A restarted process has nothing but the checkpoint: fresh
        # strategy, fresh environment.  Replay rebuilds all of it.
        resumed = TuningSession(MLConfigTuner(n_initial=4)).resume(
            checkpoint, env(), space
        )
        print(f"resumed:  {len(resumed.history)} trials, "
              f"best objective {resumed.best_objective:.4f}")

    identical = result_fingerprint(resumed) == result_fingerprint(baseline)
    print(f"bit-identical to the uninterrupted run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
