#!/usr/bin/env python3
"""Tuning-as-a-service: two tenants sharing one heterogeneous fleet.

Runs the multi-tenant :class:`~repro.core.service.TuningService` twice
over a 4-shard fleet with mixed probe speeds:

1. a *cold* generation — two tenants (ResNet-50 and VGG-16) tune
   concurrently against an empty history repository, and their finished
   sessions are recorded into it;
2. a *warm* generation — two new tenants for the same workloads arrive,
   are fingerprint-matched to the recorded sessions, and start their
   surrogates from transfer priors instead of from flat.

The printout compares the two generations: trials and simulated wall
clock per tenant, plus service-level sessions/hour — the headline metric
``benchmarks/bench_p7_service.py`` gates in CI.

Run:  python examples/tuning_service.py
"""

import os
import tempfile

from repro.configspace import ml_config_space
from repro.core import MLConfigTuner, TuningBudget
from repro.core.service import TenantSpec, TuningService, training_shard_templates
from repro.core.transfer import HistoryRepository
from repro.workloads import get_workload

NODES = 16
FLEET_MULTIPLIERS = (1.0, 1.25, 0.8, 1.5)  # mixed probe speeds, 1 slot each


def make_service(repository):
    return TuningService(
        training_shard_templates(nodes=NODES, cost_multipliers=FLEET_MULTIPLIERS),
        ml_config_space(NODES),
        repository=repository,
    )


def submit_tenants(service, generation, seed0):
    handles = []
    for index, name in enumerate(("resnet50-imagenet", "vgg16-imagenet")):
        seed = seed0 + index
        handles.append(
            service.submit(
                TenantSpec(
                    name=f"{generation}-{name}",
                    strategy_factory=lambda seed=seed: MLConfigTuner(seed=seed),
                    budget=TuningBudget(max_trials=16),
                    seed=seed,
                    slots=2,
                    workload=get_workload(name),
                )
            )
        )
    return handles


def report(label, result):
    print(f"{label}:")
    for handle in result.tenants:
        start = (
            f"warm from {handle.mapped_from!r}" if handle.warm else "cold start"
        )
        print(f"  {handle.spec.name:>24} : "
              f"{handle.result.best_objective:7.1f} samples/s best, "
              f"{handle.result.num_trials} trials, "
              f"{handle.result.total_wall_clock_s / 3600:.2f} h wall ({start})")
    print(f"  {'service':>24} : {result.makespan_s / 3600:.2f} h makespan, "
          f"{result.sessions_per_hour():.2f} sessions/hour\n")


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="repro-service-"), "history.jsonl")
    print(f"History repository: {path}")
    print(f"Fleet: {len(FLEET_MULTIPLIERS)} shards, probe-duration multipliers "
          f"{FLEET_MULTIPLIERS}\n")

    cold_service = make_service(HistoryRepository(path))
    submit_tenants(cold_service, "cold", seed0=1)
    cold = cold_service.run()
    report("Generation 1 (empty repository)", cold)

    warm_service = make_service(HistoryRepository(path))
    submit_tenants(warm_service, "warm", seed0=11)
    warm = warm_service.run()
    report("Generation 2 (warm-started from generation 1)", warm)

    speedup = warm.sessions_per_hour() / cold.sessions_per_hour()
    print(f"Warm vs cold service throughput: {speedup:.2f}x sessions/hour")


if __name__ == "__main__":
    main()
