#!/usr/bin/env python3
"""Asynchronous tuning: no round barrier, workers refill the moment they free.

Probe durations in distributed-ML tuning are heterogeneous — a
misconfigured PS architecture can probe 5x slower than a good all-reduce
point — so a synchronous round barrier (``ParallelExecutor``) parks K-1
workers behind each round's straggler.  The ``AsyncExecutor`` removes the
barrier: each worker pulls a fresh proposal (constant-liar conditioned on
the probes still in flight) the moment its own probe completes.

This example runs the BO tuner three ways at one trial budget — serial,
4-way synchronous, 4-way asynchronous — and compares the two cost axes the
session layer accounts: machine cost (identical per probe in every mode)
and wall-clock (what the person waiting for a configuration experiences).

Run:  python examples/async_tuning.py
"""

from repro import MLConfigTuner, TuningBudget
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core.session import AsyncExecutor, ParallelExecutor, SerialExecutor
from repro.harness import render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    workers = 4
    workload = get_workload("resnet50-imagenet")
    cluster = homogeneous(nodes)
    space = ml_config_space(nodes)
    budget = TuningBudget(max_trials=36)

    print(f"Tuning {workload.name} on {nodes} nodes, budget {budget.max_trials} trials")

    executors = {
        "serial": SerialExecutor(),
        f"{workers}-way sync": ParallelExecutor(workers),
        f"{workers}-way async": AsyncExecutor(workers),
    }
    results = {}
    for label, executor in executors.items():
        results[label] = MLConfigTuner(seed=0).run(
            TrainingEnvironment(workload, cluster, seed=0),
            space,
            budget,
            seed=0,
            executor=executor,
        )

    serial_wall = results["serial"].total_wall_clock_s
    rows = []
    for label, result in results.items():
        wall_s = result.total_wall_clock_s
        rows.append(
            [
                label,
                result.best_objective,
                result.total_cost_s / 3600.0,
                wall_s / 3600.0,
                serial_wall / wall_s,
                result.total_cost_s / (executors[label].workers * wall_s),
            ]
        )
    print()
    print(render_table(
        ["execution", "best (samples/s)", "machine hours",
         "wall-clock hours", "wall speedup", "worker utilisation"],
        rows,
    ))

    sync = results[f"{workers}-way sync"]
    asyn = results[f"{workers}-way async"]
    print(
        f"\nRemoving the round barrier cut the {workers}-worker session from "
        f"{sync.total_wall_clock_s / 3600:.2f} to "
        f"{asyn.total_wall_clock_s / 3600:.2f} wall-clock hours at the same "
        f"trial budget, and lifted worker utilisation from "
        f"{sync.total_cost_s / (workers * sync.total_wall_clock_s):.0%} to "
        f"{asyn.total_cost_s / (workers * asyn.total_wall_clock_s):.0%} — "
        f"time the barrier spent parked behind each round's slowest probe."
    )


if __name__ == "__main__":
    main()
