#!/usr/bin/env python3
"""Parallel tuning: probe K configurations per round on a simulated cluster.

Runs the BO tuner over the same trial budget serially and with a
``ParallelExecutor(workers=4)``, then compares the two cost axes the
session layer accounts: *machine cost* (every probe second, the cluster
bill) and *wall-clock* (only the slowest probe of each synchronous round —
what the person waiting for a configuration experiences).  A progress line
is logged per round, and every trial is streamed to a JSONL file.

Run:  python examples/parallel_tuning.py
"""

import os
import tempfile

from repro import MLConfigTuner, TuningBudget
from repro.cluster import homogeneous
from repro.configspace import ml_config_space
from repro.core.session import JsonlTrialLog, ParallelExecutor, ProgressLogger
from repro.harness import render_table
from repro.mlsim import TrainingEnvironment
from repro.workloads import get_workload


def main() -> None:
    nodes = 16
    workers = 4
    workload = get_workload("resnet50-imagenet")
    cluster = homogeneous(nodes)
    space = ml_config_space(nodes)
    budget = TuningBudget(max_trials=36)
    trial_log = os.path.join(tempfile.gettempdir(), "parallel_tuning_trials.jsonl")

    print(f"Tuning {workload.name} on {nodes} nodes, budget {budget.max_trials} trials")

    serial = MLConfigTuner(seed=0).run(
        TrainingEnvironment(workload, cluster, seed=0), space, budget, seed=0
    )

    print(f"\nNow probing {workers} configurations per round "
          f"(constant-liar batches, trial log -> {trial_log}):")
    parallel = MLConfigTuner(seed=0).run(
        TrainingEnvironment(workload, cluster, seed=0),
        space,
        budget,
        seed=0,
        executor=ParallelExecutor(workers),
        callbacks=[ProgressLogger(), JsonlTrialLog(trial_log)],
    )

    rows = []
    for label, result in (("serial", serial), (f"{workers}-way parallel", parallel)):
        rows.append(
            [
                label,
                result.best_objective,
                result.history.num_rounds,
                result.total_cost_s / 3600.0,
                result.total_wall_clock_s / 3600.0,
                serial.total_wall_clock_s / result.total_wall_clock_s,
            ]
        )
    print()
    print(render_table(
        ["execution", "best (samples/s)", "rounds", "machine hours",
         "wall-clock hours", "wall speedup"],
        rows,
    ))

    reach = parallel.history.wall_clock_to_reach(serial.best_objective)
    if reach is not None:
        print(f"\nThe parallel session matched the serial incumbent "
              f"({serial.best_objective:.1f} samples/s) after "
              f"{reach / 3600:.2f} wall-clock hours — "
              f"{serial.total_wall_clock_s / reach:.1f}x faster than the "
              f"serial session's {serial.total_wall_clock_s / 3600:.2f} hours.")


if __name__ == "__main__":
    main()
