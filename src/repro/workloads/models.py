"""Model specifications for the workload zoo.

A :class:`ModelSpec` describes a training job the way the simulator needs
it: arithmetic cost per sample, parameter/gradient volume, and a convergence
profile.  The numbers are taken from public architecture arithmetic for the
models the 2018-2019 distributed-training literature evaluates on, so the
*ratios* between workloads (compute-bound CNNs vs communication-bound
embedding models) are faithful even though the simulator's absolute clock is
synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConvergenceProfile:
    """Statistical-efficiency description of a training job.

    The simulator converts (batch size, staleness) into the number of
    training iterations required to hit the target metric using the standard
    empirical model (Goyal et al. linear-scaling regime with a critical
    batch size, plus a staleness penalty for asynchronous execution):

    ``iters(B, s) = base_iters * (B_ref / B) * (1 + B / B_crit) / (1 + B_ref / B_crit)
    * (1 + staleness_penalty * s)``

    Below the critical batch size, doubling the batch roughly halves the
    iterations (linear scaling); beyond it, returns diminish, so *samples*
    to convergence grow — the trade-off that makes batch size a genuine
    tuning knob rather than "always max it out".
    """

    base_iters: float
    ref_batch: int
    critical_batch: int
    staleness_penalty: float = 0.08
    compression_sensitivity: float = 0.5

    def __post_init__(self) -> None:
        if self.base_iters <= 0 or self.ref_batch <= 0 or self.critical_batch <= 0:
            raise ValueError("convergence profile values must be positive")
        if self.staleness_penalty < 0:
            raise ValueError("staleness_penalty must be non-negative")
        if self.compression_sensitivity < 0:
            raise ValueError("compression_sensitivity must be non-negative")

    def iterations_to_target(
        self,
        global_batch: int,
        mean_staleness: float = 0.0,
        compression_ratio: float = 1.0,
    ) -> float:
        """Iterations needed to reach the target metric.

        ``mean_staleness`` is the average gradient staleness in updates
        (0 for BSP; grows with worker count under ASP).
        ``compression_ratio`` is the fraction of gradient bytes actually
        transmitted (top-k sparsification with error feedback); values
        below 1 slow convergence with the standard logarithmic penalty —
        mild at 10%, steep below 1%.
        """
        if global_batch <= 0:
            raise ValueError("global_batch must be positive")
        if mean_staleness < 0:
            raise ValueError("mean_staleness must be non-negative")
        if not 0.0 < compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        import math

        scale = self.ref_batch / global_batch
        saturation = (1.0 + global_batch / self.critical_batch) / (
            1.0 + self.ref_batch / self.critical_batch
        )
        staleness = 1.0 + self.staleness_penalty * mean_staleness
        compression = 1.0 + self.compression_sensitivity * math.log(
            1.0 / compression_ratio
        ) if compression_ratio < 1.0 else 1.0
        return self.base_iters * scale * saturation * staleness * compression

    def samples_to_target(
        self,
        global_batch: int,
        mean_staleness: float = 0.0,
        compression_ratio: float = 1.0,
    ) -> float:
        """Total samples processed before hitting the target metric."""
        return (
            self.iterations_to_target(global_batch, mean_staleness, compression_ratio)
            * global_batch
        )


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a trainable model.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"resnet50"``.
    family:
        Task family: ``"vision"``, ``"language"``, ``"recsys"``, ``"linear"``.
    flops_per_sample:
        Forward+backward FLOPs for one training sample.
    param_bytes:
        Size of the parameter vector (= gradient push/pull volume per
        replica per iteration, before any compression).
    activation_bytes_per_sample:
        Activation memory per sample; bounds the per-worker batch size.
    convergence:
        The statistical-efficiency profile.
    min_batch_per_worker:
        Smallest per-worker batch that keeps devices busy.
    """

    name: str
    family: str
    flops_per_sample: float
    param_bytes: float
    activation_bytes_per_sample: float
    convergence: ConvergenceProfile
    min_batch_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.flops_per_sample <= 0:
            raise ValueError(f"{self.name}: flops_per_sample must be positive")
        if self.param_bytes <= 0:
            raise ValueError(f"{self.name}: param_bytes must be positive")
        if self.activation_bytes_per_sample < 0:
            raise ValueError(f"{self.name}: activation bytes must be non-negative")

    @property
    def compute_comm_ratio(self) -> float:
        """FLOPs per byte communicated — higher means compute-bound.

        The single most important workload characteristic: it determines
        whether adding workers helps (compute-bound) or drowns the
        parameter servers (communication-bound).
        """
        return self.flops_per_sample / self.param_bytes


# --- Model zoo -----------------------------------------------------------
# FLOP counts: forward pass estimates from the literature, times 3 for
# forward+backward.  Parameter bytes assume float32.

RESNET50 = ModelSpec(
    name="resnet50",
    family="vision",
    flops_per_sample=3 * 4.1e9,
    param_bytes=25.6e6 * 4,
    activation_bytes_per_sample=95e6,
    convergence=ConvergenceProfile(base_iters=450_000, ref_batch=256, critical_batch=8192),
    min_batch_per_worker=4,
)

VGG16 = ModelSpec(
    name="vgg16",
    family="vision",
    flops_per_sample=3 * 15.5e9,
    param_bytes=138e6 * 4,  # huge FC layers: famously communication-heavy
    activation_bytes_per_sample=110e6,
    convergence=ConvergenceProfile(base_iters=370_000, ref_batch=256, critical_batch=4096),
    min_batch_per_worker=4,
)

INCEPTION_V3 = ModelSpec(
    name="inception-v3",
    family="vision",
    flops_per_sample=3 * 5.7e9,
    param_bytes=23.8e6 * 4,
    activation_bytes_per_sample=89e6,
    convergence=ConvergenceProfile(base_iters=500_000, ref_batch=256, critical_batch=8192),
    min_batch_per_worker=4,
)

LSTM_PTB = ModelSpec(
    name="lstm-ptb",
    family="language",
    flops_per_sample=3 * 0.6e9,  # per sequence (35 unrolled steps)
    param_bytes=66e6 * 4,  # large embedding + softmax: communication-bound
    activation_bytes_per_sample=18e6,
    convergence=ConvergenceProfile(base_iters=120_000, ref_batch=64, critical_batch=1024),
    min_batch_per_worker=2,
)

MLP_CRITEO = ModelSpec(
    name="mlp-criteo",
    family="recsys",
    flops_per_sample=3 * 0.02e9,
    param_bytes=30e6 * 4,
    activation_bytes_per_sample=0.2e6,
    convergence=ConvergenceProfile(base_iters=250_000, ref_batch=512, critical_batch=65536),
    min_batch_per_worker=32,
)

LOGREG_URL = ModelSpec(
    name="logreg-url",
    family="linear",
    flops_per_sample=3 * 0.002e9,
    param_bytes=9.2e6 * 4,
    activation_bytes_per_sample=0.02e6,
    convergence=ConvergenceProfile(base_iters=80_000, ref_batch=1024, critical_batch=262144),
    min_batch_per_worker=64,
)

WORD2VEC = ModelSpec(
    name="word2vec",
    family="language",
    flops_per_sample=3 * 0.001e9,
    param_bytes=120e6 * 4,  # giant embedding table, tiny compute
    activation_bytes_per_sample=0.01e6,
    convergence=ConvergenceProfile(base_iters=300_000, ref_batch=512, critical_batch=32768),
    min_batch_per_worker=64,
)

TRANSFORMER_BASE = ModelSpec(
    name="transformer-base",
    family="language",
    flops_per_sample=3 * 2.8e9,  # per sequence of 128 tokens
    param_bytes=110e6 * 4,
    activation_bytes_per_sample=60e6,
    convergence=ConvergenceProfile(
        base_iters=200_000, ref_batch=128, critical_batch=4096,
        staleness_penalty=0.12,  # attention models tolerate staleness poorly
    ),
    min_batch_per_worker=2,
)

MODEL_ZOO = {
    spec.name: spec
    for spec in (
        RESNET50,
        VGG16,
        INCEPTION_V3,
        LSTM_PTB,
        MLP_CRITEO,
        LOGREG_URL,
        WORD2VEC,
        TRANSFORMER_BASE,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a zoo model by name, with a helpful error."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; zoo has {sorted(MODEL_ZOO)}") from None
