"""Workloads: (model, dataset, objective) triples plus the standard suite.

A :class:`Workload` is the unit the tuner optimises for.  The standard suite
pairs each zoo model with its natural dataset, mirroring the mixed
vision/language/recsys/linear evaluation matrix used by the ICDCS-era
tuning papers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.workloads.datasets import (
    CRITEO_1TB_SAMPLE,
    IMAGENET,
    PTB,
    URL_REPUTATION,
    WIKI_CORPUS,
    DatasetSpec,
)
from repro.workloads.models import (
    INCEPTION_V3,
    LOGREG_URL,
    LSTM_PTB,
    MLP_CRITEO,
    RESNET50,
    TRANSFORMER_BASE,
    VGG16,
    WORD2VEC,
    ModelSpec,
)


@dataclass(frozen=True)
class Workload:
    """A tunable training job.

    ``target_metric`` documents what "converged" means for the job (top-1
    accuracy, perplexity, AUC); the simulator represents it through the
    model's convergence profile rather than a literal metric value.
    """

    name: str
    model: ModelSpec
    dataset: DatasetSpec
    target_metric: str

    @property
    def compute_comm_ratio(self) -> float:
        """FLOPs per communicated byte — the workload's tuning fingerprint."""
        return self.model.compute_comm_ratio

    def epochs_for_iterations(self, iterations: float, global_batch: int) -> float:
        """Convert an iteration count to dataset epochs."""
        return iterations * global_batch / self.dataset.num_samples


# The standard evaluation suite: one workload per task family, spanning
# three orders of magnitude in compute/communication ratio.
RESNET50_IMAGENET = Workload("resnet50-imagenet", RESNET50, IMAGENET, "top1=75.9%")
VGG16_IMAGENET = Workload("vgg16-imagenet", VGG16, IMAGENET, "top1=71.5%")
INCEPTION_IMAGENET = Workload("inception-imagenet", INCEPTION_V3, IMAGENET, "top1=78.0%")
LSTM_PTB_WL = Workload("lstm-ptb", LSTM_PTB, PTB, "perplexity=82")
MLP_CRITEO_WL = Workload("mlp-criteo", MLP_CRITEO, CRITEO_1TB_SAMPLE, "auc=0.80")
LOGREG_URL_WL = Workload("logreg-url", LOGREG_URL, URL_REPUTATION, "accuracy=98.5%")
WORD2VEC_WL = Workload("word2vec-wiki", WORD2VEC, WIKI_CORPUS, "analogy=0.72")
TRANSFORMER_WL = Workload(
    "transformer-wiki", TRANSFORMER_BASE, WIKI_CORPUS, "bleu=27.3"
)

SUITE: Dict[str, Workload] = {
    wl.name: wl
    for wl in (
        RESNET50_IMAGENET,
        VGG16_IMAGENET,
        INCEPTION_IMAGENET,
        LSTM_PTB_WL,
        MLP_CRITEO_WL,
        LOGREG_URL_WL,
        WORD2VEC_WL,
        TRANSFORMER_WL,
    )
}


def get_workload(name: str) -> Workload:
    """Look up a suite workload by name, with a helpful error."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; suite has {sorted(SUITE)}") from None


def iter_suite() -> Iterator[Workload]:
    """All suite workloads in a stable order."""
    for name in sorted(SUITE):
        yield SUITE[name]


def core_suite() -> List[Workload]:
    """The three-workload subset used by the heavier sweep experiments.

    Chosen to span the compute/communication spectrum: ResNet-50
    (compute-bound), LSTM-PTB (balanced), word2vec (communication-bound).
    """
    return [RESNET50_IMAGENET, LSTM_PTB_WL, WORD2VEC_WL]
