"""Dataset descriptors for the workload zoo.

Datasets matter to the simulator through three numbers: how many samples an
epoch contains (sets the relationship between iterations and epochs), how
large a serialised sample is (input pipeline bandwidth), and how skewed the
per-sample cost is (variance of compute times, which drives straggler-free
jitter).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a training dataset.

    ``sample_cost_cv`` is the coefficient of variation of per-sample compute
    cost (0 for fixed-shape vision batches; larger for variable-length
    sequence data).
    """

    name: str
    num_samples: int
    bytes_per_sample: float
    sample_cost_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError(f"{self.name}: num_samples must be positive")
        if self.bytes_per_sample <= 0:
            raise ValueError(f"{self.name}: bytes_per_sample must be positive")
        if self.sample_cost_cv < 0:
            raise ValueError(f"{self.name}: sample_cost_cv must be non-negative")

    def epoch_bytes(self) -> float:
        """Serialized size of one full pass over the data."""
        return self.num_samples * self.bytes_per_sample


IMAGENET = DatasetSpec(name="imagenet", num_samples=1_281_167, bytes_per_sample=110e3)
CIFAR10 = DatasetSpec(name="cifar10", num_samples=50_000, bytes_per_sample=3.1e3)
PTB = DatasetSpec(name="ptb", num_samples=930_000, bytes_per_sample=140.0, sample_cost_cv=0.25)
CRITEO_1TB_SAMPLE = DatasetSpec(
    name="criteo-sample", num_samples=45_000_000, bytes_per_sample=180.0
)
URL_REPUTATION = DatasetSpec(name="url-reputation", num_samples=2_396_130, bytes_per_sample=460.0)
WIKI_CORPUS = DatasetSpec(
    name="wiki-corpus", num_samples=24_000_000, bytes_per_sample=52.0, sample_cost_cv=0.35
)

DATASET_ZOO = {
    spec.name: spec
    for spec in (IMAGENET, CIFAR10, PTB, CRITEO_1TB_SAMPLE, URL_REPUTATION, WIKI_CORPUS)
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a zoo dataset by name, with a helpful error."""
    try:
        return DATASET_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; zoo has {sorted(DATASET_ZOO)}") from None
