"""The training-system configuration: the knobs the tuner searches over.

This is the configuration vector of a 2018-era distributed training job
(TensorFlow/MXNet parameter-server or Horovod-style all-reduce):

===================  =========================================================
knob                 effect
===================  =========================================================
architecture         ``"ps"`` (parameter server) or ``"allreduce"`` (ring)
num_workers          data-parallel replicas computing gradients
num_ps               parameter-server task count (PS architecture only)
colocate_ps          PS tasks share machines with workers vs dedicated nodes
sync_mode            ``"bsp"``, ``"asp"``, or ``"ssp"`` (bounded staleness)
staleness_bound      max iteration lag tolerated under SSP
batch_per_worker     per-replica minibatch size
intra_op_threads     cores used per worker for one op (0 = whole node)
gradient_precision   ``"fp32"`` or ``"fp16"`` gradient transport
===================  =========================================================

The class is deliberately a plain frozen dataclass: tuners manipulate
configurations through :mod:`repro.configspace`, which knows about types,
ranges, and encodings; the simulator consumes this typed view.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

ARCHITECTURES = ("ps", "allreduce")
SYNC_MODES = ("bsp", "asp", "ssp")
PRECISIONS = ("fp32", "fp16")

_PRECISION_FACTOR = {"fp32": 1.0, "fp16": 0.5}


@dataclass(frozen=True)
class TrainingConfig:
    """One point in the configuration space of a distributed training job."""

    architecture: str = "ps"
    num_workers: int = 4
    num_ps: int = 2
    colocate_ps: bool = False
    sync_mode: str = "bsp"
    staleness_bound: int = 4
    batch_per_worker: int = 32
    intra_op_threads: int = 0
    gradient_precision: str = "fp32"
    compression_ratio: float = 1.0  # fraction of gradient bytes sent (top-k)
    io_threads: int = 0  # cores dedicated to the input pipeline (0 = unmodelled)
    prefetch_batches: int = 2  # input prefetch depth (0 = serialise load+compute)

    def __post_init__(self) -> None:
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.io_threads < 0:
            raise ValueError("io_threads must be >= 0")
        if self.prefetch_batches < 0:
            raise ValueError("prefetch_batches must be >= 0")
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"architecture must be one of {ARCHITECTURES}, got {self.architecture!r}"
            )
        if self.sync_mode not in SYNC_MODES:
            raise ValueError(f"sync_mode must be one of {SYNC_MODES}, got {self.sync_mode!r}")
        if self.gradient_precision not in PRECISIONS:
            raise ValueError(
                f"gradient_precision must be one of {PRECISIONS}, got {self.gradient_precision!r}"
            )
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.num_ps < 1 and self.architecture == "ps":
            raise ValueError("PS architecture needs num_ps >= 1")
        if self.batch_per_worker < 1:
            raise ValueError("batch_per_worker must be >= 1")
        if self.intra_op_threads < 0:
            raise ValueError("intra_op_threads must be >= 0 (0 = whole node)")
        if self.staleness_bound < 0:
            raise ValueError("staleness_bound must be >= 0")

    @property
    def global_batch(self) -> int:
        """Aggregate minibatch across all workers."""
        return self.num_workers * self.batch_per_worker

    @property
    def gradient_bytes_factor(self) -> float:
        """Scale on communicated bytes: transport precision × sparsification.

        fp16 halves every gradient byte; top-k compression transmits only
        ``compression_ratio`` of them (at a statistical-efficiency cost the
        convergence model accounts for).
        """
        return _PRECISION_FACTOR[self.gradient_precision] * self.compression_ratio

    @property
    def uses_ps(self) -> bool:
        """True for the parameter-server architecture."""
        return self.architecture == "ps"

    @property
    def effective_staleness_bound(self) -> int:
        """Staleness bound implied by the sync mode.

        BSP is SSP with bound 0; ASP is unbounded (represented as a large
        sentinel the simulator treats as "never blocks").
        """
        if self.sync_mode == "bsp":
            return 0
        if self.sync_mode == "asp":
            return 1_000_000
        return self.staleness_bound

    def machines_needed(self) -> int:
        """Distinct machines this configuration occupies."""
        if not self.uses_ps:
            return self.num_workers
        if self.colocate_ps:
            return max(self.num_ps, self.num_workers)
        return self.num_ps + self.num_workers

    def canonical(self) -> "TrainingConfig":
        """Normalise fields that are inert for this architecture/sync mode.

        All-reduce jobs ignore ``num_ps``/``colocate_ps``; BSP and ASP
        ignore ``staleness_bound``.  Canonicalising them to fixed values
        makes equality and caching behave the way a user expects: two
        configs that run identically compare equal.
        """
        updates: Dict[str, Any] = {}
        if not self.uses_ps:
            # Ring all-reduce is inherently synchronous.
            if self.num_ps != 1:
                updates["num_ps"] = 1
            if self.colocate_ps:
                updates["colocate_ps"] = False
            if self.sync_mode != "bsp":
                updates["sync_mode"] = "bsp"
            if self.staleness_bound != 0:
                updates["staleness_bound"] = 0
        elif self.sync_mode != "ssp":
            bound = 0 if self.sync_mode == "bsp" else 4
            if self.staleness_bound != bound:
                updates["staleness_bound"] = bound
        # Already-canonical configs return self: the no-update path is hot
        # (every probe and batch evaluation re-canonicalises defensively).
        return replace(self, **updates) if updates else self

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for tables, CSV rows, and config-space round trips)."""
        return {
            "architecture": self.architecture,
            "num_workers": self.num_workers,
            "num_ps": self.num_ps,
            "colocate_ps": self.colocate_ps,
            "sync_mode": self.sync_mode,
            "staleness_bound": self.staleness_bound,
            "batch_per_worker": self.batch_per_worker,
            "intra_op_threads": self.intra_op_threads,
            "gradient_precision": self.gradient_precision,
            "compression_ratio": self.compression_ratio,
            "io_threads": self.io_threads,
            "prefetch_batches": self.prefetch_batches,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, Any]) -> "TrainingConfig":
        """Inverse of :meth:`to_dict`, tolerant of extra keys."""
        fields = {
            key: values[key]
            for key in cls.__dataclass_fields__  # type: ignore[attr-defined]
            if key in values
        }
        return cls(**fields)


DEFAULT_CONFIG = TrainingConfig()
"""The out-of-the-box configuration a non-expert would run with.

Mirrors common framework defaults of the period: PS architecture, a couple
of parameter servers, BSP, batch 32 per worker, framework-managed threads.
"""


def expert_config(total_nodes: int, compute_comm_ratio: float) -> TrainingConfig:
    """A rule-of-thumb configuration an experienced engineer would write.

    Encodes the folk guidance from the tuning literature: roughly one PS per
    4 workers for compute-bound models, 1:1 for communication-bound ones;
    all-reduce for very compute-bound models; larger batches for cheap
    models.  Used as the "expert" baseline in the evaluation.
    """
    if total_nodes < 2:
        raise ValueError("expert heuristic needs at least 2 nodes")
    if compute_comm_ratio > 80.0:
        # Compute-bound: all machines compute, ring all-reduce.
        return TrainingConfig(
            architecture="allreduce",
            num_workers=total_nodes,
            batch_per_worker=32,
            gradient_precision="fp16",
        ).canonical()
    if compute_comm_ratio > 8.0:
        num_ps = max(1, total_nodes // 5)
    else:
        num_ps = max(1, total_nodes // 2)
    num_workers = max(1, total_nodes - num_ps)
    return TrainingConfig(
        architecture="ps",
        num_workers=num_workers,
        num_ps=num_ps,
        colocate_ps=False,
        sync_mode="bsp",
        batch_per_worker=64 if compute_comm_ratio < 8.0 else 32,
        gradient_precision="fp32",
    )
