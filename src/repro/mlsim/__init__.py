"""Distributed ML training simulator (parameter server + all-reduce)."""

from repro.mlsim.allreduce import run_allreduce_probe
from repro.mlsim.config import (
    ARCHITECTURES,
    DEFAULT_CONFIG,
    PRECISIONS,
    SYNC_MODES,
    TrainingConfig,
    expert_config,
)
from repro.mlsim.drift import (
    CompositeDrift,
    DriftSchedule,
    DriftState,
    PeriodicDrift,
    RampDrift,
    StepDrift,
    StragglerOnset,
    parse_drift_spec,
)
from repro.mlsim.environment import (
    FIDELITIES,
    OBJECTIVES,
    Measurement,
    TrainingEnvironment,
)
from repro.mlsim.perf import (
    BSP_OVERLAP,
    ITERATION_OVERHEAD_S,
    STARTUP_OVERHEAD_S,
    BatchPerfEstimate,
    InfeasibleConfigError,
    PerfColumns,
    PerfEstimate,
    check_feasible,
    estimate,
    estimate_batch,
    estimate_columns,
)
from repro.mlsim.ps import TrainingTrace, run_ps_probe
from repro.mlsim.validation import FidelityPoint, ValidationReport, cross_validate

__all__ = [
    "ARCHITECTURES",
    "BSP_OVERLAP",
    "BatchPerfEstimate",
    "CompositeDrift",
    "DEFAULT_CONFIG",
    "DriftSchedule",
    "DriftState",
    "FIDELITIES",
    "PeriodicDrift",
    "RampDrift",
    "StepDrift",
    "StragglerOnset",
    "parse_drift_spec",
    "ITERATION_OVERHEAD_S",
    "InfeasibleConfigError",
    "Measurement",
    "OBJECTIVES",
    "PRECISIONS",
    "PerfColumns",
    "PerfEstimate",
    "STARTUP_OVERHEAD_S",
    "SYNC_MODES",
    "TrainingConfig",
    "TrainingEnvironment",
    "TrainingTrace",
    "FidelityPoint",
    "ValidationReport",
    "check_feasible",
    "cross_validate",
    "estimate",
    "estimate_batch",
    "estimate_columns",
    "expert_config",
    "run_allreduce_probe",
    "run_ps_probe",
]
