"""Deterministic non-stationarity: drift schedules over virtual time.

A frozen :class:`TrainingEnvironment` models one tuning session against a
static cluster.  Production clusters drift — co-tenant interference comes
and goes, stragglers appear mid-session, spot capacity gets preempted —
and a tuner that converges once and stops exploring serves a stale
configuration the moment the optimum moves.  This module makes drift a
first-class *simulation axis* while preserving the repo's core invariant:
everything is a pure function of virtual time and the construction seed,
so same-seed replays stay bit-identical.

A :class:`DriftSchedule` maps a virtual timestamp to a :class:`DriftState`:

- ``speed_scale(s)`` — per-node multipliers on the cluster's persistent
  speed factors (< 1.0 slows a node down: interference, thermal
  throttling, a straggler).  Schedules that slow every node uniformly
  return a scalar; :class:`StragglerOnset` returns a per-node vector.
- ``intensity`` — a workload-intensity multiplier (> 1.0 = the probe jobs
  themselves got heavier: larger co-scheduled batch jobs, datacenter-wide
  I/O contention).  Divides measured throughput.
- ``failure_rate_boost`` — additive transient-failure probability on top
  of the environment's base ``transient_failure_rate`` (spot reclamation
  waves, flaky ToR switch).

Schedules compose: :class:`CompositeDrift` multiplies speed scales and
intensities and sums failure boosts.  All schedules are frozen dataclasses
— hashable, so caches (e.g. the optimum memoiser) can key on them.

The environment owns a virtual clock (``TrainingEnvironment.clock_s``,
stamped by the executors with the session's wall-clock before each probe);
a schedule never holds mutable state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "DriftState",
    "DriftSchedule",
    "StepDrift",
    "RampDrift",
    "PeriodicDrift",
    "StragglerOnset",
    "CompositeDrift",
    "parse_drift_spec",
]


@dataclass(frozen=True)
class DriftState:
    """The environment's drift condition at one virtual timestamp.

    ``speed_scale`` is either a scalar (uniform slowdown) or a tuple of
    per-node multipliers; ``intensity`` divides throughput;
    ``failure_rate_boost`` adds to the transient-failure probability.
    The identity state is ``(1.0, 1.0, 0.0)``.
    """

    speed_scale: Union[float, Tuple[float, ...]] = 1.0
    intensity: float = 1.0
    failure_rate_boost: float = 0.0

    @property
    def is_identity(self) -> bool:
        return (
            self.speed_scale == 1.0
            and self.intensity == 1.0
            and self.failure_rate_boost == 0.0
        )

    def node_scale(self, node: int) -> float:
        """The speed multiplier for one node index."""
        if isinstance(self.speed_scale, tuple):
            return self.speed_scale[node % len(self.speed_scale)]
        return self.speed_scale

    def mean_scale(self) -> float:
        """Mean per-node speed multiplier (mean-field summary)."""
        if isinstance(self.speed_scale, tuple):
            return float(np.mean(self.speed_scale)) if self.speed_scale else 1.0
        return self.speed_scale


class DriftSchedule:
    """Base class: a pure function of virtual time.

    Subclasses implement :meth:`state_at`; they must be deterministic
    (same ``(t, num_nodes)`` → same :class:`DriftState`, always) and
    should be frozen dataclasses so environments and caches can hash them.
    """

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Summary dict for experiment logs."""
        return {"kind": type(self).__name__}


@dataclass(frozen=True)
class StepDrift(DriftSchedule):
    """An abrupt, persistent regime change at ``at_s``.

    Before ``at_s`` the state is the identity; from ``at_s`` on every node
    runs at ``speed_scale``, the workload intensity is ``intensity`` and
    transient failures get ``failure_rate_boost`` added — the canonical
    "a big co-tenant landed on the cluster" event.
    """

    at_s: float
    speed_scale: float = 1.0
    intensity: float = 1.0
    failure_rate_boost: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.speed_scale <= 0:
            raise ValueError("speed_scale must be positive")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if not 0.0 <= self.failure_rate_boost < 1.0:
            raise ValueError("failure_rate_boost must be in [0, 1)")

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        if t < self.at_s:
            return DriftState()
        return DriftState(
            speed_scale=self.speed_scale,
            intensity=self.intensity,
            failure_rate_boost=self.failure_rate_boost,
        )

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "step",
            "at_s": self.at_s,
            "speed_scale": self.speed_scale,
            "intensity": self.intensity,
            "failure_rate_boost": self.failure_rate_boost,
        }


@dataclass(frozen=True)
class RampDrift(DriftSchedule):
    """A linear slide from the identity to ``speed_scale`` over a window.

    Interference that builds gradually (a co-tenant ramping its job up):
    identity before ``start_s``, linear interpolation of the uniform speed
    scale across ``[start_s, end_s]``, then held at ``speed_scale``.
    """

    start_s: float
    end_s: float
    speed_scale: float = 0.5

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("need 0 <= start_s < end_s")
        if self.speed_scale <= 0:
            raise ValueError("speed_scale must be positive")

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        if t <= self.start_s:
            return DriftState()
        if t >= self.end_s:
            return DriftState(speed_scale=self.speed_scale)
        frac = (t - self.start_s) / (self.end_s - self.start_s)
        return DriftState(speed_scale=1.0 + frac * (self.speed_scale - 1.0))

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "ramp",
            "start_s": self.start_s,
            "end_s": self.end_s,
            "speed_scale": self.speed_scale,
        }


@dataclass(frozen=True)
class PeriodicDrift(DriftSchedule):
    """Diurnal-style sinusoidal interference on the uniform speed scale.

    ``scale(t) = 1 - amplitude * (1 + sin(2π (t - phase_s)/period_s)) / 2``
    oscillates between 1.0 (off-peak) and ``1 - amplitude`` (peak
    contention) with period ``period_s`` — the shape of shared-cluster
    business-hours load.
    """

    period_s: float
    amplitude: float = 0.3
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        wave = math.sin(2.0 * math.pi * (t - self.phase_s) / self.period_s)
        return DriftState(speed_scale=1.0 - self.amplitude * (1.0 + wave) / 2.0)

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "periodic",
            "period_s": self.period_s,
            "amplitude": self.amplitude,
            "phase_s": self.phase_s,
        }


@dataclass(frozen=True)
class StragglerOnset(DriftSchedule):
    """A deterministic subset of nodes becomes ``slowdown``x slower at ``at_s``.

    The straggler set is drawn once from ``seed`` (never from the clock),
    so the same schedule object always afflicts the same nodes — this is
    the drift that *moves the optimum's location*, not just its height:
    placements and sync modes that tolerated homogeneous nodes suddenly
    pay a straggler tax, so the post-drift argmax differs from the
    pre-drift one.
    """

    at_s: float
    fraction: float = 0.25
    slowdown: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1")

    def straggler_nodes(self, num_nodes: int) -> Tuple[int, ...]:
        """The afflicted node indices (at least one, deterministic)."""
        count = max(1, int(round(self.fraction * num_nodes)))
        rng = np.random.default_rng([int(self.seed), 0x5712A66])
        return tuple(sorted(rng.choice(num_nodes, size=min(count, num_nodes), replace=False).tolist()))

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        if t < self.at_s:
            return DriftState()
        scale = [1.0] * num_nodes
        for node in self.straggler_nodes(num_nodes):
            scale[node] = 1.0 / self.slowdown
        return DriftState(speed_scale=tuple(scale))

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "stragglers",
            "at_s": self.at_s,
            "fraction": self.fraction,
            "slowdown": self.slowdown,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class CompositeDrift(DriftSchedule):
    """Several schedules at once: scales multiply, failure boosts add.

    Per-node vectors broadcast against scalars; two vectors multiply
    elementwise.  The summed failure boost is clipped below 1 so the
    combined failure probability stays a probability.
    """

    schedules: Tuple[DriftSchedule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedules", tuple(self.schedules))
        if not self.schedules:
            raise ValueError("CompositeDrift needs at least one schedule")

    def state_at(self, t: float, num_nodes: int) -> DriftState:
        scale: Union[float, List[float]] = 1.0
        intensity = 1.0
        boost = 0.0
        for schedule in self.schedules:
            state = schedule.state_at(t, num_nodes)
            part = state.speed_scale
            if isinstance(part, tuple):
                if isinstance(scale, float):
                    scale = [scale * p for p in part]
                else:
                    scale = [a * p for a, p in zip(scale, part)]
            elif part != 1.0:
                if isinstance(scale, float):
                    scale = scale * part
                else:
                    scale = [a * part for a in scale]
            intensity *= state.intensity
            boost += state.failure_rate_boost
        return DriftState(
            speed_scale=tuple(scale) if isinstance(scale, list) else scale,
            intensity=intensity,
            failure_rate_boost=min(boost, 0.999),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "composite",
            "schedules": [s.describe() for s in self.schedules],
        }


_SPEC_KINDS = {
    "step": (StepDrift, {"at": "at_s", "speed": "speed_scale", "intensity": "intensity", "failure": "failure_rate_boost"}),
    "ramp": (RampDrift, {"start": "start_s", "end": "end_s", "speed": "speed_scale"}),
    "periodic": (PeriodicDrift, {"period": "period_s", "amplitude": "amplitude", "phase": "phase_s"}),
    "stragglers": (StragglerOnset, {"at": "at_s", "fraction": "fraction", "slowdown": "slowdown", "seed": "seed"}),
}


def parse_drift_spec(text: str) -> Optional[DriftSchedule]:
    """Parse a CLI ``--drift`` string into a schedule.

    Grammar: semicolon-separated entries, each ``KIND:key=value,...`` —
    e.g. ``"stragglers:at=3600,fraction=0.25,slowdown=2.5;step:at=3600,
    intensity=1.2"`` composes a straggler onset with an intensity step,
    both firing one virtual hour in.  Returns ``None`` for an empty spec,
    a single schedule for one entry, a :class:`CompositeDrift` otherwise.
    """
    schedules: List[DriftSchedule] = []
    for raw_entry in text.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        kind, sep, body = entry.partition(":")
        kind = kind.strip().lower()
        if kind not in _SPEC_KINDS:
            raise ValueError(
                f"unknown drift kind {kind!r}; valid kinds: {sorted(_SPEC_KINDS)}"
            )
        cls, keymap = _SPEC_KINDS[kind]
        kwargs: Dict[str, object] = {}
        if sep:
            for pair in body.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                key = key.strip().lower()
                if not eq or key not in keymap:
                    raise ValueError(
                        f"bad drift entry {entry!r}: expected "
                        f"{kind}:{{{','.join(sorted(keymap))}}}=VALUE,..."
                    )
                field_name = keymap[key]
                kwargs[field_name] = int(value) if field_name == "seed" else float(value)
        schedules.append(cls(**kwargs))
    if not schedules:
        return None
    if len(schedules) == 1:
        return schedules[0]
    return CompositeDrift(tuple(schedules))
