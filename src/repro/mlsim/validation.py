"""Systematic cross-validation of the analytic model against the event sim.

The benchmark sweeps run on the fast analytic fidelity; the discrete-event
simulator is the reference.  For the headline conclusions (who wins, by
how much, where crossovers fall) to transfer, the analytic model must
(a) stay within a bounded throughput ratio of the event simulator, and
(b) *rank* configurations the same way.

:func:`cross_validate` measures both over a random sample of feasible
configurations and reports per-config ratios, the aggregate error, and the
rank correlation — the data behind validation experiment V1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster import ClusterSpec
from repro.mlsim.config import TrainingConfig
from repro.mlsim.environment import TrainingEnvironment
from repro.workloads import Workload

# NOTE: repro.configspace depends on repro.mlsim.config, so importing it at
# module level from inside the mlsim package would be circular; it is
# imported lazily inside cross_validate() instead.


@dataclass(frozen=True)
class FidelityPoint:
    """One configuration measured under both fidelities."""

    config: TrainingConfig
    analytic_throughput: float
    event_throughput: float

    @property
    def ratio(self) -> float:
        """event / analytic throughput (1.0 = perfect agreement)."""
        if self.analytic_throughput <= 0:
            return float("inf")
        return self.event_throughput / self.analytic_throughput


@dataclass
class ValidationReport:
    """Aggregate agreement between the two fidelities."""

    points: List[FidelityPoint]
    mean_abs_log_ratio: float
    worst_ratio: float
    best_ratio: float
    rank_correlation: float

    def summary_row(self, workload_name: str) -> list:
        """Row for the V1 table."""
        return [
            workload_name,
            len(self.points),
            float(np.exp(self.mean_abs_log_ratio)),
            self.best_ratio,
            self.worst_ratio,
            self.rank_correlation,
        ]


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation without scipy.stats dependency drift."""
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt(np.sum(ra * ra) * np.sum(rb * rb))
    if denom == 0:
        return 1.0
    return float(np.sum(ra * rb) / denom)


def cross_validate(
    workload: Workload,
    cluster: ClusterSpec,
    num_configs: int = 20,
    seed: int = 0,
    space=None,
    probe_iterations: int = 20,
) -> ValidationReport:
    """Measure ``num_configs`` random feasible configs under both fidelities.

    Noise is disabled so any disagreement is model error, not sampling
    error.  Returns a :class:`ValidationReport`.
    """
    from repro.configspace import ml_config_space, to_training_config

    if num_configs < 3:
        raise ValueError("num_configs must be >= 3 for a meaningful report")
    space = space or ml_config_space(cluster.total_nodes)
    rng = np.random.default_rng(seed)

    analytic_env = TrainingEnvironment(
        workload, cluster, seed=seed, fidelity="analytic", noise_cv=0.0,
        probe_iterations=probe_iterations,
    )
    event_env = TrainingEnvironment(
        workload, cluster, seed=seed, fidelity="event", noise_cv=0.0,
        probe_iterations=probe_iterations,
    )

    points: List[FidelityPoint] = []
    attempts = 0
    while len(points) < num_configs and attempts < 50 * num_configs:
        attempts += 1
        config = to_training_config(space.sample(rng))
        analytic = analytic_env.measure(config)
        if not analytic.ok:
            continue
        event = event_env.measure(config)
        if not event.ok:
            continue
        points.append(
            FidelityPoint(
                config=config,
                analytic_throughput=analytic.throughput,
                event_throughput=event.throughput,
            )
        )
    if len(points) < num_configs:
        raise RuntimeError(
            f"could not find {num_configs} feasible configs "
            f"(got {len(points)} after {attempts} attempts)"
        )

    log_ratios = np.array([np.log(p.ratio) for p in points])
    analytic = np.array([p.analytic_throughput for p in points])
    event = np.array([p.event_throughput for p in points])
    return ValidationReport(
        points=points,
        mean_abs_log_ratio=float(np.mean(np.abs(log_ratios))),
        worst_ratio=float(np.exp(log_ratios.max())),
        best_ratio=float(np.exp(log_ratios.min())),
        rank_correlation=_spearman(analytic, event),
    )
