"""Event-driven ring all-reduce training simulator.

Each iteration: all workers compute their gradients, then perform a ring
all-reduce — ``2(n-1)`` steps in which every worker sends one chunk of size
``grad_bytes / n`` to its ring successor.  The ring is inherently
synchronous: each step waits for all transfers in that step, so a single
straggler stalls the whole ring (the behaviour that makes all-reduce shine
on homogeneous clusters and suffer on noisy ones).
"""

from __future__ import annotations

import math
from typing import List

from repro.cluster import Cluster, place
from repro.mlsim.config import TrainingConfig
from repro.mlsim.perf import ITERATION_OVERHEAD_S, check_feasible
from repro.mlsim.pipeline import worker_iteration_base_seconds
from repro.mlsim.ps import TrainingTrace
from repro.sim import RngRegistry, Simulator
from repro.workloads import Workload


def _ring_iteration(
    sim: Simulator,
    cluster: Cluster,
    worker_nodes: List[int],
    chunk_bytes: float,
):
    """One full ring all-reduce (generator process): 2(n-1) lockstep steps."""
    n = len(worker_nodes)
    steps = 2 * (n - 1)
    for _ in range(steps):
        transfers = [
            cluster.fabric.transfer(
                worker_nodes[i], worker_nodes[(i + 1) % n], chunk_bytes
            )
            for i in range(n)
        ]
        yield sim.all_of(transfers)


def run_allreduce_probe(
    cluster: Cluster,
    config: TrainingConfig,
    workload: Workload,
    num_iterations: int,
    rng: RngRegistry,
) -> TrainingTrace:
    """Simulate ``num_iterations`` of ring all-reduce training."""
    if config.uses_ps:
        raise ValueError("run_allreduce_probe requires an all-reduce config")
    check_feasible(config, workload, cluster.spec)

    sim = cluster.sim
    placement = place(len(cluster), 0, config.num_workers, False)
    worker_nodes = list(placement.worker_nodes)
    n = len(worker_nodes)
    grad_bytes = workload.model.param_bytes * config.gradient_bytes_factor
    chunk_bytes = grad_bytes / n if n > 1 else 0.0
    flops = workload.model.flops_per_sample * config.batch_per_worker
    jitter_cv = cluster.spec.jitter_cv
    cost_cv = workload.dataset.sample_cost_cv
    trace = TrainingTrace()
    streams = [rng.stream(f"worker.{rank}") for rank in range(n)]

    def compute_phase(rank: int, node_id: int):
        node = cluster.node(node_id)
        base = worker_iteration_base_seconds(
            node, flops, config, workload.dataset, ITERATION_OVERHEAD_S
        )
        sigma = math.sqrt(jitter_cv**2 + (cost_cv**2) / max(1, config.batch_per_worker))
        factor = float(streams[rank].lognormal(0.0, sigma)) if sigma > 0 else 1.0
        yield sim.timeout(base * factor)

    def training_loop():
        started = sim.now
        for _ in range(num_iterations):
            computes = [
                sim.spawn(compute_phase(rank, node_id), name=f"compute-{rank}")
                for rank, node_id in enumerate(worker_nodes)
            ]
            yield sim.all_of(computes)
            if n > 1:
                yield sim.spawn(
                    _ring_iteration(sim, cluster, worker_nodes, chunk_bytes),
                    name="ring",
                )
            trace.completion_times.append(sim.now)
            trace.samples_processed += config.global_batch
            trace.staleness.append(0.0)
        trace.elapsed_s = sim.now - started

    main = sim.spawn(training_loop(), name="allreduce-loop")
    sim.run()
    if main.alive:
        raise RuntimeError("all-reduce probe did not finish (deadlock?)")
    return trace
