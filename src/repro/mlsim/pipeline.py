"""Input-pipeline model: data loading and decode as a training bottleneck.

Distributed training jobs read serialized samples from storage, decode/
augment them on CPU threads, and feed the accelerator through a prefetch
buffer (the tf.data / DataLoader stage).  When the pipeline is starved the
accelerator idles — a failure mode configuration tuners routinely find in
practice, and two more knobs for the space:

- ``io_threads``: CPU cores dedicated to the input pipeline.  They are
  taken away from compute, creating a genuine trade-off.
- ``prefetch_batches``: depth of the prefetch buffer.  With at least one
  prefetched batch the pipeline overlaps compute; with zero, every
  iteration serialises load→compute.

Setting ``io_threads = 0`` (the default) disables the model entirely —
the framework-managed pipeline is assumed never to be the bottleneck,
which is the assumption the core experiments (T3/F1-F6) run under.
"""

from __future__ import annotations

from repro.cluster import NodeSpec
from repro.workloads import DatasetSpec

# Storage read throughput per node (local NVMe / striped object store
# client): order-of-magnitude realistic for the paper's era.
STORAGE_BYTES_PER_SEC = 500e6

# Decode + augmentation throughput of one CPU core, in input bytes/sec.
# JPEG decode alone reaches ~150 MB/s/core, but the full augmentation
# chain (decode, random crop, resize, flip, normalise) lands nearer
# 50-80 MB/s/core — the regime where GPU nodes starve without enough
# input threads while slow CPU nodes never do.
DECODE_BYTES_PER_CORE_PER_SEC = 60e6


def input_rate_samples_per_sec(
    node: NodeSpec, dataset: DatasetSpec, io_threads: int
) -> float:
    """Steady-state samples/second one worker's pipeline can supply.

    The pipeline is the min of the storage read rate and the aggregate
    decode rate of the dedicated cores.  ``io_threads = 0`` means the
    pipeline is unmodelled: returns infinity.
    """
    if io_threads < 0:
        raise ValueError("io_threads must be >= 0")
    if io_threads == 0:
        return float("inf")
    storage_rate = STORAGE_BYTES_PER_SEC / dataset.bytes_per_sample
    decode_rate = io_threads * DECODE_BYTES_PER_CORE_PER_SEC / dataset.bytes_per_sample
    return min(storage_rate, decode_rate)


def iteration_input_time(
    node: NodeSpec, dataset: DatasetSpec, io_threads: int, batch: int
) -> float:
    """Seconds the pipeline needs to supply one minibatch."""
    rate = input_rate_samples_per_sec(node, dataset, io_threads)
    if rate == float("inf"):
        return 0.0
    return batch / rate


def effective_iteration_time(
    train_time: float,
    input_time: float,
    prefetch_batches: int,
) -> float:
    """Combine the training path with the input pipeline.

    With prefetching the two stages form a two-stage pipeline whose steady
    state is the max of the stage times; without it they serialise.
    """
    if prefetch_batches < 0:
        raise ValueError("prefetch_batches must be >= 0")
    if input_time <= 0.0:
        return train_time
    if prefetch_batches >= 1:
        return max(train_time, input_time)
    return train_time + input_time


def compute_cores_available(node: NodeSpec, io_threads: int) -> int:
    """Cores left for training math after the pipeline takes its share."""
    if io_threads >= node.cores:
        raise ValueError(
            f"io_threads {io_threads} would starve compute on {node.cores}-core node"
        )
    return node.cores - io_threads


def worker_iteration_base_seconds(
    node, flops: float, config, dataset: DatasetSpec, overhead_s: float
) -> float:
    """Mean per-iteration time of one worker's local phase (compute+input).

    Shared by the event-driven simulators so the pipeline semantics match
    the analytic model exactly: ``node`` is a runtime
    :class:`~repro.cluster.node.Node` (spec + speed factor).
    """
    available = compute_cores_available(node.spec, config.io_threads)
    threads = config.intra_op_threads
    if threads == 0 or threads > available:
        threads = available
    compute = node.compute_seconds(flops, threads) + overhead_s
    input_time = iteration_input_time(
        node.spec, dataset, config.io_threads, config.batch_per_worker
    )
    return effective_iteration_time(compute, input_time, config.prefetch_batches)
