"""Analytic performance model for distributed training.

This is the fast fidelity mode: closed-form iteration-time and throughput
estimates derived from the same first-order bottleneck analysis the tuning
papers use to *explain* their measurements.  The discrete-event simulators
in :mod:`repro.mlsim.ps` and :mod:`repro.mlsim.allreduce` are the reference
implementation; the unit tests cross-validate the two on configurations
where the analytic assumptions hold.

Model structure
---------------
Per iteration, each worker performs:

1. *compute*: forward+backward over its minibatch, scaled by the node's
   effective throughput and the intra-op thread setting;
2. *push*: send the gradient (sharded over the parameter servers);
3. *pull*: fetch fresh parameters.

BSP pays the slowest worker's compute (straggler tail) plus synchronous
communication.  ASP removes the barrier: throughput becomes the minimum of
the compute-limited, worker-NIC-limited, and PS-NIC-limited aggregate rates,
at the price of gradient staleness.  SSP interpolates between the two with
the staleness bound.  Ring all-reduce replaces the PS exchange with the
classic 2(n-1)/n pattern bottlenecked by the slowest NIC in the ring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import ClusterSpec, PlacementError, place
from repro.mlsim.config import TrainingConfig
from repro.mlsim.pipeline import effective_iteration_time, iteration_input_time
from repro.workloads import Workload

# Fixed per-iteration overhead: kernel launches, queue hops, framework
# bookkeeping.  Matches the few-millisecond floors measured on real systems.
ITERATION_OVERHEAD_S = 2.5e-3

# Fraction of synchronous communication that overlaps with compute
# (gradient push of deep layers overlaps with backprop of shallow ones).
BSP_OVERLAP = 0.3

# Per-job startup cost charged to every measurement probe: process launch,
# graph construction, data-pipeline warmup.
STARTUP_OVERHEAD_S = 30.0


class InfeasibleConfigError(ValueError):
    """Raised when a configuration cannot run on the cluster at all."""


@dataclass(frozen=True)
class PerfEstimate:
    """Closed-form performance estimate for one configuration.

    Attributes
    ----------
    iteration_time_s:
        Mean wall-clock time of one *global* iteration (BSP) or one average
        update round (ASP/SSP, i.e. ``num_workers`` updates).
    throughput:
        Training throughput in samples/second.
    mean_staleness:
        Average gradient staleness in updates (0 under BSP).
    compute_time_s / comm_time_s:
        Per-iteration breakdown (critical-path values).
    bottleneck:
        Which resource limits throughput: ``"compute"``, ``"worker-nic"``,
        ``"ps-nic"``, or ``"ring"``.
    """

    iteration_time_s: float
    throughput: float
    mean_staleness: float
    compute_time_s: float
    comm_time_s: float
    bottleneck: str


def check_feasible(
    config: TrainingConfig, workload: Workload, cluster: ClusterSpec
) -> None:
    """Raise :class:`InfeasibleConfigError` if the config cannot run.

    Checks machine count (placement) and worker memory (model replica +
    optimizer state + activations must fit).  These are the two failure
    modes a real tuner observes as crashed trials.
    """
    try:
        place(
            cluster.total_nodes,
            config.num_ps if config.uses_ps else 0,
            config.num_workers,
            config.colocate_ps if config.uses_ps else False,
        )
    except PlacementError as exc:
        raise InfeasibleConfigError(str(exc)) from exc

    model = workload.model
    # Weights + gradients + optimizer state (momentum): 3x parameters.
    replica_bytes = 3.0 * model.param_bytes
    activation_bytes = config.batch_per_worker * model.activation_bytes_per_sample
    worker_mem = min(spec.mem_gb for spec, _ in cluster.pools) * 1e9
    needed = replica_bytes + activation_bytes
    if needed > worker_mem:
        raise InfeasibleConfigError(
            f"worker memory: need {needed / 1e9:.1f} GB "
            f"(replica {replica_bytes / 1e9:.1f} + activations {activation_bytes / 1e9:.1f}), "
            f"node has {worker_mem / 1e9:.1f} GB"
        )
    if config.batch_per_worker < model.min_batch_per_worker:
        raise InfeasibleConfigError(
            f"batch_per_worker {config.batch_per_worker} below model minimum "
            f"{model.min_batch_per_worker}"
        )
    min_cores = min(spec.cores for spec, _ in cluster.pools)
    if config.io_threads >= min_cores:
        raise InfeasibleConfigError(
            f"io_threads {config.io_threads} leaves no compute cores on a "
            f"{min_cores}-core node"
        )


def _straggler_tail_factor(num_workers: int, jitter_cv: float) -> float:
    """Expected max of ``n`` unit-mean lognormal draws, relative to the mean.

    Standard extreme-value approximation: E[max] ≈ exp(σ·√(2·ln n)).  This
    is the stochastic part of the BSP straggler tail; persistent stragglers
    enter through per-node speed factors separately.
    """
    if num_workers <= 1 or jitter_cv <= 0:
        return 1.0
    return math.exp(jitter_cv * math.sqrt(2.0 * math.log(num_workers)))


def worker_compute_times(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    speed_factors: Sequence[float],
) -> List[float]:
    """Per-worker mean compute time for one local minibatch.

    ``speed_factors`` has one entry per *worker*, in placement order,
    already including persistent-straggler slowdowns.
    """
    flops = workload.model.flops_per_sample * config.batch_per_worker
    node_specs = cluster.node_specs()
    placement = place(
        cluster.total_nodes,
        config.num_ps if config.uses_ps else 0,
        config.num_workers,
        config.colocate_ps if config.uses_ps else False,
    )
    times = []
    for rank, node_id in enumerate(placement.worker_nodes):
        spec = node_specs[node_id]
        base_rate = spec.gflops * 1e9 * speed_factors[rank]
        # Cores dedicated to the input pipeline are unavailable for math.
        available = spec.cores - config.io_threads
        if available < 1:
            raise InfeasibleConfigError(
                f"io_threads {config.io_threads} starves compute on node {node_id}"
            )
        threads = config.intra_op_threads
        if threads == 0 or threads >= available:
            threads = available
        if threads >= spec.cores:
            rate = base_rate
        else:
            fraction = threads / spec.cores
            rate = base_rate * fraction * (1.0 + 0.1 * (1.0 - fraction))
        train_time = flops / rate + ITERATION_OVERHEAD_S
        input_time = iteration_input_time(
            spec, workload.dataset, config.io_threads, config.batch_per_worker
        )
        times.append(
            effective_iteration_time(train_time, input_time, config.prefetch_batches)
        )
    return times


def estimate(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    speed_factors: Sequence[float] | None = None,
) -> PerfEstimate:
    """Closed-form performance estimate for ``config`` on ``cluster``.

    ``speed_factors`` (one per worker) defaults to all-ones; the measurement
    layer passes the instantiated cluster's factors so analytic and
    event-driven fidelities see the same hardware.

    Raises :class:`InfeasibleConfigError` for unrunnable configurations.
    """
    config = config.canonical()
    check_feasible(config, workload, cluster)
    if speed_factors is None:
        speed_factors = [1.0] * config.num_workers
    if len(speed_factors) != config.num_workers:
        raise ValueError(
            f"need {config.num_workers} speed factors, got {len(speed_factors)}"
        )

    model = workload.model
    grad_bytes = model.param_bytes * config.gradient_bytes_factor
    comp_times = worker_compute_times(config, workload, cluster, speed_factors)
    mean_comp = sum(comp_times) / len(comp_times)
    tail = _straggler_tail_factor(config.num_workers, cluster.jitter_cv)
    max_comp = max(comp_times) * tail

    if config.uses_ps:
        return _estimate_ps(config, workload, cluster, grad_bytes, comp_times, mean_comp, max_comp)
    return _estimate_allreduce(config, cluster, grad_bytes, max_comp)


def _nic_rates(config: TrainingConfig, cluster: ClusterSpec) -> tuple:
    """(worker NIC, PS NIC) bytes/sec, accounting for colocation sharing."""
    node_specs = cluster.node_specs()
    placement = place(
        cluster.total_nodes,
        config.num_ps if config.uses_ps else 0,
        config.num_workers,
        config.colocate_ps if config.uses_ps else False,
    )
    worker_nic = min(node_specs[n].nic_bytes_per_sec for n in placement.worker_nodes)
    if config.uses_ps and placement.ps_nodes:
        ps_nic = min(node_specs[n].nic_bytes_per_sec for n in placement.ps_nodes)
        if config.colocate_ps:
            # PS and worker traffic share the node NIC.  With full-duplex
            # links, a worker's push and the colocated server's gradient
            # ingress use opposite directions, but pulls and parameter
            # egress collide: halve effective capacity.
            worker_nic *= 0.5
            ps_nic *= 0.5
    else:
        ps_nic = float("inf")
    return worker_nic, ps_nic


def _estimate_ps(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    grad_bytes: float,
    comp_times: Sequence[float],
    mean_comp: float,
    max_comp: float,
) -> PerfEstimate:
    worker_nic, ps_nic = _nic_rates(config, cluster)
    latency = cluster.latency_s
    shard_bytes = grad_bytes / config.num_ps

    # --- Synchronous (BSP) path -----------------------------------------
    # Push: all workers send simultaneously; each PS ingress carries
    # num_workers shards.  Worker egress carries the whole gradient.
    push_ps_limited = config.num_workers * shard_bytes / ps_nic
    push_worker_limited = grad_bytes / worker_nic
    push_time = max(push_ps_limited, push_worker_limited) + latency
    # Pull is symmetric (parameter egress from servers).
    pull_time = push_time
    comm_sync = (push_time + pull_time) * (1.0 - BSP_OVERLAP)
    barrier = latency * max(1.0, math.log2(max(2, config.num_workers)))
    bsp_iter = max_comp + comm_sync + barrier
    bsp_throughput = config.global_batch / bsp_iter

    if config.sync_mode == "bsp":
        bottleneck = "compute" if max_comp >= comm_sync else (
            "ps-nic" if push_ps_limited >= push_worker_limited else "worker-nic"
        )
        return PerfEstimate(
            iteration_time_s=bsp_iter,
            throughput=bsp_throughput,
            mean_staleness=0.0,
            compute_time_s=max_comp,
            comm_time_s=comm_sync + barrier,
            bottleneck=bottleneck,
        )

    # --- Asynchronous (ASP) path ------------------------------------------
    # Aggregate update rate is the min of three capacities (updates/sec):
    solo_comm = 2.0 * (shard_bytes * config.num_ps / worker_nic + latency)
    compute_rate = sum(1.0 / (t + solo_comm * (1.0 - BSP_OVERLAP)) for t in comp_times)
    worker_nic_rate = sum(1.0 / (2.0 * grad_bytes / worker_nic) for _ in comp_times)
    ps_nic_rate = ps_nic * config.num_ps / grad_bytes  # one direction each way
    asp_rate = min(compute_rate, worker_nic_rate, ps_nic_rate)
    asp_throughput = asp_rate * config.batch_per_worker
    asp_staleness = max(0.0, config.num_workers - 1.0)

    if config.sync_mode == "asp":
        if asp_rate == compute_rate:
            bottleneck = "compute"
        elif asp_rate == ps_nic_rate:
            bottleneck = "ps-nic"
        else:
            bottleneck = "worker-nic"
        return PerfEstimate(
            iteration_time_s=config.num_workers / asp_rate,
            throughput=asp_throughput,
            mean_staleness=asp_staleness,
            compute_time_s=mean_comp,
            comm_time_s=solo_comm,
            bottleneck=bottleneck,
        )

    # --- SSP: interpolate between BSP (bound 0) and ASP (bound → ∞) -------
    bound = config.staleness_bound
    blend = bound / (bound + 2.0)  # 0 → BSP, large → ASP
    ssp_throughput = bsp_throughput + (asp_throughput - bsp_throughput) * blend
    ssp_staleness = min(asp_staleness, float(bound)) * blend if bound > 0 else 0.0
    return PerfEstimate(
        iteration_time_s=config.global_batch / ssp_throughput,
        throughput=ssp_throughput,
        mean_staleness=ssp_staleness,
        compute_time_s=mean_comp,
        comm_time_s=comm_sync,
        bottleneck="mixed",
    )


def _estimate_allreduce(
    config: TrainingConfig,
    cluster: ClusterSpec,
    grad_bytes: float,
    max_comp: float,
) -> PerfEstimate:
    n = config.num_workers
    node_specs = cluster.node_specs()
    placement = place(cluster.total_nodes, 0, n, False)
    ring_nic = min(node_specs[i].nic_bytes_per_sec for i in placement.worker_nodes)
    latency = cluster.latency_s
    if n == 1:
        comm = 0.0
    else:
        steps = 2 * (n - 1)
        comm = steps * (grad_bytes / n / ring_nic + latency)
    comm_effective = comm * (1.0 - BSP_OVERLAP)
    iter_time = max_comp + comm_effective
    return PerfEstimate(
        iteration_time_s=iter_time,
        throughput=config.global_batch / iter_time,
        mean_staleness=0.0,
        compute_time_s=max_comp,
        comm_time_s=comm_effective,
        bottleneck="compute" if max_comp >= comm_effective else "ring",
    )
