"""Analytic performance model for distributed training.

This is the fast fidelity mode: closed-form iteration-time and throughput
estimates derived from the same first-order bottleneck analysis the tuning
papers use to *explain* their measurements.  The discrete-event simulators
in :mod:`repro.mlsim.ps` and :mod:`repro.mlsim.allreduce` are the reference
implementation; the unit tests cross-validate the two on configurations
where the analytic assumptions hold.

Model structure
---------------
Per iteration, each worker performs:

1. *compute*: forward+backward over its minibatch, scaled by the node's
   effective throughput and the intra-op thread setting;
2. *push*: send the gradient (sharded over the parameter servers);
3. *pull*: fetch fresh parameters.

BSP pays the slowest worker's compute (straggler tail) plus synchronous
communication.  ASP removes the barrier: throughput becomes the minimum of
the compute-limited, worker-NIC-limited, and PS-NIC-limited aggregate rates,
at the price of gradient staleness.  SSP interpolates between the two with
the staleness bound.  Ring all-reduce replaces the PS exchange with the
classic 2(n-1)/n pattern bottlenecked by the slowest NIC in the ring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.cluster import ClusterSpec, PlacementError, place
from repro.mlsim.config import DEFAULT_CONFIG, _PRECISION_FACTOR, TrainingConfig
from repro.mlsim.pipeline import (
    DECODE_BYTES_PER_CORE_PER_SEC,
    STORAGE_BYTES_PER_SEC,
    effective_iteration_time,
    iteration_input_time,
)
from repro.workloads import Workload

# Fixed per-iteration overhead: kernel launches, queue hops, framework
# bookkeeping.  Matches the few-millisecond floors measured on real systems.
ITERATION_OVERHEAD_S = 2.5e-3

# Fraction of synchronous communication that overlaps with compute
# (gradient push of deep layers overlaps with backprop of shallow ones).
BSP_OVERLAP = 0.3

# Per-job startup cost charged to every measurement probe: process launch,
# graph construction, data-pipeline warmup.
STARTUP_OVERHEAD_S = 30.0


class InfeasibleConfigError(ValueError):
    """Raised when a configuration cannot run on the cluster at all."""


@dataclass(frozen=True)
class PerfEstimate:
    """Closed-form performance estimate for one configuration.

    Attributes
    ----------
    iteration_time_s:
        Mean wall-clock time of one *global* iteration (BSP) or one average
        update round (ASP/SSP, i.e. ``num_workers`` updates).
    throughput:
        Training throughput in samples/second.
    mean_staleness:
        Average gradient staleness in updates (0 under BSP).
    compute_time_s / comm_time_s:
        Per-iteration breakdown (critical-path values).
    bottleneck:
        Which resource limits throughput: ``"compute"``, ``"worker-nic"``,
        ``"ps-nic"``, or ``"ring"``.
    """

    iteration_time_s: float
    throughput: float
    mean_staleness: float
    compute_time_s: float
    comm_time_s: float
    bottleneck: str


def check_feasible(
    config: TrainingConfig, workload: Workload, cluster: ClusterSpec
) -> None:
    """Raise :class:`InfeasibleConfigError` if the config cannot run.

    Checks machine count (placement) and worker memory (model replica +
    optimizer state + activations must fit).  These are the two failure
    modes a real tuner observes as crashed trials.
    """
    try:
        place(
            cluster.total_nodes,
            config.num_ps if config.uses_ps else 0,
            config.num_workers,
            config.colocate_ps if config.uses_ps else False,
        )
    except PlacementError as exc:
        raise InfeasibleConfigError(str(exc)) from exc

    model = workload.model
    # Weights + gradients + optimizer state (momentum): 3x parameters.
    replica_bytes = 3.0 * model.param_bytes
    activation_bytes = config.batch_per_worker * model.activation_bytes_per_sample
    worker_mem = min(spec.mem_gb for spec, _ in cluster.pools) * 1e9
    needed = replica_bytes + activation_bytes
    if needed > worker_mem:
        raise InfeasibleConfigError(
            f"worker memory: need {needed / 1e9:.1f} GB "
            f"(replica {replica_bytes / 1e9:.1f} + activations {activation_bytes / 1e9:.1f}), "
            f"node has {worker_mem / 1e9:.1f} GB"
        )
    if config.batch_per_worker < model.min_batch_per_worker:
        raise InfeasibleConfigError(
            f"batch_per_worker {config.batch_per_worker} below model minimum "
            f"{model.min_batch_per_worker}"
        )
    min_cores = min(spec.cores for spec, _ in cluster.pools)
    if config.io_threads >= min_cores:
        raise InfeasibleConfigError(
            f"io_threads {config.io_threads} leaves no compute cores on a "
            f"{min_cores}-core node"
        )


def _straggler_tail_factor(num_workers: int, jitter_cv: float) -> float:
    """Expected max of ``n`` unit-mean lognormal draws, relative to the mean.

    Standard extreme-value approximation: E[max] ≈ exp(σ·√(2·ln n)).  This
    is the stochastic part of the BSP straggler tail; persistent stragglers
    enter through per-node speed factors separately.
    """
    if num_workers <= 1 or jitter_cv <= 0:
        return 1.0
    return math.exp(jitter_cv * math.sqrt(2.0 * math.log(num_workers)))


def worker_compute_times(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    speed_factors: Sequence[float],
) -> List[float]:
    """Per-worker mean compute time for one local minibatch.

    ``speed_factors`` has one entry per *worker*, in placement order,
    already including persistent-straggler slowdowns.
    """
    flops = workload.model.flops_per_sample * config.batch_per_worker
    node_specs = cluster.node_specs()
    placement = place(
        cluster.total_nodes,
        config.num_ps if config.uses_ps else 0,
        config.num_workers,
        config.colocate_ps if config.uses_ps else False,
    )
    times = []
    for rank, node_id in enumerate(placement.worker_nodes):
        spec = node_specs[node_id]
        base_rate = spec.gflops * 1e9 * speed_factors[rank]
        # Cores dedicated to the input pipeline are unavailable for math.
        available = spec.cores - config.io_threads
        if available < 1:
            raise InfeasibleConfigError(
                f"io_threads {config.io_threads} starves compute on node {node_id}"
            )
        threads = config.intra_op_threads
        if threads == 0 or threads >= available:
            threads = available
        if threads >= spec.cores:
            rate = base_rate
        else:
            fraction = threads / spec.cores
            rate = base_rate * fraction * (1.0 + 0.1 * (1.0 - fraction))
        train_time = flops / rate + ITERATION_OVERHEAD_S
        input_time = iteration_input_time(
            spec, workload.dataset, config.io_threads, config.batch_per_worker
        )
        times.append(
            effective_iteration_time(train_time, input_time, config.prefetch_batches)
        )
    return times


def estimate(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    speed_factors: Sequence[float] | None = None,
) -> PerfEstimate:
    """Closed-form performance estimate for ``config`` on ``cluster``.

    ``speed_factors`` (one per worker) defaults to all-ones; the measurement
    layer passes the instantiated cluster's factors so analytic and
    event-driven fidelities see the same hardware.

    Raises :class:`InfeasibleConfigError` for unrunnable configurations.
    """
    config = config.canonical()
    check_feasible(config, workload, cluster)
    if speed_factors is None:
        speed_factors = [1.0] * config.num_workers
    if len(speed_factors) != config.num_workers:
        raise ValueError(
            f"need {config.num_workers} speed factors, got {len(speed_factors)}"
        )

    model = workload.model
    grad_bytes = model.param_bytes * config.gradient_bytes_factor
    comp_times = worker_compute_times(config, workload, cluster, speed_factors)
    mean_comp = sum(comp_times) / len(comp_times)
    tail = _straggler_tail_factor(config.num_workers, cluster.jitter_cv)
    max_comp = max(comp_times) * tail

    if config.uses_ps:
        return _estimate_ps(config, workload, cluster, grad_bytes, comp_times, mean_comp, max_comp)
    return _estimate_allreduce(config, cluster, grad_bytes, max_comp)


def _nic_rates(config: TrainingConfig, cluster: ClusterSpec) -> tuple:
    """(worker NIC, PS NIC) bytes/sec, accounting for colocation sharing."""
    node_specs = cluster.node_specs()
    placement = place(
        cluster.total_nodes,
        config.num_ps if config.uses_ps else 0,
        config.num_workers,
        config.colocate_ps if config.uses_ps else False,
    )
    worker_nic = min(node_specs[n].nic_bytes_per_sec for n in placement.worker_nodes)
    if config.uses_ps and placement.ps_nodes:
        ps_nic = min(node_specs[n].nic_bytes_per_sec for n in placement.ps_nodes)
        if config.colocate_ps:
            # PS and worker traffic share the node NIC.  With full-duplex
            # links, a worker's push and the colocated server's gradient
            # ingress use opposite directions, but pulls and parameter
            # egress collide: halve effective capacity.
            worker_nic *= 0.5
            ps_nic *= 0.5
    else:
        ps_nic = float("inf")
    return worker_nic, ps_nic


def _estimate_ps(
    config: TrainingConfig,
    workload: Workload,
    cluster: ClusterSpec,
    grad_bytes: float,
    comp_times: Sequence[float],
    mean_comp: float,
    max_comp: float,
) -> PerfEstimate:
    worker_nic, ps_nic = _nic_rates(config, cluster)
    latency = cluster.latency_s
    shard_bytes = grad_bytes / config.num_ps

    # --- Synchronous (BSP) path -----------------------------------------
    # Push: all workers send simultaneously; each PS ingress carries
    # num_workers shards.  Worker egress carries the whole gradient.
    push_ps_limited = config.num_workers * shard_bytes / ps_nic
    push_worker_limited = grad_bytes / worker_nic
    push_time = max(push_ps_limited, push_worker_limited) + latency
    # Pull is symmetric (parameter egress from servers).
    pull_time = push_time
    comm_sync = (push_time + pull_time) * (1.0 - BSP_OVERLAP)
    barrier = latency * max(1.0, math.log2(max(2, config.num_workers)))
    bsp_iter = max_comp + comm_sync + barrier
    bsp_throughput = config.global_batch / bsp_iter

    if config.sync_mode == "bsp":
        bottleneck = "compute" if max_comp >= comm_sync else (
            "ps-nic" if push_ps_limited >= push_worker_limited else "worker-nic"
        )
        return PerfEstimate(
            iteration_time_s=bsp_iter,
            throughput=bsp_throughput,
            mean_staleness=0.0,
            compute_time_s=max_comp,
            comm_time_s=comm_sync + barrier,
            bottleneck=bottleneck,
        )

    # --- Asynchronous (ASP) path ------------------------------------------
    # Aggregate update rate is the min of three capacities (updates/sec):
    solo_comm = 2.0 * (shard_bytes * config.num_ps / worker_nic + latency)
    compute_rate = sum(1.0 / (t + solo_comm * (1.0 - BSP_OVERLAP)) for t in comp_times)
    worker_nic_rate = sum(1.0 / (2.0 * grad_bytes / worker_nic) for _ in comp_times)
    ps_nic_rate = ps_nic * config.num_ps / grad_bytes  # one direction each way
    asp_rate = min(compute_rate, worker_nic_rate, ps_nic_rate)
    asp_throughput = asp_rate * config.batch_per_worker
    asp_staleness = max(0.0, config.num_workers - 1.0)

    if config.sync_mode == "asp":
        if asp_rate == compute_rate:
            bottleneck = "compute"
        elif asp_rate == ps_nic_rate:
            bottleneck = "ps-nic"
        else:
            bottleneck = "worker-nic"
        return PerfEstimate(
            iteration_time_s=config.num_workers / asp_rate,
            throughput=asp_throughput,
            mean_staleness=asp_staleness,
            compute_time_s=mean_comp,
            comm_time_s=solo_comm,
            bottleneck=bottleneck,
        )

    # --- SSP: interpolate between BSP (bound 0) and ASP (bound → ∞) -------
    bound = config.staleness_bound
    blend = bound / (bound + 2.0)  # 0 → BSP, large → ASP
    ssp_throughput = bsp_throughput + (asp_throughput - bsp_throughput) * blend
    ssp_staleness = min(asp_staleness, float(bound)) * blend if bound > 0 else 0.0
    return PerfEstimate(
        iteration_time_s=config.global_batch / ssp_throughput,
        throughput=ssp_throughput,
        mean_staleness=ssp_staleness,
        compute_time_s=mean_comp,
        comm_time_s=comm_sync,
        bottleneck="mixed",
    )


def _estimate_allreduce(
    config: TrainingConfig,
    cluster: ClusterSpec,
    grad_bytes: float,
    max_comp: float,
) -> PerfEstimate:
    n = config.num_workers
    node_specs = cluster.node_specs()
    placement = place(cluster.total_nodes, 0, n, False)
    ring_nic = min(node_specs[i].nic_bytes_per_sec for i in placement.worker_nodes)
    latency = cluster.latency_s
    if n == 1:
        comm = 0.0
    else:
        steps = 2 * (n - 1)
        comm = steps * (grad_bytes / n / ring_nic + latency)
    comm_effective = comm * (1.0 - BSP_OVERLAP)
    iter_time = max_comp + comm_effective
    return PerfEstimate(
        iteration_time_s=iter_time,
        throughput=config.global_batch / iter_time,
        mean_staleness=0.0,
        compute_time_s=max_comp,
        comm_time_s=comm_effective,
        bottleneck="compute" if max_comp >= comm_effective else "ring",
    )


@dataclass(frozen=True)
class BatchPerfEstimate:
    """Columnar :class:`PerfEstimate` for a batch of configurations.

    Arrays are aligned with the input ``configs`` sequence.  Infeasible
    rows have ``ok=False`` and NaN in every numeric column (``None`` in
    ``bottleneck``); feasible rows are bit-identical to the corresponding
    scalar :func:`estimate` call — the batch engine replays the scalar
    model's exact operation order, it does not approximate it.
    """

    ok: np.ndarray
    iteration_time_s: np.ndarray
    throughput: np.ndarray
    mean_staleness: np.ndarray
    compute_time_s: np.ndarray
    comm_time_s: np.ndarray
    bottleneck: np.ndarray

    def __len__(self) -> int:
        return int(self.ok.shape[0])

    def row(self, index: int) -> PerfEstimate:
        """The scalar estimate for one row; raises for infeasible rows."""
        if not self.ok[index]:
            raise InfeasibleConfigError(f"batch row {index} is infeasible")
        return PerfEstimate(
            iteration_time_s=float(self.iteration_time_s[index]),
            throughput=float(self.throughput[index]),
            mean_staleness=float(self.mean_staleness[index]),
            compute_time_s=float(self.compute_time_s[index]),
            comm_time_s=float(self.comm_time_s[index]),
            bottleneck=str(self.bottleneck[index]),
        )


@dataclass(frozen=True)
class PerfColumns:
    """Columnar view of a configuration batch: one typed array per knob.

    The batch engine's native input.  :meth:`from_configs` extracts the
    arrays from :class:`TrainingConfig` objects; :meth:`from_knob_columns`
    builds them straight from config-space column batches (dict of arrays)
    without ever materialising per-row config objects — that is what lets
    :func:`~repro.harness.estimate_optimum` score thousands of encoded
    candidates with zero per-candidate Python cost.

    Derived columns (``uses_ps``, ``grad_factor``, ``global_batch``)
    replay the corresponding :class:`TrainingConfig` properties exactly.
    """

    num_workers: np.ndarray
    num_ps: np.ndarray
    colocate_ps: np.ndarray
    sync_mode: np.ndarray
    staleness_bound: np.ndarray
    batch_per_worker: np.ndarray
    intra_op_threads: np.ndarray
    io_threads: np.ndarray
    prefetch_batches: np.ndarray
    uses_ps: np.ndarray
    grad_factor: np.ndarray
    global_batch: np.ndarray
    compression_ratio: np.ndarray

    def __len__(self) -> int:
        return int(self.num_workers.shape[0])

    @classmethod
    def from_configs(cls, configs: Sequence[TrainingConfig]) -> "PerfColumns":
        count = len(configs)

        def ints(values) -> np.ndarray:
            return np.fromiter(values, dtype=np.int64, count=count)

        num_workers = ints(c.num_workers for c in configs)
        batch_per_worker = ints(c.batch_per_worker for c in configs)
        sync = np.empty(count, dtype=object)
        sync[:] = [c.sync_mode for c in configs]
        return cls(
            num_workers=num_workers,
            num_ps=ints(c.num_ps for c in configs),
            colocate_ps=np.fromiter(
                (c.colocate_ps for c in configs), dtype=bool, count=count
            ),
            sync_mode=sync,
            staleness_bound=ints(c.staleness_bound for c in configs),
            batch_per_worker=batch_per_worker,
            intra_op_threads=ints(c.intra_op_threads for c in configs),
            io_threads=ints(c.io_threads for c in configs),
            prefetch_batches=ints(c.prefetch_batches for c in configs),
            uses_ps=np.fromiter((c.uses_ps for c in configs), dtype=bool, count=count),
            grad_factor=np.fromiter(
                (c.gradient_bytes_factor for c in configs), dtype=float, count=count
            ),
            global_batch=num_workers * batch_per_worker,
            compression_ratio=np.fromiter(
                (c.compression_ratio for c in configs), dtype=float, count=count
            ),
        )

    @classmethod
    def from_knob_columns(cls, columns: Dict[str, np.ndarray], count: int) -> "PerfColumns":
        """Build from config-space knob columns (name -> array of values).

        Knobs a space does not search over fall back to the
        :data:`~repro.mlsim.config.DEFAULT_CONFIG` value, mirroring
        ``TrainingConfig.from_dict`` on a partial dict.  Values are assumed
        space-validated; no per-row checks are re-run.
        """

        def col(name: str, dtype) -> np.ndarray:
            if name in columns:
                return np.asarray(columns[name], dtype=dtype)
            return np.full(count, getattr(DEFAULT_CONFIG, name), dtype=dtype)

        if "architecture" in columns:
            arch = np.asarray(columns["architecture"])
            uses_ps = arch == "ps"
        else:
            uses_ps = np.full(count, DEFAULT_CONFIG.uses_ps, dtype=bool)
        if "sync_mode" in columns:
            sync = np.asarray(columns["sync_mode"])
        else:
            sync = np.full(count, DEFAULT_CONFIG.sync_mode, dtype=object)
        compression = col("compression_ratio", float)
        if "gradient_precision" in columns:
            precision = np.asarray(columns["gradient_precision"])
            factor = np.empty(count)
            for value in set(precision.tolist()):
                factor[precision == value] = _PRECISION_FACTOR[value]
        else:
            factor = np.full(count, _PRECISION_FACTOR[DEFAULT_CONFIG.gradient_precision])
        num_workers = col("num_workers", np.int64)
        batch_per_worker = col("batch_per_worker", np.int64)
        return cls(
            num_workers=num_workers,
            num_ps=col("num_ps", np.int64),
            colocate_ps=col("colocate_ps", bool),
            sync_mode=sync,
            staleness_bound=col("staleness_bound", np.int64),
            batch_per_worker=batch_per_worker,
            intra_op_threads=col("intra_op_threads", np.int64),
            io_threads=col("io_threads", np.int64),
            prefetch_batches=col("prefetch_batches", np.int64),
            uses_ps=uses_ps,
            grad_factor=factor * compression,
            global_batch=num_workers * batch_per_worker,
            compression_ratio=compression,
        )


def estimate_batch(
    configs: Sequence[TrainingConfig],
    workload: Workload,
    cluster: ClusterSpec,
    node_speed_factors: Sequence[float] | None = None,
) -> BatchPerfEstimate:
    """Closed-form estimates for a whole batch of configurations.

    The vectorised twin of :func:`estimate`; see :func:`estimate_columns`
    for the engine itself.  Feasible rows are **bit-identical** to the
    per-config scalar path (property-tested).

    ``node_speed_factors`` has one entry per *cluster node* (default all
    ones) — unlike scalar :func:`estimate`, which takes per-worker factors,
    because different rows place their workers on different nodes.  Row
    ``i`` matches ``estimate(configs[i], ..., speed_factors=[factors[n]
    for n in placement.worker_nodes])``.

    Infeasible rows come back as ``ok=False`` with NaN metrics instead of
    raising, so one infeasible candidate cannot poison a 3000-row batch.

    Inputs need not be canonical: the sync-mode/architecture selection
    only ever reads the fields :meth:`TrainingConfig.canonical` would
    keep (all-reduce rows ignore PS knobs, BSP/ASP rows ignore the
    staleness bound), so canonicalisation is a no-op for the estimate.
    """
    return estimate_columns(
        PerfColumns.from_configs(configs), workload, cluster, node_speed_factors
    )


def estimate_columns(
    cols: PerfColumns,
    workload: Workload,
    cluster: ClusterSpec,
    node_speed_factors: Sequence[float] | None = None,
) -> BatchPerfEstimate:
    """The batch performance engine, operating on columnar inputs.

    Fully vectorised over rows *and* worker ranks: feasibility is checked
    as array masks, and the compute/push/pull/ring terms are evaluated on
    a ``(rows, max_workers)`` padded node gather for all sync modes at
    once.  Placement never calls :func:`~repro.cluster.place` per row —
    node order is ascending, so a row's worker nodes are the closed-form
    range ``[num_ps, num_ps + num_workers)`` (dedicated PS) or
    ``[0, num_workers)`` (colocated / all-reduce), and PS nodes are
    ``[0, num_ps)``; every row sharing a topology reuses the same node
    attribute tables through the gather.

    Bit-parity with scalar :func:`estimate` is maintained by replaying its
    operation order exactly: per-worker sums accumulate rank-by-rank in
    placement order (never ``np.sum``'s pairwise tree), and the
    transcendentals (straggler tail, barrier log) are computed with
    ``math.*`` per distinct worker count, never with vectorised libm
    (which may differ in the last ulp).
    """
    count = len(cols)
    total_nodes = cluster.total_nodes
    if node_speed_factors is None:
        factors = np.ones(total_nodes)
    else:
        factors = np.asarray(node_speed_factors, dtype=float)
        if factors.shape != (total_nodes,):
            raise ValueError(
                f"need {total_nodes} node speed factors, got {factors.shape}"
            )

    model = workload.model
    workers = cols.num_workers
    batch_pw = cols.batch_per_worker
    io = cols.io_threads

    # -- vectorised check_feasible ---------------------------------------
    ps_eff = np.where(cols.uses_ps, cols.num_ps, 0)
    coloc_eff = cols.uses_ps & cols.colocate_ps
    needed_nodes = np.where(coloc_eff, np.maximum(ps_eff, workers), ps_eff + workers)
    worker_mem = min(spec.mem_gb for spec, _ in cluster.pools) * 1e9
    min_cores = min(spec.cores for spec, _ in cluster.pools)
    mem_needed = 3.0 * model.param_bytes + batch_pw * model.activation_bytes_per_sample
    ok = (
        (workers >= 1)
        & (needed_nodes <= total_nodes)
        & (mem_needed <= worker_mem)
        & (batch_pw >= model.min_batch_per_worker)
        & (io < min_cores)
    )

    nan = np.full(count, np.nan)
    out = BatchPerfEstimate(
        ok=ok,
        iteration_time_s=nan.copy(),
        throughput=nan.copy(),
        mean_staleness=nan.copy(),
        compute_time_s=nan.copy(),
        comm_time_s=nan.copy(),
        bottleneck=np.full(count, None, dtype=object),
    )
    feas = np.nonzero(ok)[0]
    if feas.size == 0:
        return out

    # -- compressed feasible subset + per-node attribute tables ----------
    f_w = workers[feas]
    f_ps = ps_eff[feas]
    f_coloc = coloc_eff[feas]
    f_uses_ps = cols.uses_ps[feas]
    f_batch = batch_pw[feas]
    f_io = io[feas]
    f_intra = cols.intra_op_threads[feas]
    f_prefetch = cols.prefetch_batches[feas]
    f_bound = cols.staleness_bound[feas]
    f_sync = cols.sync_mode[feas]
    f_grad = model.param_bytes * cols.grad_factor[feas]
    f_gb = cols.global_batch[feas]
    f_flops = model.flops_per_sample * f_batch

    node_specs = cluster.node_specs()
    gflops_by_node = np.array([spec.gflops for spec in node_specs])
    cores_by_node = np.array([spec.cores for spec in node_specs], dtype=np.int64)
    nic_by_node = np.array([spec.nic_bytes_per_sec for spec in node_specs])
    # min NIC over the PS prefix [0, num_ps) — min is exactly associative,
    # so a prefix-scan matches the scalar Python min().
    nic_prefix_min = np.minimum.accumulate(nic_by_node)
    latency = cluster.latency_s
    jitter_cv = cluster.jitter_cv

    # Input pipeline: node-spec independent.
    bytes_per_sample = workload.dataset.bytes_per_sample
    storage_rate = STORAGE_BYTES_PER_SEC / bytes_per_sample
    decode_rate = f_io * DECODE_BYTES_PER_CORE_PER_SEC / bytes_per_sample
    input_rate = np.minimum(storage_rate, decode_rate)
    input_time = np.zeros(feas.size)
    fed = f_io > 0
    input_time[fed] = f_batch[fed] / input_rate[fed]

    # -- per-worker compute times on a (rows, max_workers) gather --------
    # Worker rank r of a row sits on node offset + r (see docstring); the
    # pad beyond a row's worker count gathers clipped-but-valid node ids,
    # producing finite garbage that every reduction below masks out.
    offset = np.where(f_uses_ps & ~f_coloc, f_ps, 0)
    max_w = int(f_w.max())
    ranks = np.arange(max_w)
    node_ids = np.minimum(offset[:, None] + ranks[None, :], total_nodes - 1)
    active = ranks[None, :] < f_w[:, None]

    base_rate = gflops_by_node[node_ids] * 1e9 * factors[node_ids]
    g_cores = cores_by_node[node_ids]
    available = g_cores - f_io[:, None]
    intra2 = f_intra[:, None]
    threads = np.where((intra2 == 0) | (intra2 >= available), available, intra2)
    fraction = threads / g_cores
    scaled = base_rate * fraction * (1.0 + 0.1 * (1.0 - fraction))
    rate = np.where(threads >= g_cores, base_rate, scaled)
    train_time = f_flops[:, None] / rate + ITERATION_OVERHEAD_S
    in2 = input_time[:, None]
    eff = np.where(
        in2 <= 0.0,
        train_time,
        np.where(
            f_prefetch[:, None] >= 1, np.maximum(train_time, in2), train_time + in2
        ),
    )

    sum_comp = np.zeros(feas.size)
    for r in range(max_w):  # scalar sum() order, not pairwise
        sum_comp = np.where(active[:, r], sum_comp + eff[:, r], sum_comp)
    mean_comp = sum_comp / f_w
    tail_by_w = np.array(
        [1.0] + [_straggler_tail_factor(w, jitter_cv) for w in range(1, max_w + 1)]
    )
    max_comp = np.where(active, eff, -np.inf).max(axis=1) * tail_by_w[f_w]
    worker_nic = np.where(active, nic_by_node[node_ids], np.inf).min(axis=1)

    # -- ring all-reduce rows --------------------------------------------
    ar = np.nonzero(~f_uses_ps)[0]
    if ar.size:
        a_w = f_w[ar]
        a_grad = f_grad[ar]
        steps = 2 * (a_w - 1)
        with np.errstate(invalid="ignore"):
            comm = np.where(
                a_w == 1, 0.0, steps * (a_grad / a_w / worker_nic[ar] + latency)
            )
        comm_effective = comm * (1.0 - BSP_OVERLAP)
        iter_time = max_comp[ar] + comm_effective
        idx = feas[ar]
        out.iteration_time_s[idx] = iter_time
        out.throughput[idx] = f_gb[ar] / iter_time
        out.mean_staleness[idx] = 0.0
        out.compute_time_s[idx] = max_comp[ar]
        out.comm_time_s[idx] = comm_effective
        out.bottleneck[idx] = np.where(
            max_comp[ar] >= comm_effective, "compute", "ring"
        ).astype(object)

    # -- parameter-server rows: all three sync modes ---------------------
    ps = np.nonzero(f_uses_ps)[0]
    if not ps.size:
        return out
    p_w = f_w[ps]
    p_ps = f_ps[ps]
    p_grad = f_grad[ps]
    p_gb = f_gb[ps]
    p_batch = f_batch[ps]
    p_coloc = f_coloc[ps]
    p_max_comp = max_comp[ps]
    p_nic_w = worker_nic[ps]
    p_nic_ps = nic_prefix_min[p_ps - 1]
    # Colocation: pulls and parameter egress share the node NIC.
    p_nic_w = np.where(p_coloc, p_nic_w * 0.5, p_nic_w)
    p_nic_ps = np.where(p_coloc, p_nic_ps * 0.5, p_nic_ps)
    shard_bytes = p_grad / p_ps

    push_ps_limited = p_w * shard_bytes / p_nic_ps
    push_worker_limited = p_grad / p_nic_w
    push_time = np.maximum(push_ps_limited, push_worker_limited) + latency
    comm_sync = (push_time + push_time) * (1.0 - BSP_OVERLAP)
    barrier_by_w = np.array(
        [latency * max(1.0, math.log2(max(2, w))) for w in range(max_w + 1)]
    )
    barrier = barrier_by_w[p_w]
    bsp_iter = p_max_comp + comm_sync + barrier
    bsp_throughput = p_gb / bsp_iter

    solo_comm = 2.0 * (shard_bytes * p_ps / p_nic_w + latency)
    overlap_comm = solo_comm * (1.0 - BSP_OVERLAP)
    nic_term = 1.0 / (2.0 * p_grad / p_nic_w)
    eff_ps = eff[ps]
    act_ps = active[ps]
    compute_rate = np.zeros(ps.size)
    worker_nic_rate = np.zeros(ps.size)
    for r in range(max_w):  # scalar sum() order again
        term = 1.0 / (eff_ps[:, r] + overlap_comm)
        compute_rate = np.where(act_ps[:, r], compute_rate + term, compute_rate)
        worker_nic_rate = np.where(
            act_ps[:, r], worker_nic_rate + nic_term, worker_nic_rate
        )
    ps_nic_rate = p_nic_ps * p_ps / p_grad
    asp_rate = np.minimum(np.minimum(compute_rate, worker_nic_rate), ps_nic_rate)
    asp_throughput = asp_rate * p_batch
    asp_staleness = np.maximum(0.0, p_w - 1.0)

    p_bound = f_bound[ps]
    blend = p_bound / (p_bound + 2.0)
    ssp_throughput = bsp_throughput + (asp_throughput - bsp_throughput) * blend
    ssp_staleness = np.where(
        p_bound > 0, np.minimum(asp_staleness, p_bound.astype(float)) * blend, 0.0
    )

    sync_p = f_sync[ps]
    bsp_mask = sync_p == "bsp"
    asp_mask = sync_p == "asp"
    ssp_mask = sync_p == "ssp"
    idx = feas[ps]
    out.iteration_time_s[idx] = np.where(
        bsp_mask,
        bsp_iter,
        np.where(asp_mask, p_w / asp_rate, p_gb / ssp_throughput),
    )
    out.throughput[idx] = np.where(
        bsp_mask, bsp_throughput, np.where(asp_mask, asp_throughput, ssp_throughput)
    )
    out.mean_staleness[idx] = np.where(
        bsp_mask, 0.0, np.where(asp_mask, asp_staleness, ssp_staleness)
    )
    out.compute_time_s[idx] = np.where(bsp_mask, p_max_comp, mean_comp[ps])
    out.comm_time_s[idx] = np.where(
        bsp_mask, comm_sync + barrier, np.where(asp_mask, solo_comm, comm_sync)
    )
    bottleneck = np.empty(ps.size, dtype=object)
    bottleneck[bsp_mask] = np.where(
        p_max_comp >= comm_sync,
        "compute",
        np.where(push_ps_limited >= push_worker_limited, "ps-nic", "worker-nic"),
    ).astype(object)[bsp_mask]
    bottleneck[asp_mask] = np.where(
        asp_rate == compute_rate,
        "compute",
        np.where(asp_rate == ps_nic_rate, "ps-nic", "worker-nic"),
    ).astype(object)[asp_mask]
    bottleneck[ssp_mask] = "mixed"
    out.bottleneck[idx] = bottleneck
    return out
