"""Event-driven parameter-server training simulator.

This is the reference fidelity mode: every worker is a simulation process
that computes, pushes sharded gradients over the network fabric, and pulls
fresh parameters, under BSP, ASP, or SSP coordination.  NIC contention,
straggler tails, barrier waits, and staleness all emerge from the event
timeline rather than from closed-form approximations.

The analytic model (:mod:`repro.mlsim.perf`) is validated against this
simulator in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster import Cluster, place
from repro.mlsim.config import TrainingConfig
from repro.mlsim.perf import ITERATION_OVERHEAD_S, check_feasible
from repro.mlsim.pipeline import worker_iteration_base_seconds
from repro.sim import RngRegistry, Signal, Simulator
from repro.workloads import Workload


@dataclass
class TrainingTrace:
    """What one simulated probe run observed.

    ``iteration_times`` holds the completion timestamps of each global
    iteration (BSP) or each individual update (ASP/SSP).  ``staleness``
    holds the gradient staleness, in updates, of every push.
    """

    completion_times: List[float] = field(default_factory=list)
    staleness: List[float] = field(default_factory=list)
    samples_processed: float = 0.0
    elapsed_s: float = 0.0

    @property
    def throughput(self) -> float:
        """Samples per simulated second over the probe window."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.samples_processed / self.elapsed_s

    @property
    def mean_staleness(self) -> float:
        """Average staleness across all observed pushes."""
        if not self.staleness:
            return 0.0
        return sum(self.staleness) / len(self.staleness)

    def iteration_time_stats(self) -> tuple:
        """(mean, p95) of inter-completion gaps."""
        if len(self.completion_times) < 2:
            return (0.0, 0.0)
        gaps = [
            b - a
            for a, b in zip(self.completion_times, self.completion_times[1:])
            if b >= a
        ]
        if not gaps:
            return (0.0, 0.0)
        gaps.sort()
        mean = sum(gaps) / len(gaps)
        p95 = gaps[min(len(gaps) - 1, int(math.ceil(0.95 * len(gaps))) - 1)]
        return (mean, p95)


class _Coordinator:
    """Shared synchronisation state for all workers in one probe run.

    Implements the SSP contract: a worker may start iteration ``t`` only if
    the slowest *active* worker has finished iteration ``t - bound - 1``.
    BSP is the special case ``bound = 0``; ASP uses an effectively infinite
    bound.  Workers that exhaust the probe's global update budget *retire*:
    they leave the minimum computation so they cannot deadlock peers that
    still owe iterations.
    """

    def __init__(self, sim: Simulator, num_workers: int, bound: int) -> None:
        self.sim = sim
        self.num_workers = num_workers
        self.bound = bound
        self.worker_iteration = [0] * num_workers
        self.active = [True] * num_workers
        self.global_updates = 0
        self._blocked: List[tuple] = []  # (needed_min_iter, signal)

    def min_iteration(self) -> int:
        active_iters = [
            it for it, alive in zip(self.worker_iteration, self.active) if alive
        ]
        if not active_iters:
            return max(self.worker_iteration, default=0)
        return min(active_iters)

    def may_start(self, rank: int) -> Optional[Signal]:
        """None if the worker may proceed, else a signal to wait on."""
        if self.worker_iteration[rank] <= self.min_iteration() + self.bound:
            return None
        signal = Signal(self.sim)
        needed = self.worker_iteration[rank] - self.bound
        self._blocked.append((needed, signal))
        return signal

    def _wake_unblocked(self) -> None:
        current_min = self.min_iteration()
        still_blocked = []
        for needed, signal in self._blocked:
            if current_min >= needed:
                signal.complete(self.sim.now)
            else:
                still_blocked.append((needed, signal))
        self._blocked = still_blocked

    def finished_iteration(self, rank: int) -> None:
        """Record completion and wake any workers the new minimum unblocks."""
        self.worker_iteration[rank] += 1
        self.global_updates += 1
        self._wake_unblocked()

    def retire(self, rank: int) -> None:
        """Remove a finished worker from the synchronisation frontier."""
        self.active[rank] = False
        self._wake_unblocked()


def _worker_process(
    sim: Simulator,
    cluster: Cluster,
    config: TrainingConfig,
    workload: Workload,
    coordinator: _Coordinator,
    trace: TrainingTrace,
    rank: int,
    worker_node: int,
    ps_nodes: List[int],
    total_updates: int,
    rng,
):
    """One worker replica's probe-run lifecycle (generator process).

    The probe measures steady-state throughput: workers keep iterating
    until the *global* update budget is spent, so fast workers lap slow
    ones under ASP/SSP exactly as they would in a real cluster, and the
    elapsed window is not dominated by a straggler finishing a fixed quota.
    """
    node = cluster.node(worker_node)
    flops = workload.model.flops_per_sample * config.batch_per_worker
    grad_bytes = workload.model.param_bytes * config.gradient_bytes_factor
    shard_bytes = grad_bytes / len(ps_nodes)
    jitter_cv = cluster.spec.jitter_cv
    cost_cv = workload.dataset.sample_cost_cv

    last_pull_updates = 0
    while coordinator.global_updates < total_updates:
        gate = coordinator.may_start(rank)
        if gate is not None:
            yield gate
            if coordinator.global_updates >= total_updates:
                break

        # Compute phase (incl. input pipeline): deterministic base time
        # times stochastic jitter.
        base = worker_iteration_base_seconds(
            node, flops, config, workload.dataset, ITERATION_OVERHEAD_S
        )
        sigma = math.sqrt(jitter_cv**2 + (cost_cv**2) / max(1, config.batch_per_worker))
        factor = float(rng.lognormal(mean=0.0, sigma=sigma)) if sigma > 0 else 1.0
        yield sim.timeout(base * factor)

        # Push phase: one flow per shard, in parallel.
        pushes = [
            cluster.fabric.transfer(worker_node, ps_node, shard_bytes)
            for ps_node in ps_nodes
        ]
        yield sim.all_of(pushes)
        if coordinator.bound == 0:
            # BSP aggregates all gradients of a round against one snapshot:
            # same-round peer updates are not staleness.
            trace.staleness.append(0.0)
        else:
            trace.staleness.append(
                float(coordinator.global_updates - last_pull_updates)
            )
        coordinator.finished_iteration(rank)

        # Pull phase: fetch fresh parameters from every shard.
        pulls = [
            cluster.fabric.transfer(ps_node, worker_node, shard_bytes)
            for ps_node in ps_nodes
        ]
        yield sim.all_of(pulls)
        last_pull_updates = coordinator.global_updates

        trace.completion_times.append(sim.now)
        trace.samples_processed += config.batch_per_worker
    coordinator.retire(rank)


def run_ps_probe(
    cluster: Cluster,
    config: TrainingConfig,
    workload: Workload,
    num_iterations: int,
    rng: RngRegistry,
) -> TrainingTrace:
    """Simulate a probe of ``num_iterations * num_workers`` global updates
    under the PS architecture.

    Returns the :class:`TrainingTrace` of the run.  The caller is expected
    to have validated feasibility (see :func:`repro.mlsim.perf.check_feasible`).
    """
    if not config.uses_ps:
        raise ValueError("run_ps_probe requires a PS-architecture config")
    check_feasible(config, workload, cluster.spec)

    sim = cluster.sim
    placement = place(
        len(cluster), config.num_ps, config.num_workers, config.colocate_ps
    )
    coordinator = _Coordinator(sim, config.num_workers, config.effective_staleness_bound)
    trace = TrainingTrace()
    total_updates = num_iterations * config.num_workers

    started = sim.now
    processes = []
    for rank, node_id in enumerate(placement.worker_nodes):
        processes.append(
            sim.spawn(
                _worker_process(
                    sim,
                    cluster,
                    config,
                    workload,
                    coordinator,
                    trace,
                    rank,
                    node_id,
                    list(placement.ps_nodes),
                    total_updates,
                    rng.stream(f"worker.{rank}"),
                ),
                name=f"worker-{rank}",
            )
        )
    sim.run()
    trace.elapsed_s = sim.now - started
    if any(p.alive for p in processes):
        raise RuntimeError("probe ended with live worker processes (deadlock?)")
    return trace
