"""The training environment: what a tuner can actually observe.

A real configuration tuner launches a short *probe run* of the training job
under a candidate configuration and records its throughput (and, if it runs
long enough, an extrapolated time-to-accuracy).  :class:`TrainingEnvironment`
reproduces exactly that interface on top of the simulators:

- ``measure(config)`` → :class:`Measurement` with throughput, staleness,
  estimated time-to-accuracy, and the probe's cost in simulated seconds;
- failed configurations (placement impossible, worker OOM) come back as
  ``ok=False`` measurements, not exceptions — tuners must cope with crashes
  exactly as they would on a real cluster;
- measurements carry multiplicative lognormal noise, and the environment
  tracks the cumulative probe cost so the harness can report search cost in
  simulated machine-hours.

Two fidelity modes share one external behaviour: ``"analytic"`` uses the
closed-form model (fast — used for the large benchmark sweeps), ``"event"``
runs the discrete-event simulators (reference — used for validation and the
response-surface experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster import Cluster, ClusterSpec, PlacementError, place
from repro.mlsim.allreduce import run_allreduce_probe
from repro.mlsim.config import TrainingConfig
from repro.mlsim.drift import DriftSchedule, DriftState
from repro.mlsim.perf import (
    STARTUP_OVERHEAD_S,
    InfeasibleConfigError,
    PerfColumns,
    estimate,
    estimate_batch,
    estimate_columns,
)
from repro.mlsim.ps import run_ps_probe
from repro.sim import RngRegistry, Simulator
from repro.workloads import Workload

FIDELITIES = ("analytic", "event")
OBJECTIVES = ("throughput", "tta")


@dataclass(frozen=True)
class Measurement:
    """Result of probing one configuration.

    ``objective`` is oriented so that **larger is always better**
    (throughput in samples/s, or negated time-to-accuracy in seconds).
    Failed probes have ``ok=False`` and ``objective=None``.
    """

    config: TrainingConfig
    ok: bool
    fidelity: str
    error: Optional[str] = None
    throughput: float = 0.0
    iteration_time_s: float = 0.0
    mean_staleness: float = 0.0
    tta_s: float = float("inf")
    probe_cost_s: float = 0.0
    objective: Optional[float] = None


class TrainingEnvironment:
    """Simulated cluster + workload exposing the tuner-facing probe API.

    Parameters
    ----------
    workload:
        The training job being tuned.
    cluster:
        Static cluster description.  Node heterogeneity (jitter, straggler
        assignment) is fixed by ``seed`` and identical across all probes,
        exactly like tuning against one physical cluster.
    seed:
        Root seed; all probe noise derives from it.
    fidelity:
        ``"analytic"`` (closed-form, fast) or ``"event"`` (discrete-event).
    objective_name:
        ``"throughput"`` (maximise samples/s) or ``"tta"`` (minimise
        time-to-accuracy; the objective is its negation).
    probe_iterations:
        Training iterations per worker in one measurement probe.
    noise_cv:
        Coefficient of variation of multiplicative measurement noise.
    transient_failure_rate:
        Probability that an otherwise-valid probe crashes anyway (preempted
        VM, OOM-killed daemon, network partition).  Real tuning logs show a
        few percent of such failures; tuners must tolerate them.
    drift:
        Optional :class:`~repro.mlsim.drift.DriftSchedule` making the
        environment non-stationary: per-node speed scaling, workload
        intensity shifts and failure-rate boosts, all pure functions of
        the environment's virtual clock (``clock_s``, stamped by the
        executors before each probe).  ``None`` keeps every code path —
        and every same-seed trajectory — bit-identical to a static
        environment.
    """

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        seed: int = 0,
        fidelity: str = "analytic",
        objective_name: str = "throughput",
        probe_iterations: int = 30,
        noise_cv: float = 0.03,
        transient_failure_rate: float = 0.0,
        drift: Optional[DriftSchedule] = None,
    ) -> None:
        if fidelity not in FIDELITIES:
            raise ValueError(f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
        if objective_name not in OBJECTIVES:
            raise ValueError(
                f"objective_name must be one of {OBJECTIVES}, got {objective_name!r}"
            )
        if probe_iterations < 2:
            raise ValueError("probe_iterations must be >= 2")
        if noise_cv < 0:
            raise ValueError("noise_cv must be non-negative")
        if not 0.0 <= transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1)")
        self.workload = workload
        self.cluster = cluster
        self.seed = seed
        self.fidelity = fidelity
        self.objective_name = objective_name
        self.probe_iterations = probe_iterations
        self.noise_cv = noise_cv
        self.transient_failure_rate = transient_failure_rate
        self.drift = drift
        # Virtual clock for drift evaluation (executors stamp it with the
        # session wall-clock before each probe) and a transient per-probe
        # failure boost (failure-rate spikes from the fleet's injector).
        # Both are inert while ``drift is None`` / the boost is 0.0.
        self.clock_s = 0.0
        self.extra_failure_rate = 0.0
        self.trials_run = 0
        self.total_probe_cost_s = 0.0
        # The cluster's persistent heterogeneity: instantiate once so both
        # fidelity modes see identical per-node speed factors.
        reference = Cluster(Simulator(), cluster, RngRegistry(seed))
        self._speed_factors = [node.speed_factor for node in reference.nodes]

    # -- probe API ---------------------------------------------------------

    def reset_counters(self) -> None:
        """Rewind the probe counters to a fresh-environment state.

        Measurement noise is keyed by ``trials_run``, so rewinding it
        makes a reused environment replay the exact per-trial-index noise
        stream of a newly constructed one — what
        :meth:`repro.core.fleet.EnvironmentPool.reset` relies on to keep
        repeated sessions over one pool comparable.
        """
        self.trials_run = 0
        self.total_probe_cost_s = 0.0
        self.clock_s = 0.0
        self.extra_failure_rate = 0.0

    def set_clock(self, t: float) -> None:
        """Advance the virtual clock the drift schedule is evaluated at.

        Executors stamp the session's current wall-clock here before every
        probe; without a drift schedule the clock is inert.
        """
        self.clock_s = float(t)

    def measure(
        self,
        config: TrainingConfig,
        probe_iterations: Optional[int] = None,
        charge_startup: bool = True,
    ) -> Measurement:
        """Probe one configuration; never raises for bad configs.

        ``probe_iterations`` overrides the environment default — shorter
        probes cost less but return noisier measurements (noise scales as
        ``1/sqrt(iterations)``), which is the mechanism early-termination
        tuners exploit.  ``charge_startup=False`` models *continuing* an
        already-running probe (promotion after an early-termination check):
        only the extra iterations are charged, not a second job launch.
        """
        config = config.canonical()
        iterations = probe_iterations if probe_iterations is not None else self.probe_iterations
        if iterations < 2:
            raise ValueError("probe_iterations must be >= 2")
        trial_index = self.trials_run
        self.trials_run += 1
        failure_rate = self.transient_failure_rate
        extra = self.extra_failure_rate
        if self.drift is not None:
            extra += self._drift_state().failure_rate_boost
        if extra > 0:
            failure_rate = min(failure_rate + extra, 0.999)
        if failure_rate > 0:
            failure_rng = (
                RngRegistry(self.seed).fork(trial_index + 1).stream("transient.failure")
            )
            if failure_rng.random() < failure_rate:
                # The job died partway through the probe: a random fraction
                # of the measurement time was wasted on top of startup.  A
                # continuation probe (charge_startup=False) pays only the
                # post-startup wasted time, matching the success path.
                wasted = STARTUP_OVERHEAD_S * (1.0 + 2.0 * failure_rng.random())
                measurement = Measurement(
                    config=config,
                    ok=False,
                    fidelity=self.fidelity,
                    error="transient worker failure (injected)",
                    probe_cost_s=(
                        wasted
                        if charge_startup
                        else max(0.0, wasted - STARTUP_OVERHEAD_S)
                    ),
                )
                self.total_probe_cost_s += measurement.probe_cost_s
                return measurement
        try:
            if self.fidelity == "analytic":
                measurement = self._measure_analytic(config, trial_index, iterations)
            else:
                measurement = self._measure_event(config, trial_index, iterations)
            if not charge_startup:
                measurement = replace(
                    measurement,
                    probe_cost_s=max(0.0, measurement.probe_cost_s - STARTUP_OVERHEAD_S),
                )
        except InfeasibleConfigError as exc:
            # A crashed trial still wastes the startup time on a real
            # cluster: charge it so tuners cannot probe garbage for free.
            measurement = Measurement(
                config=config,
                ok=False,
                fidelity=self.fidelity,
                error=str(exc),
                probe_cost_s=STARTUP_OVERHEAD_S if charge_startup else 0.0,
            )
        self.total_probe_cost_s += measurement.probe_cost_s
        return measurement

    def measure_batch(
        self,
        configs: Sequence[TrainingConfig],
        probe_iterations: Optional[int] = None,
        charge_startup: bool = True,
    ) -> List[Measurement]:
        """Probe many configurations in one call.

        Identical to ``[self.measure(c, ...) for c in configs]`` — same
        trial-index assignment, same per-trial noise and failure streams
        (they are keyed by trial index, not by call order), same
        measurements bit-for-bit — but the analytic fidelity evaluates the
        whole batch through :func:`~repro.mlsim.perf.estimate_batch`
        instead of one closed-form solve per probe.  The event fidelity
        has no batched form and falls back to the scalar loop.
        """
        configs = [config.canonical() for config in configs]
        iterations = (
            probe_iterations if probe_iterations is not None else self.probe_iterations
        )
        if iterations < 2:
            raise ValueError("probe_iterations must be >= 2")
        if self.fidelity != "analytic":
            return [
                self.measure(config, probe_iterations, charge_startup)
                for config in configs
            ]
        batch = estimate_batch(
            configs,
            self.workload,
            self.cluster,
            node_speed_factors=self._node_speed_factors(),
        )
        results: List[Measurement] = []
        for i, config in enumerate(configs):
            trial_index = self.trials_run
            self.trials_run += 1
            failure_rate = self.transient_failure_rate
            extra = self.extra_failure_rate
            if self.drift is not None:
                extra += self._drift_state().failure_rate_boost
            if extra > 0:
                failure_rate = min(failure_rate + extra, 0.999)
            if failure_rate > 0:
                failure_rng = (
                    RngRegistry(self.seed)
                    .fork(trial_index + 1)
                    .stream("transient.failure")
                )
                if failure_rng.random() < failure_rate:
                    wasted = STARTUP_OVERHEAD_S * (1.0 + 2.0 * failure_rng.random())
                    measurement = Measurement(
                        config=config,
                        ok=False,
                        fidelity=self.fidelity,
                        error="transient worker failure (injected)",
                        probe_cost_s=(
                            wasted
                            if charge_startup
                            else max(0.0, wasted - STARTUP_OVERHEAD_S)
                        ),
                    )
                    self.total_probe_cost_s += measurement.probe_cost_s
                    results.append(measurement)
                    continue
            if batch.ok[i]:
                measurement = self._finish(
                    config,
                    float(batch.throughput[i]),
                    float(batch.iteration_time_s[i]),
                    float(batch.mean_staleness[i]),
                    trial_index,
                    iterations,
                )
                if not charge_startup:
                    measurement = replace(
                        measurement,
                        probe_cost_s=max(
                            0.0, measurement.probe_cost_s - STARTUP_OVERHEAD_S
                        ),
                    )
            else:
                measurement = Measurement(
                    config=config,
                    ok=False,
                    fidelity=self.fidelity,
                    error=self._infeasible_error(config),
                    probe_cost_s=STARTUP_OVERHEAD_S if charge_startup else 0.0,
                )
            self.total_probe_cost_s += measurement.probe_cost_s
            results.append(measurement)
        return results

    def true_objective(
        self, config: TrainingConfig, at_s: Optional[float] = None
    ) -> Optional[float]:
        """Noise-free analytic objective; None for infeasible configs.

        Used by the harness to normalise tuner results against the true
        optimum — not available to tuners.  Under a drift schedule the
        objective is time-varying; ``at_s`` evaluates it at a specific
        virtual timestamp (default: the environment's current clock).
        """
        config = config.canonical()
        try:
            perf = estimate(
                config,
                self.workload,
                self.cluster,
                self._worker_speeds(config, at_s=at_s),
            )
        except InfeasibleConfigError:
            return None
        throughput = perf.throughput
        if self.drift is not None:
            state = self._drift_state(at_s)
            if state.intensity != 1.0:
                throughput = throughput / state.intensity
        if self.objective_name == "throughput":
            return throughput
        return -self._tta(
            throughput,
            perf.mean_staleness,
            config.global_batch,
            config.compression_ratio,
        )

    def true_objective_batch(
        self, configs: Sequence[TrainingConfig], at_s: Optional[float] = None
    ) -> np.ndarray:
        """Noise-free objectives for a whole batch; NaN marks infeasible.

        The vectorised twin of :meth:`true_objective`: feasible rows are
        bit-identical to the scalar call at the same ``at_s``, infeasible
        rows come back NaN (the array analogue of the scalar ``None``).
        This is what lets :func:`~repro.harness.estimate_optimum` evaluate
        thousands of candidates per call instead of one.

        No canonicalisation pass: :func:`~repro.mlsim.perf.estimate_batch`
        accepts raw configs, and the objective terms read downstream
        (``global_batch``, ``compression_ratio``) are canonicalisation
        invariants.
        """
        return self.true_objective_columns(PerfColumns.from_configs(configs), at_s)

    def true_objective_columns(
        self, columns: PerfColumns, at_s: Optional[float] = None
    ) -> np.ndarray:
        """:meth:`true_objective_batch` on a columnar batch.

        The zero-object entry point: callers that already hold knob
        columns (:func:`~repro.harness.estimate_optimum` stacking encoded
        candidate matrices) skip per-row ``TrainingConfig`` construction
        entirely.  Same contract — feasible rows bit-identical to the
        scalar path, NaN elsewhere.
        """
        batch = estimate_columns(
            columns,
            self.workload,
            self.cluster,
            node_speed_factors=self._node_speed_factors(at_s),
        )
        throughput = batch.throughput
        if self.drift is not None:
            state = self._drift_state(at_s)
            if state.intensity != 1.0:
                throughput = throughput / state.intensity
        if self.objective_name == "throughput":
            values = throughput
        else:
            values = -self._tta_batch(
                throughput,
                batch.mean_staleness,
                columns.global_batch,
                columns.compression_ratio,
            )
        return np.where(batch.ok, values, np.nan)

    # -- internals -----------------------------------------------------------

    def _drift_state(self, at_s: Optional[float] = None) -> DriftState:
        """The drift condition at ``at_s`` (default: the current clock)."""
        if self.drift is None:
            return DriftState()
        t = self.clock_s if at_s is None else float(at_s)
        return self.drift.state_at(t, self.cluster.total_nodes)

    def _worker_speeds(self, config: TrainingConfig, at_s: Optional[float] = None):
        try:
            placement = place(
                self.cluster.total_nodes,
                config.num_ps if config.uses_ps else 0,
                config.num_workers,
                config.colocate_ps if config.uses_ps else False,
            )
        except PlacementError as exc:
            raise InfeasibleConfigError(str(exc)) from exc
        if self.drift is None:
            return [self._speed_factors[n] for n in placement.worker_nodes]
        state = self._drift_state(at_s)
        if state.is_identity:
            return [self._speed_factors[n] for n in placement.worker_nodes]
        return [
            self._speed_factors[n] * state.node_scale(n)
            for n in placement.worker_nodes
        ]

    def _node_speed_factors(self, at_s: Optional[float] = None) -> np.ndarray:
        """Per-*node* speed factors at ``at_s`` (drift included).

        The batched estimator indexes by node id because different rows
        place their workers on different nodes; ``_worker_speeds`` is the
        same data gathered for one config's placement.
        """
        if self.drift is None:
            return np.asarray(self._speed_factors, dtype=float)
        state = self._drift_state(at_s)
        if state.is_identity:
            return np.asarray(self._speed_factors, dtype=float)
        return np.asarray(
            [
                factor * state.node_scale(node)
                for node, factor in enumerate(self._speed_factors)
            ],
            dtype=float,
        )

    def _infeasible_error(self, config: TrainingConfig) -> str:
        """The scalar path's error message for an infeasible config.

        The batch mask only says *that* a row is infeasible; the message
        (placement vs memory vs batch floor) comes from replaying the
        scalar checks, which raise before any heavy work.
        """
        try:
            estimate(config, self.workload, self.cluster, self._worker_speeds(config))
        except InfeasibleConfigError as exc:
            return str(exc)
        raise RuntimeError(
            "estimate_batch marked a row infeasible that the scalar model accepts"
        )

    def _tta_batch(
        self,
        throughput: np.ndarray,
        staleness: np.ndarray,
        global_batch: np.ndarray,
        compression_ratio: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`_tta`, bit-identical per feasible row.

        Replays ``ConvergenceProfile.iterations_to_target``'s operation
        order over arrays; the compression penalty's ``log`` is evaluated
        with ``math.log`` per *unique* ratio (a handful of categorical
        levels) so the transcendental matches the scalar path exactly.
        """
        convergence = self.workload.model.convergence
        scale = convergence.ref_batch / global_batch
        saturation = (1.0 + global_batch / convergence.critical_batch) / (
            1.0 + convergence.ref_batch / convergence.critical_batch
        )
        staleness_term = 1.0 + convergence.staleness_penalty * staleness
        compression_term = np.ones(len(global_batch))
        for ratio in np.unique(compression_ratio):
            if ratio < 1.0:
                compression_term[compression_ratio == ratio] = (
                    1.0 + convergence.compression_sensitivity * math.log(1.0 / ratio)
                )
        iters = (
            convergence.base_iters * scale * saturation * staleness_term
        ) * compression_term
        with np.errstate(invalid="ignore", divide="ignore"):
            tta = STARTUP_OVERHEAD_S + iters * global_batch / throughput
        return np.where(throughput > 0, tta, float("inf"))

    def _noise(self, trial_index: int, iterations: int) -> float:
        if self.noise_cv <= 0:
            return 1.0
        # Averaging over fewer iterations yields a noisier estimate.
        sigma = self.noise_cv * (self.probe_iterations / iterations) ** 0.5
        rng = RngRegistry(self.seed).fork(trial_index + 1).stream("measurement.noise")
        return float(rng.lognormal(mean=0.0, sigma=sigma))

    def _tta(
        self,
        throughput: float,
        staleness: float,
        global_batch: int,
        compression_ratio: float = 1.0,
    ) -> float:
        if throughput <= 0:
            return float("inf")
        iters = self.workload.model.convergence.iterations_to_target(
            global_batch, staleness, compression_ratio
        )
        return STARTUP_OVERHEAD_S + iters * global_batch / throughput

    def _finish(
        self,
        config: TrainingConfig,
        throughput: float,
        iteration_time: float,
        staleness: float,
        trial_index: int,
        iterations: int,
    ) -> Measurement:
        if self.drift is not None:
            intensity = self._drift_state().intensity
            if intensity != 1.0:
                # A heavier workload regime: the same hardware sustains
                # proportionally fewer samples/s.
                throughput = throughput / intensity
        throughput *= self._noise(trial_index, iterations)
        tta = self._tta(throughput, staleness, config.global_batch, config.compression_ratio)
        probe_cost = STARTUP_OVERHEAD_S + (
            iterations * config.global_batch / throughput if throughput > 0 else 0.0
        )
        objective = throughput if self.objective_name == "throughput" else -tta
        return Measurement(
            config=config,
            ok=True,
            fidelity=self.fidelity,
            throughput=throughput,
            iteration_time_s=iteration_time,
            mean_staleness=staleness,
            tta_s=tta,
            probe_cost_s=probe_cost,
            objective=objective,
        )

    def _measure_analytic(
        self, config: TrainingConfig, trial_index: int, iterations: int
    ) -> Measurement:
        perf = estimate(config, self.workload, self.cluster, self._worker_speeds(config))
        return self._finish(
            config,
            perf.throughput,
            perf.iteration_time_s,
            perf.mean_staleness,
            trial_index,
            iterations,
        )

    def _measure_event(
        self, config: TrainingConfig, trial_index: int, iterations: int
    ) -> Measurement:
        sim = Simulator()
        # Same seed ⇒ same cluster heterogeneity in every probe; the
        # per-trial fork seeds only the probe's own stochastic jitter.
        cluster = Cluster(sim, self.cluster, RngRegistry(self.seed))
        probe_rng = RngRegistry(self.seed).fork(trial_index + 1)
        if config.uses_ps:
            trace = run_ps_probe(cluster, config, self.workload, iterations, probe_rng)
        else:
            trace = run_allreduce_probe(
                cluster, config, self.workload, iterations, probe_rng
            )
        mean_gap, _ = trace.iteration_time_stats()
        throughput = trace.throughput
        if self.drift is not None:
            # The discrete-event simulators know nothing of drift; apply
            # the schedule's mean per-node speed scale as a mean-field
            # correction (the analytic fidelity resolves it per node).
            scale = self._drift_state().mean_scale()
            if scale != 1.0:
                throughput = throughput * scale
        return self._finish(
            config,
            throughput,
            mean_gap,
            trace.mean_staleness,
            trial_index,
            iterations,
        )

    def describe(self) -> Dict[str, object]:
        """Summary dict for experiment logs and tables."""
        return {
            "workload": self.workload.name,
            "nodes": self.cluster.total_nodes,
            "fidelity": self.fidelity,
            "objective": self.objective_name,
            "seed": self.seed,
            "trials_run": self.trials_run,
            "probe_cost_hours": self.total_probe_cost_s / 3600.0,
            **(
                {"drift": self.drift.describe(), "clock_s": self.clock_s}
                if self.drift is not None
                else {}
            ),
        }
