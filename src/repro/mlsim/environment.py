"""The training environment: what a tuner can actually observe.

A real configuration tuner launches a short *probe run* of the training job
under a candidate configuration and records its throughput (and, if it runs
long enough, an extrapolated time-to-accuracy).  :class:`TrainingEnvironment`
reproduces exactly that interface on top of the simulators:

- ``measure(config)`` → :class:`Measurement` with throughput, staleness,
  estimated time-to-accuracy, and the probe's cost in simulated seconds;
- failed configurations (placement impossible, worker OOM) come back as
  ``ok=False`` measurements, not exceptions — tuners must cope with crashes
  exactly as they would on a real cluster;
- measurements carry multiplicative lognormal noise, and the environment
  tracks the cumulative probe cost so the harness can report search cost in
  simulated machine-hours.

Two fidelity modes share one external behaviour: ``"analytic"`` uses the
closed-form model (fast — used for the large benchmark sweeps), ``"event"``
runs the discrete-event simulators (reference — used for validation and the
response-surface experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.cluster import Cluster, ClusterSpec, PlacementError, place
from repro.mlsim.allreduce import run_allreduce_probe
from repro.mlsim.config import TrainingConfig
from repro.mlsim.drift import DriftSchedule, DriftState
from repro.mlsim.perf import (
    STARTUP_OVERHEAD_S,
    InfeasibleConfigError,
    estimate,
)
from repro.mlsim.ps import run_ps_probe
from repro.sim import RngRegistry, Simulator
from repro.workloads import Workload

FIDELITIES = ("analytic", "event")
OBJECTIVES = ("throughput", "tta")


@dataclass(frozen=True)
class Measurement:
    """Result of probing one configuration.

    ``objective`` is oriented so that **larger is always better**
    (throughput in samples/s, or negated time-to-accuracy in seconds).
    Failed probes have ``ok=False`` and ``objective=None``.
    """

    config: TrainingConfig
    ok: bool
    fidelity: str
    error: Optional[str] = None
    throughput: float = 0.0
    iteration_time_s: float = 0.0
    mean_staleness: float = 0.0
    tta_s: float = float("inf")
    probe_cost_s: float = 0.0
    objective: Optional[float] = None


class TrainingEnvironment:
    """Simulated cluster + workload exposing the tuner-facing probe API.

    Parameters
    ----------
    workload:
        The training job being tuned.
    cluster:
        Static cluster description.  Node heterogeneity (jitter, straggler
        assignment) is fixed by ``seed`` and identical across all probes,
        exactly like tuning against one physical cluster.
    seed:
        Root seed; all probe noise derives from it.
    fidelity:
        ``"analytic"`` (closed-form, fast) or ``"event"`` (discrete-event).
    objective_name:
        ``"throughput"`` (maximise samples/s) or ``"tta"`` (minimise
        time-to-accuracy; the objective is its negation).
    probe_iterations:
        Training iterations per worker in one measurement probe.
    noise_cv:
        Coefficient of variation of multiplicative measurement noise.
    transient_failure_rate:
        Probability that an otherwise-valid probe crashes anyway (preempted
        VM, OOM-killed daemon, network partition).  Real tuning logs show a
        few percent of such failures; tuners must tolerate them.
    drift:
        Optional :class:`~repro.mlsim.drift.DriftSchedule` making the
        environment non-stationary: per-node speed scaling, workload
        intensity shifts and failure-rate boosts, all pure functions of
        the environment's virtual clock (``clock_s``, stamped by the
        executors before each probe).  ``None`` keeps every code path —
        and every same-seed trajectory — bit-identical to a static
        environment.
    """

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        seed: int = 0,
        fidelity: str = "analytic",
        objective_name: str = "throughput",
        probe_iterations: int = 30,
        noise_cv: float = 0.03,
        transient_failure_rate: float = 0.0,
        drift: Optional[DriftSchedule] = None,
    ) -> None:
        if fidelity not in FIDELITIES:
            raise ValueError(f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
        if objective_name not in OBJECTIVES:
            raise ValueError(
                f"objective_name must be one of {OBJECTIVES}, got {objective_name!r}"
            )
        if probe_iterations < 2:
            raise ValueError("probe_iterations must be >= 2")
        if noise_cv < 0:
            raise ValueError("noise_cv must be non-negative")
        if not 0.0 <= transient_failure_rate < 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1)")
        self.workload = workload
        self.cluster = cluster
        self.seed = seed
        self.fidelity = fidelity
        self.objective_name = objective_name
        self.probe_iterations = probe_iterations
        self.noise_cv = noise_cv
        self.transient_failure_rate = transient_failure_rate
        self.drift = drift
        # Virtual clock for drift evaluation (executors stamp it with the
        # session wall-clock before each probe) and a transient per-probe
        # failure boost (failure-rate spikes from the fleet's injector).
        # Both are inert while ``drift is None`` / the boost is 0.0.
        self.clock_s = 0.0
        self.extra_failure_rate = 0.0
        self.trials_run = 0
        self.total_probe_cost_s = 0.0
        # The cluster's persistent heterogeneity: instantiate once so both
        # fidelity modes see identical per-node speed factors.
        reference = Cluster(Simulator(), cluster, RngRegistry(seed))
        self._speed_factors = [node.speed_factor for node in reference.nodes]

    # -- probe API ---------------------------------------------------------

    def reset_counters(self) -> None:
        """Rewind the probe counters to a fresh-environment state.

        Measurement noise is keyed by ``trials_run``, so rewinding it
        makes a reused environment replay the exact per-trial-index noise
        stream of a newly constructed one — what
        :meth:`repro.core.fleet.EnvironmentPool.reset` relies on to keep
        repeated sessions over one pool comparable.
        """
        self.trials_run = 0
        self.total_probe_cost_s = 0.0
        self.clock_s = 0.0
        self.extra_failure_rate = 0.0

    def set_clock(self, t: float) -> None:
        """Advance the virtual clock the drift schedule is evaluated at.

        Executors stamp the session's current wall-clock here before every
        probe; without a drift schedule the clock is inert.
        """
        self.clock_s = float(t)

    def measure(
        self,
        config: TrainingConfig,
        probe_iterations: Optional[int] = None,
        charge_startup: bool = True,
    ) -> Measurement:
        """Probe one configuration; never raises for bad configs.

        ``probe_iterations`` overrides the environment default — shorter
        probes cost less but return noisier measurements (noise scales as
        ``1/sqrt(iterations)``), which is the mechanism early-termination
        tuners exploit.  ``charge_startup=False`` models *continuing* an
        already-running probe (promotion after an early-termination check):
        only the extra iterations are charged, not a second job launch.
        """
        config = config.canonical()
        iterations = probe_iterations if probe_iterations is not None else self.probe_iterations
        if iterations < 2:
            raise ValueError("probe_iterations must be >= 2")
        trial_index = self.trials_run
        self.trials_run += 1
        failure_rate = self.transient_failure_rate
        extra = self.extra_failure_rate
        if self.drift is not None:
            extra += self._drift_state().failure_rate_boost
        if extra > 0:
            failure_rate = min(failure_rate + extra, 0.999)
        if failure_rate > 0:
            failure_rng = (
                RngRegistry(self.seed).fork(trial_index + 1).stream("transient.failure")
            )
            if failure_rng.random() < failure_rate:
                # The job died partway through the probe: a random fraction
                # of the measurement time was wasted on top of startup.  A
                # continuation probe (charge_startup=False) pays only the
                # post-startup wasted time, matching the success path.
                wasted = STARTUP_OVERHEAD_S * (1.0 + 2.0 * failure_rng.random())
                measurement = Measurement(
                    config=config,
                    ok=False,
                    fidelity=self.fidelity,
                    error="transient worker failure (injected)",
                    probe_cost_s=(
                        wasted
                        if charge_startup
                        else max(0.0, wasted - STARTUP_OVERHEAD_S)
                    ),
                )
                self.total_probe_cost_s += measurement.probe_cost_s
                return measurement
        try:
            if self.fidelity == "analytic":
                measurement = self._measure_analytic(config, trial_index, iterations)
            else:
                measurement = self._measure_event(config, trial_index, iterations)
            if not charge_startup:
                measurement = replace(
                    measurement,
                    probe_cost_s=max(0.0, measurement.probe_cost_s - STARTUP_OVERHEAD_S),
                )
        except InfeasibleConfigError as exc:
            # A crashed trial still wastes the startup time on a real
            # cluster: charge it so tuners cannot probe garbage for free.
            measurement = Measurement(
                config=config,
                ok=False,
                fidelity=self.fidelity,
                error=str(exc),
                probe_cost_s=STARTUP_OVERHEAD_S if charge_startup else 0.0,
            )
        self.total_probe_cost_s += measurement.probe_cost_s
        return measurement

    def true_objective(
        self, config: TrainingConfig, at_s: Optional[float] = None
    ) -> Optional[float]:
        """Noise-free analytic objective; None for infeasible configs.

        Used by the harness to normalise tuner results against the true
        optimum — not available to tuners.  Under a drift schedule the
        objective is time-varying; ``at_s`` evaluates it at a specific
        virtual timestamp (default: the environment's current clock).
        """
        config = config.canonical()
        try:
            perf = estimate(
                config,
                self.workload,
                self.cluster,
                self._worker_speeds(config, at_s=at_s),
            )
        except InfeasibleConfigError:
            return None
        throughput = perf.throughput
        if self.drift is not None:
            state = self._drift_state(at_s)
            if state.intensity != 1.0:
                throughput = throughput / state.intensity
        if self.objective_name == "throughput":
            return throughput
        return -self._tta(
            throughput,
            perf.mean_staleness,
            config.global_batch,
            config.compression_ratio,
        )

    # -- internals -----------------------------------------------------------

    def _drift_state(self, at_s: Optional[float] = None) -> DriftState:
        """The drift condition at ``at_s`` (default: the current clock)."""
        if self.drift is None:
            return DriftState()
        t = self.clock_s if at_s is None else float(at_s)
        return self.drift.state_at(t, self.cluster.total_nodes)

    def _worker_speeds(self, config: TrainingConfig, at_s: Optional[float] = None):
        try:
            placement = place(
                self.cluster.total_nodes,
                config.num_ps if config.uses_ps else 0,
                config.num_workers,
                config.colocate_ps if config.uses_ps else False,
            )
        except PlacementError as exc:
            raise InfeasibleConfigError(str(exc)) from exc
        if self.drift is None:
            return [self._speed_factors[n] for n in placement.worker_nodes]
        state = self._drift_state(at_s)
        if state.is_identity:
            return [self._speed_factors[n] for n in placement.worker_nodes]
        return [
            self._speed_factors[n] * state.node_scale(n)
            for n in placement.worker_nodes
        ]

    def _noise(self, trial_index: int, iterations: int) -> float:
        if self.noise_cv <= 0:
            return 1.0
        # Averaging over fewer iterations yields a noisier estimate.
        sigma = self.noise_cv * (self.probe_iterations / iterations) ** 0.5
        rng = RngRegistry(self.seed).fork(trial_index + 1).stream("measurement.noise")
        return float(rng.lognormal(mean=0.0, sigma=sigma))

    def _tta(
        self,
        throughput: float,
        staleness: float,
        global_batch: int,
        compression_ratio: float = 1.0,
    ) -> float:
        if throughput <= 0:
            return float("inf")
        iters = self.workload.model.convergence.iterations_to_target(
            global_batch, staleness, compression_ratio
        )
        return STARTUP_OVERHEAD_S + iters * global_batch / throughput

    def _finish(
        self,
        config: TrainingConfig,
        throughput: float,
        iteration_time: float,
        staleness: float,
        trial_index: int,
        iterations: int,
    ) -> Measurement:
        if self.drift is not None:
            intensity = self._drift_state().intensity
            if intensity != 1.0:
                # A heavier workload regime: the same hardware sustains
                # proportionally fewer samples/s.
                throughput = throughput / intensity
        throughput *= self._noise(trial_index, iterations)
        tta = self._tta(throughput, staleness, config.global_batch, config.compression_ratio)
        probe_cost = STARTUP_OVERHEAD_S + (
            iterations * config.global_batch / throughput if throughput > 0 else 0.0
        )
        objective = throughput if self.objective_name == "throughput" else -tta
        return Measurement(
            config=config,
            ok=True,
            fidelity=self.fidelity,
            throughput=throughput,
            iteration_time_s=iteration_time,
            mean_staleness=staleness,
            tta_s=tta,
            probe_cost_s=probe_cost,
            objective=objective,
        )

    def _measure_analytic(
        self, config: TrainingConfig, trial_index: int, iterations: int
    ) -> Measurement:
        perf = estimate(config, self.workload, self.cluster, self._worker_speeds(config))
        return self._finish(
            config,
            perf.throughput,
            perf.iteration_time_s,
            perf.mean_staleness,
            trial_index,
            iterations,
        )

    def _measure_event(
        self, config: TrainingConfig, trial_index: int, iterations: int
    ) -> Measurement:
        sim = Simulator()
        # Same seed ⇒ same cluster heterogeneity in every probe; the
        # per-trial fork seeds only the probe's own stochastic jitter.
        cluster = Cluster(sim, self.cluster, RngRegistry(self.seed))
        probe_rng = RngRegistry(self.seed).fork(trial_index + 1)
        if config.uses_ps:
            trace = run_ps_probe(cluster, config, self.workload, iterations, probe_rng)
        else:
            trace = run_allreduce_probe(
                cluster, config, self.workload, iterations, probe_rng
            )
        mean_gap, _ = trace.iteration_time_stats()
        throughput = trace.throughput
        if self.drift is not None:
            # The discrete-event simulators know nothing of drift; apply
            # the schedule's mean per-node speed scale as a mean-field
            # correction (the analytic fidelity resolves it per node).
            scale = self._drift_state().mean_scale()
            if scale != 1.0:
                throughput = throughput * scale
        return self._finish(
            config,
            throughput,
            mean_gap,
            trace.mean_staleness,
            trial_index,
            iterations,
        )

    def describe(self) -> Dict[str, object]:
        """Summary dict for experiment logs and tables."""
        return {
            "workload": self.workload.name,
            "nodes": self.cluster.total_nodes,
            "fidelity": self.fidelity,
            "objective": self.objective_name,
            "seed": self.seed,
            "trials_run": self.trials_run,
            "probe_cost_hours": self.total_probe_cost_s / 3600.0,
            **(
                {"drift": self.drift.describe(), "clock_s": self.clock_s}
                if self.drift is not None
                else {}
            ),
        }
