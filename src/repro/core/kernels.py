"""Covariance kernels for Gaussian-process regression.

Kernels operate on unit-cube encoded configurations and support automatic
relevance determination (ARD): one lengthscale per input dimension, so the
GP learns which knobs matter for a given workload (e.g. ``num_ps`` barely
matters for a compute-bound CNN, dominates for word2vec).

Hyperparameters are manipulated in log space, the standard parameterisation
for positive scales, via :meth:`Kernel.get_log_params` /
:meth:`Kernel.set_log_params`.
"""

from __future__ import annotations

import numpy as np

_MIN_LOG = -8.0
_MAX_LOG = 8.0


def _pairwise_sq_dists(x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances after per-dimension scaling."""
    a = x1 / lengthscales
    b = x2 / lengthscales
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(sq, 0.0)


class Kernel:
    """Base class: a positive-definite covariance function with ARD."""

    def __init__(self, input_dim: int, variance: float = 1.0) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be >= 1")
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.input_dim = input_dim
        self.variance = float(variance)
        self.lengthscales = np.full(input_dim, 0.5)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix between row-stacked inputs."""
        raise NotImplementedError

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(x, x)`` without forming the matrix."""
        return np.full(x.shape[0], self.variance)

    # -- hyperparameter vector (log space) -------------------------------

    def get_log_params(self) -> np.ndarray:
        """[log variance, log lengthscale_1, ..., log lengthscale_d]."""
        return np.concatenate(([np.log(self.variance)], np.log(self.lengthscales)))

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Inverse of :meth:`get_log_params`, with clipping for stability."""
        log_params = np.clip(np.asarray(log_params, dtype=float), _MIN_LOG, _MAX_LOG)
        if log_params.shape != (1 + self.input_dim,):
            raise ValueError(
                f"expected {1 + self.input_dim} log params, got {log_params.shape}"
            )
        self.variance = float(np.exp(log_params[0]))
        self.lengthscales = np.exp(log_params[1:])

    def num_params(self) -> int:
        """Length of the log-parameter vector."""
        return 1 + self.input_dim

    def param_bounds(self) -> list:
        """L-BFGS-B bounds in log space."""
        # Variance: y is standardised, so signal variance near 1; allow a
        # generous band.  Lengthscales: inputs live in [0,1], so scales in
        # [0.01, 10] cover everything from near-white to near-constant.
        return [(np.log(1e-3), np.log(1e3))] + [
            (np.log(1e-2), np.log(10.0))
        ] * self.input_dim


class RBF(Kernel):
    """Squared-exponential kernel: very smooth response surfaces."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.variance * np.exp(-0.5 * sq)


class Matern52(Kernel):
    """Matérn-5/2 kernel: the default surrogate in CherryPick-style tuners.

    Twice-differentiable sample paths — smooth enough for gradient-free
    optimisation, rough enough for real system response surfaces with
    bottleneck kinks.
    """

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        r = np.sqrt(5.0 * sq)
        return self.variance * (1.0 + r + r * r / 3.0) * np.exp(-r)


KERNELS = {"rbf": RBF, "matern52": Matern52}


def make_kernel(name: str, input_dim: int) -> Kernel:
    """Construct a kernel by name (``"rbf"`` or ``"matern52"``)."""
    try:
        return KERNELS[name](input_dim)
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}") from None
