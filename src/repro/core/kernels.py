"""Covariance kernels for Gaussian-process regression.

Kernels operate on unit-cube encoded configurations and support automatic
relevance determination (ARD): one lengthscale per input dimension, so the
GP learns which knobs matter for a given workload (e.g. ``num_ps`` barely
matters for a compute-bound CNN, dominates for word2vec).

Hyperparameters are manipulated in log space, the standard parameterisation
for positive scales, via :meth:`Kernel.get_log_params` /
:meth:`Kernel.set_log_params`.  Every kernel also exposes the analytic
derivative of its covariance matrix with respect to that log-parameter
vector (:meth:`Kernel.grad_log_params`), which is what lets the GP compute
log-marginal-likelihood gradients from a single Cholesky factorisation
instead of scipy's finite-difference fallback.
"""

from __future__ import annotations

import numpy as np

_MIN_LOG = -8.0
_MAX_LOG = 8.0


def _pairwise_sq_dists(x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances after per-dimension scaling."""
    a = x1 / lengthscales
    b = x2 / lengthscales
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(sq, 0.0)


def _per_dim_sq_dists(x: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Per-dimension scaled squared distances, shape ``(d, n, n)``.

    Entry ``[d, i, j]`` is ``((x[i, d] - x[j, d]) / lengthscales[d])**2`` —
    the quantity whose derivative w.r.t. ``log lengthscales[d]`` drives the
    ARD gradient: ``d(sq_d)/d(log l_d) = -2 sq_d``.
    """
    a = x / lengthscales
    diff = a[:, None, :] - a[None, :, :]
    return np.moveaxis(diff * diff, 2, 0)


class Kernel:
    """Base class: a positive-definite covariance function with ARD."""

    def __init__(self, input_dim: int, variance: float = 1.0) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be >= 1")
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.input_dim = input_dim
        self.variance = float(variance)
        self.lengthscales = np.full(input_dim, 0.5)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix between row-stacked inputs."""
        raise NotImplementedError

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(x, x)`` without forming the matrix."""
        return np.full(x.shape[0], self.variance)

    def grad_log_params(self, x: np.ndarray) -> np.ndarray:
        """``dK/d(log theta)`` for every hyperparameter, shape ``(p, n, n)``.

        Slice 0 is the derivative w.r.t. ``log variance`` (which is the
        covariance matrix itself, since the variance is a pure prefactor);
        slice ``1 + d`` is the derivative w.r.t. ``log lengthscales[d]``.
        The log parameterisation matches :meth:`get_log_params`, so these
        feed straight into gradient-based marginal-likelihood fitting.
        """
        raise NotImplementedError

    def grad_log_params_dot(self, x: np.ndarray, m: np.ndarray) -> np.ndarray:
        """``sum_ij m_ij * dK_ij/d(log theta_p)`` for every hyperparameter.

        The contraction the marginal-likelihood gradient actually needs:
        with ``m = alpha alpha^T - K^-1`` the LML gradient is ``0.5 *
        grad_log_params_dot(x, m)``.  The base implementation contracts
        the full :meth:`grad_log_params` tensor; ARD kernels override it
        with a closed form that never materialises the ``(p, n, n)``
        tensor — for the RBF/Matérn family every lengthscale derivative is
        a shared weight matrix ``W`` Hadamard the per-dimension scaled
        squared distances, so the whole lengthscale block collapses to row
        sums and one ``(n, d)`` GEMM:

        ``sum_ij (m W)_ij (a_id - a_jd)^2 = sum_i s_i a_id^2 +
        sum_j c_j a_jd^2 - 2 a_d^T (m W) a_d``

        with ``a = x / lengthscales``, ``s``/``c`` the row/column sums of
        ``m W``.
        """
        return np.einsum("ij,pij->p", m, self.grad_log_params(x))

    def _ard_grad_dot(
        self, x: np.ndarray, m: np.ndarray, k_matrix: np.ndarray, weight: np.ndarray
    ) -> np.ndarray:
        """The shared RBF/Matérn contraction: ``dK/d(log l_d) = weight ∘ sq_d``.

        ``k_matrix`` is the covariance itself (the ``log variance``
        derivative); ``weight`` the shared lengthscale-derivative weight
        matrix.  O(n^2 d) via one GEMM, no ``(p, n, n)`` tensor.
        """
        a = np.atleast_2d(np.asarray(x, dtype=float)) / self.lengthscales
        w = m * weight
        out = np.empty(self.num_params())
        out[0] = float(np.sum(m * k_matrix))
        row = w.sum(axis=1)
        col = w.sum(axis=0)
        sq = a * a
        out[1:] = (
            row @ sq + col @ sq - 2.0 * np.einsum("id,id->d", a, w @ a)
        )
        return out

    # -- hyperparameter vector (log space) -------------------------------

    def get_log_params(self) -> np.ndarray:
        """[log variance, log lengthscale_1, ..., log lengthscale_d]."""
        return np.concatenate(([np.log(self.variance)], np.log(self.lengthscales)))

    def set_log_params(self, log_params: np.ndarray) -> None:
        """Inverse of :meth:`get_log_params`, with clipping for stability."""
        log_params = np.clip(np.asarray(log_params, dtype=float), _MIN_LOG, _MAX_LOG)
        if log_params.shape != (1 + self.input_dim,):
            raise ValueError(
                f"expected {1 + self.input_dim} log params, got {log_params.shape}"
            )
        self.variance = float(np.exp(log_params[0]))
        self.lengthscales = np.exp(log_params[1:])

    def num_params(self) -> int:
        """Length of the log-parameter vector."""
        return 1 + self.input_dim

    def param_bounds(self) -> list:
        """L-BFGS-B bounds in log space."""
        # Variance: y is standardised, so signal variance near 1; allow a
        # generous band.  Lengthscales: inputs live in [0,1], so scales in
        # [0.01, 10] cover everything from near-white to near-constant.
        return [(np.log(1e-3), np.log(1e3))] + [
            (np.log(1e-2), np.log(10.0))
        ] * self.input_dim


class RBF(Kernel):
    """Squared-exponential kernel: very smooth response surfaces."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.from_sq_dists(sq)

    def from_sq_dists(self, sq: np.ndarray) -> np.ndarray:
        """Covariance from precomputed scaled squared distances."""
        return self.variance * np.exp(-0.5 * sq)

    def grad_log_params(self, x: np.ndarray) -> np.ndarray:
        # K = v exp(-sq/2) with sq = sum_d sq_d, so dK/d(log l_d) =
        # K * (-1/2) * (-2 sq_d) = K * sq_d.  K is derived from the one
        # distance tensor rather than recomputed pairwise.
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sq_d = _per_dim_sq_dists(x, self.lengthscales)
        k = self.variance * np.exp(-0.5 * np.sum(sq_d, axis=0))
        grads = np.empty((self.num_params(),) + k.shape)
        grads[0] = k
        grads[1:] = k[None, :, :] * sq_d
        return grads

    def grad_log_params_dot(self, x: np.ndarray, m: np.ndarray) -> np.ndarray:
        # dK/d(log l_d) = K ∘ sq_d: the shared weight matrix is K itself.
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sq = _pairwise_sq_dists(x, x, self.lengthscales)
        k = self.variance * np.exp(-0.5 * sq)
        return self._ard_grad_dot(x, m, k, k)


class Matern52(Kernel):
    """Matérn-5/2 kernel: the default surrogate in CherryPick-style tuners.

    Twice-differentiable sample paths — smooth enough for gradient-free
    optimisation, rough enough for real system response surfaces with
    bottleneck kinks.
    """

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(np.atleast_2d(x1), np.atleast_2d(x2), self.lengthscales)
        return self.from_sq_dists(sq)

    def from_sq_dists(self, sq: np.ndarray) -> np.ndarray:
        """Covariance from precomputed scaled squared distances.

        In-place ufunc forms of ``variance * (1 + r + r^2/3) * exp(-r)``
        with the same operation order (bit-identical results, fewer
        temporaries on 10^4-element candidate blocks).
        """
        r = np.multiply(sq, 5.0)
        np.sqrt(r, out=r)
        decay = np.negative(r)
        np.exp(decay, out=decay)
        poly = np.multiply(r, r)
        np.divide(poly, 3.0, out=poly)
        r += 1.0
        r += poly
        np.multiply(r, self.variance, out=r)
        np.multiply(r, decay, out=r)
        return r

    def grad_log_params(self, x: np.ndarray) -> np.ndarray:
        # With r = sqrt(5 sq): dK/d(sq) = -(5v/6)(1 + r) exp(-r), finite at
        # r = 0, and d(sq)/d(log l_d) = -2 sq_d, so dK/d(log l_d) =
        # (5v/3)(1 + r) exp(-r) sq_d.
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sq_d = _per_dim_sq_dists(x, self.lengthscales)
        r = np.sqrt(5.0 * np.sum(sq_d, axis=0))
        decay = np.exp(-r)
        grads = np.empty((self.num_params(),) + r.shape)
        grads[0] = self.variance * (1.0 + r + r * r / 3.0) * decay
        grads[1:] = ((5.0 / 3.0) * self.variance * (1.0 + r) * decay)[None] * sq_d
        return grads

    def grad_log_params_dot(self, x: np.ndarray, m: np.ndarray) -> np.ndarray:
        # dK/d(log l_d) = (5v/3)(1 + r) e^{-r} ∘ sq_d: one shared weight
        # matrix for every lengthscale.
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sq = _pairwise_sq_dists(x, x, self.lengthscales)
        r = np.sqrt(5.0 * sq)
        decay = np.exp(-r)
        k = self.variance * (1.0 + r + r * r / 3.0) * decay
        weight = (5.0 / 3.0) * self.variance * (1.0 + r) * decay
        return self._ard_grad_dot(x, m, k, weight)


KERNELS = {"rbf": RBF, "matern52": Matern52}


def make_kernel(name: str, input_dim: int) -> Kernel:
    """Construct a kernel by name (``"rbf"`` or ``"matern52"``)."""
    try:
        return KERNELS[name](input_dim)
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}") from None
