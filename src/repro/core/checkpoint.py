"""Crash-consistent checkpoint/resume for tuning sessions.

Everything the tuner accumulates over a session — trial history, RNG
streams, surrogate caches, budget ledgers, executor free-lists — lives in
memory, so a process crash at trial 180 of a 200-trial session used to
throw the whole session away.  This module makes sessions durable with
two artifacts per checkpoint path:

- **an append-only write-ahead log** (``<path>.wal``, JSON lines): one
  ``probe`` record per executor-level :meth:`SearchStrategy.measure`
  call — the measurement that came back, at *pre-shard-scaling* values,
  plus the environment's probe counters after the call — and one
  ``trial`` record per recorded trial (the divergence check).  Each
  record is flushed and ``fsync``'d before the session acts on the
  result, so the log is always consistent up to its last complete line;
- **an atomic snapshot** (``<path>``, single JSON document rewritten via
  ``mkstemp`` + ``os.replace`` like
  :class:`~repro.core.transfer.HistoryRepository`): session metadata
  (strategy, seed, budget, space/executor fingerprints), the fully
  serialised :class:`~repro.core.trial.TrialHistory`, environment probe
  counters, and the strategy's :meth:`~SearchStrategy.snapshot_state`
  audit payload, refreshed every ``every_n_trials`` recorded trials.

Resume is **replay**, not state surgery: the loop restarts from trial
zero with the same seed and re-executes every deterministic proposal,
substituting each recorded measurement for the probe it describes (no
machine time is re-spent) and restoring the environment's noise counters
as it goes.  All derived state — RNG streams, GP surrogate caches and
their hyper-refit cadence, incumbents, executor free-lists, scheduler
cursors, cancellation billing — is thereby reconstructed *bit-identical*
by construction, which is exactly the property snapshot-restoring a GP's
Cholesky factors cannot promise (``extend`` matches a refit only to
~1e-8).  Once the log is exhausted the session falls through to live
probing and keeps appending, so kill → resume → kill → resume chains
work, and any durable WAL prefix yields a continuation bit-identical to
the uninterrupted run.

Torn writes: a crash can leave a partial final WAL line.  On load, the
log is parsed up to its last durable record; everything after the first
torn or corrupt line is moved to a ``<path>.wal.quarantine`` sidecar
(with one warning naming the file) and the log is truncated there.  The
lost suffix costs nothing but the re-probe of its measurements — the
continuation is still bit-identical.  A corrupt snapshot falls back to
the WAL's header record; only when both are unreadable does resume fail,
with a named :class:`CheckpointError`, never a raw decoder traceback.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.strategy import SearchStrategy, TuningBudget
from repro.core.trial import (
    Trial,
    TrialHistory,
    measurement_from_payload,
    measurement_to_payload,
)

#: Bump on any incompatible change to the snapshot or WAL record layout.
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint that cannot be written, read, or resumed from."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a session checkpoints.

    ``path`` is the snapshot file; the write-ahead log lives beside it at
    ``path + ".wal"``.  ``every_n_trials`` is the snapshot refresh
    cadence — the WAL is per-probe durable regardless, so the cadence
    only bounds how stale the *inspectable* snapshot may be, never how
    much work a crash loses.  ``fsync=False`` trades the per-record
    ``os.fsync`` for OS-buffered durability (a crash of the machine, not
    just the process, may then lose the tail).
    """

    path: str
    every_n_trials: int = 1
    fsync: bool = True

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("checkpoint path must be non-empty")
        if self.every_n_trials < 1:
            raise ValueError("every_n_trials must be >= 1")

    @property
    def wal_path(self) -> str:
        return self.path + ".wal"

    @property
    def quarantine_path(self) -> str:
        return self.wal_path + ".quarantine"


def space_fingerprint(space: ConfigSpace) -> dict:
    """The space signature a resume must match.

    Covers encoded dims, names, and each parameter's type/range row —
    two spaces over the same names but different bounds (say,
    ``ml_config_space(8)`` vs ``ml_config_space(16)``) must not pass.
    """
    return {
        "dims": int(space.dims),
        "names": list(space.names()),
        "params": space.describe(),
    }


def executor_fingerprint(executor) -> dict:
    """The executor signature a resume must match.

    Replay re-executes the original scheduling decisions, so the executor
    class, worker count, and fleet shape must all be identical — a
    4-worker WAL replayed on 2 workers would interleave differently.
    """
    pool = getattr(executor, "pool", None)
    return {
        "kind": type(executor).__name__,
        "workers": int(executor.workers),
        "pool": None if pool is None else pool.fingerprint(),
    }


def _budget_payload(budget: TuningBudget) -> dict:
    return {
        "max_trials": budget.max_trials,
        "max_cost_s": budget.max_cost_s,
        "max_wall_clock_s": budget.max_wall_clock_s,
    }


def session_meta(
    strategy: SearchStrategy,
    seed: int,
    budget: TuningBudget,
    space: ConfigSpace,
    executor,
) -> dict:
    """The metadata block a resume validates against (and restores from)."""
    return {
        "strategy": strategy.name,
        "seed": int(seed),
        "budget": _budget_payload(budget),
        "space": space_fingerprint(space),
        "executor": executor_fingerprint(executor),
    }


def _env_counter_payload(env) -> dict:
    """The probe counters that key an environment's noise streams."""
    trials_run = getattr(env, "trials_run", None)
    cost = getattr(env, "total_probe_cost_s", None)
    return {
        "trials_run": None if trials_run is None else int(trials_run),
        "total_probe_cost_s": None if cost is None else float(cost),
    }


def _restore_env_counters(env, payload: dict) -> None:
    """Stamp recorded probe counters onto a (freshly built) environment.

    :class:`~repro.mlsim.TrainingEnvironment` keys every probe's noise
    and failure draw on ``trials_run`` (via per-trial RNG forks), so
    restoring the counter re-aligns the noise stream exactly; the first
    live probe after replay draws the same randomness it would have drawn
    in the uninterrupted run.
    """
    if payload.get("trials_run") is not None and hasattr(env, "trials_run"):
        env.trials_run = int(payload["trials_run"])
    if payload.get("total_probe_cost_s") is not None and hasattr(
        env, "total_probe_cost_s"
    ):
        env.total_probe_cost_s = float(payload["total_probe_cost_s"])


def _read_wal_records(wal_path: str):
    """Parse the WAL up to its last durable record.

    Returns ``(records, durable_offset, torn_tail)``: everything from the
    first unparseable line (or a final line with no newline — a record is
    written newline-included in one buffered write, so a missing newline
    means the write was cut short) onward is the torn tail.
    """
    with open(wal_path, "rb") as handle:
        data = handle.read()
    records: List[dict] = []
    offset = 0
    torn = b""
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            torn = data[offset:]
            break
        line = data[offset:newline]
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError("not a WAL record object")
        except (ValueError, UnicodeDecodeError):
            torn = data[offset:]
            break
        records.append(record)
        offset = newline + 1
    return records, offset, torn


def _atomic_write_json(path: str, payload: dict, fsync: bool = True) -> None:
    """Write one JSON document atomically (mkstemp + os.replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".checkpoint-tmp-")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


@dataclass
class Checkpoint:
    """A loaded snapshot, for inspection (``repro`` never mutates it).

    ``history`` is the fully deserialised trial history as of the last
    snapshot refresh; ``wal_probes`` / ``wal_trials`` count the durable
    WAL records, which may run ahead of the snapshot (the WAL is
    per-probe durable, the snapshot refreshes every N trials).
    """

    version: int
    meta: dict
    status: str
    history: TrialHistory
    strategy_state: Optional[dict]
    env_counters: dict
    wal_probes: int
    wal_trials: int

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Load ``path`` (and its WAL) for offline inspection."""
        config = CheckpointConfig(path)
        try:
            with open(path) as handle:
                snapshot = json.load(handle)
            if not isinstance(snapshot, dict):
                raise ValueError("snapshot is not a JSON object")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from None
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt checkpoint snapshot {path!r}: {exc}"
            ) from None
        version = snapshot.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has version {version!r}; this build "
                f"supports version {CHECKPOINT_VERSION}"
            )
        wal_probes = wal_trials = 0
        if os.path.exists(config.wal_path):
            records, _, _ = _read_wal_records(config.wal_path)
            wal_probes = sum(1 for r in records if r.get("type") == "probe")
            wal_trials = sum(1 for r in records if r.get("type") == "trial")
        return cls(
            version=int(version),
            meta=dict(snapshot.get("meta", {})),
            status=str(snapshot.get("status", "unknown")),
            history=TrialHistory.from_payload(snapshot["history"]),
            strategy_state=snapshot.get("strategy_state"),
            env_counters=dict(snapshot.get("env_counters", {})),
            wal_probes=wal_probes,
            wal_trials=wal_trials,
        )


class CheckpointJournal:
    """The live read/write surface of one checkpoint (snapshot + WAL).

    Created by :meth:`create` for a fresh session (truncates any previous
    checkpoint at the path) or :meth:`load` for a resume (replays the
    durable WAL prefix, quarantining a torn tail).  The session wires it
    in through :class:`JournalledStrategy` (probe records) and the
    journal's :meth:`recorder` callback (trial records + snapshot
    refreshes).
    """

    def __init__(
        self,
        config: CheckpointConfig,
        meta: dict,
        probes: Optional[List[dict]] = None,
        trials: Optional[List[dict]] = None,
        append_offset: Optional[int] = None,
    ) -> None:
        self.config = config
        self.meta = meta
        self._probes = list(probes or [])
        self._trials = list(trials or [])
        self._cursor = 0
        self._probe_count = len(self._probes)
        self._handle: Optional[IO[bytes]] = None
        self._append_offset = append_offset

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, config: CheckpointConfig, meta: dict) -> "CheckpointJournal":
        """Start a fresh checkpoint: header-only WAL + initial snapshot.

        Any existing checkpoint at the path is overwritten — starting a
        new session at the same path means the old session's state is no
        longer wanted (resume via :meth:`load` instead to keep it).
        """
        journal = cls(config, meta)
        directory = os.path.dirname(os.path.abspath(config.wal_path))
        os.makedirs(directory, exist_ok=True)
        journal._handle = open(config.wal_path, "wb")
        journal._append(
            {"type": "header", "version": CHECKPOINT_VERSION, "meta": meta}
        )
        return journal

    @classmethod
    def load(cls, config: CheckpointConfig) -> "CheckpointJournal":
        """Open an existing checkpoint for resume.

        Reads the durable WAL prefix (quarantining and truncating any
        torn/corrupt tail), takes session metadata from the snapshot —
        falling back to the WAL header when the snapshot itself is
        corrupt — and positions the journal to replay every durable probe
        record before appending live ones.
        """
        wal_path = config.wal_path
        if not os.path.exists(wal_path):
            raise CheckpointError(
                f"no write-ahead log at {wal_path!r}: nothing to resume from"
            )
        records, durable_offset, torn = _read_wal_records(wal_path)
        if torn:
            with open(config.quarantine_path, "ab") as sidecar:
                sidecar.write(torn)
                if not torn.endswith(b"\n"):
                    sidecar.write(b"\n")
            with open(wal_path, "r+b") as handle:
                handle.truncate(durable_offset)
            warnings.warn(
                f"{wal_path}: quarantined {len(torn)} bytes of torn/corrupt "
                f"tail to {config.quarantine_path}; resuming from the last "
                f"durable record",
                stacklevel=2,
            )
        header = records[0] if records and records[0].get("type") == "header" else None
        if header is not None and header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint WAL {wal_path!r} has version "
                f"{header.get('version')!r}; this build supports version "
                f"{CHECKPOINT_VERSION}"
            )
        meta = cls._load_meta(config, header)
        probes = [r for r in records if r.get("type") == "probe"]
        trials = [r for r in records if r.get("type") == "trial"]
        return cls(config, meta, probes, trials, append_offset=durable_offset)

    @staticmethod
    def _load_meta(config: CheckpointConfig, header: Optional[dict]) -> dict:
        """Session metadata from the snapshot, else the WAL header."""
        snapshot_error = None
        try:
            with open(config.path) as handle:
                snapshot = json.load(handle)
            if not isinstance(snapshot, dict) or "meta" not in snapshot:
                raise ValueError("snapshot is not a checkpoint object")
            version = snapshot.get("version")
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint {config.path!r} has version {version!r}; "
                    f"this build supports version {CHECKPOINT_VERSION}"
                )
            return dict(snapshot["meta"])
        except CheckpointError:
            raise
        except (OSError, ValueError) as exc:
            snapshot_error = exc
        if header is not None and isinstance(header.get("meta"), dict):
            warnings.warn(
                f"{config.path}: unreadable checkpoint snapshot "
                f"({snapshot_error}); recovering session metadata from the "
                f"write-ahead log header",
                stacklevel=3,
            )
            return dict(header["meta"])
        raise CheckpointError(
            f"checkpoint {config.path!r} is unreadable ({snapshot_error}) and "
            f"its write-ahead log has no header record to recover from"
        )

    # -- replay ------------------------------------------------------------

    @property
    def replaying(self) -> bool:
        """True while durable probe records remain to be replayed."""
        return self._cursor < len(self._probes)

    @property
    def preloaded_trials(self) -> int:
        """Number of trial records loaded from the WAL (the replay region)."""
        return len(self._trials)

    @property
    def probe_count(self) -> int:
        """Total probe records, preloaded plus appended this session."""
        return self._probe_count

    def next_probe_record(self) -> Optional[dict]:
        """The next probe record to replay, or None once live."""
        if self._cursor >= len(self._probes):
            return None
        record = self._probes[self._cursor]
        self._cursor += 1
        return record

    def replay_measurement(self, record: dict, env, config: ConfigDict):
        """The recorded measurement for one replayed probe.

        Verifies the replayed proposal matches what the record was
        written for (a mismatch means the session was resumed with a
        different seed, space, strategy, or environment — fail with a
        named error rather than silently corrupting the continuation)
        and restores the environment's probe counters to their
        post-probe values, so the first live probe after replay draws
        the exact noise the uninterrupted run would have drawn.
        """
        recorded = record.get("config", {})
        if dict(config) != recorded:
            raise CheckpointError(
                f"resume diverged at probe #{record.get('k', '?')}: the "
                f"session proposed {dict(config)!r} but the write-ahead log "
                f"recorded {recorded!r}; was the session resumed with a "
                f"different seed, space, strategy, or environment?"
            )
        _restore_env_counters(env, record.get("env", {}))
        return measurement_from_payload(record["measurement"])

    # -- recording ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._handle is None:
            # Lazily reopened on the first live append after a resume —
            # truncated to the durable offset computed at load (the torn
            # tail, if any, was already quarantined there).
            handle = open(self.config.wal_path, "r+b")
            if self._append_offset is not None:
                handle.truncate(self._append_offset)
            handle.seek(0, os.SEEK_END)
            self._handle = handle
        self._handle.write((json.dumps(record) + "\n").encode("utf-8"))
        self._handle.flush()
        if self.config.fsync:
            os.fsync(self._handle.fileno())

    def record_probe(self, config: ConfigDict, measurement, env) -> None:
        """Append one live probe's WAL record (durable before use)."""
        self._append(
            {
                "type": "probe",
                "k": self._probe_count,
                "config": dict(config),
                "measurement": measurement_to_payload(measurement),
                "env": _env_counter_payload(env),
            }
        )
        self._probe_count += 1

    def on_trial(self, trial: Trial) -> bool:
        """Record (or, in the replay region, verify) one recorded trial.

        Returns True for a live trial — the recorder refreshes the
        snapshot on live trials only, so replay never moves the snapshot
        backwards.  A replayed trial that disagrees with its WAL record
        means the replay diverged; fail loudly.
        """
        if trial.index < len(self._trials):
            recorded = self._trials[trial.index]
            if (
                recorded.get("cost") != trial.cumulative_cost_s
                or recorded.get("wall") != trial.cumulative_wall_clock_s
                or recorded.get("objective") != trial.objective
            ):
                raise CheckpointError(
                    f"resume diverged at trial {trial.index}: replay produced "
                    f"(objective={trial.objective!r}, "
                    f"cost={trial.cumulative_cost_s!r}, "
                    f"wall={trial.cumulative_wall_clock_s!r}) but the "
                    f"write-ahead log recorded "
                    f"(objective={recorded.get('objective')!r}, "
                    f"cost={recorded.get('cost')!r}, "
                    f"wall={recorded.get('wall')!r})"
                )
            return False
        self._append(
            {
                "type": "trial",
                "index": trial.index,
                "launch": trial.launch_index,
                "round": trial.round_index,
                "shard": trial.shard,
                "objective": trial.objective,
                "cost": trial.cumulative_cost_s,
                "wall": trial.cumulative_wall_clock_s,
            }
        )
        self._trials.append(
            {
                "objective": trial.objective,
                "cost": trial.cumulative_cost_s,
                "wall": trial.cumulative_wall_clock_s,
            }
        )
        return True

    def write_snapshot(
        self,
        history: TrialHistory,
        strategy: SearchStrategy,
        env_counters: dict,
        status: str = "running",
    ) -> None:
        """Atomically rewrite the snapshot document."""
        state = None
        try:
            state = strategy.snapshot_state()
            if state is not None:
                json.dumps(state)
        except (TypeError, ValueError):
            # An unserialisable audit payload must never take the
            # checkpoint down with it — the snapshot is forensics, the
            # WAL is the restore path.
            state = {"error": "snapshot_state() returned non-JSON state"}
        _atomic_write_json(
            self.config.path,
            {
                "version": CHECKPOINT_VERSION,
                "meta": self.meta,
                "status": status,
                "trials": len(history),
                "probes": self._probe_count,
                "history": history.to_payload(),
                "env_counters": env_counters,
                "strategy_state": state,
            },
            fsync=self.config.fsync,
        )

    def recorder(self, session) -> "_CheckpointRecorder":
        """The session callback that writes trial records and snapshots."""
        return _CheckpointRecorder(self, session)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _session_env_counters(session) -> dict:
    """Probe counters for every environment the session touches (audit)."""
    pool = session.executor.pool
    if pool is not None:
        return pool.env_counters()
    env = getattr(session, "_env", None)
    if env is None:
        return {}
    return {"env": _env_counter_payload(env)}


class _CheckpointRecorder:
    """Session callback half of the journal (duck-typed, no base class).

    Runs *first* in the callback chain so a later callback raising (or a
    chaos kill) can never lose a recorded trial's WAL record.
    """

    def __init__(self, journal: CheckpointJournal, session) -> None:
        self._journal = journal
        self._session = session

    def on_session_start(self, strategy, env, space, budget) -> None:
        self._journal.write_snapshot(
            self._session.history,
            self._session.strategy,
            _session_env_counters(self._session),
            status="running",
        )

    def on_trial_start(self, index: int, config) -> None:
        pass

    def on_trial_end(self, trial: Trial) -> None:
        live = self._journal.on_trial(trial)
        if live and (trial.index + 1) % self._journal.config.every_n_trials == 0:
            self._journal.write_snapshot(
                self._session.history,
                self._session.strategy,
                _session_env_counters(self._session),
                status="running",
            )

    def on_round_end(self, round_index, trials, history) -> None:
        pass

    def on_session_end(self, result) -> None:
        self._journal.write_snapshot(
            result.history,
            self._session.strategy,
            _session_env_counters(self._session),
            status="complete",
        )
        self._journal.close()


class JournalledStrategy(SearchStrategy):
    """Strategy proxy threading every probe through the journal.

    Delegates all proposal/observation hooks to the wrapped strategy;
    only :meth:`measure` is intercepted — during replay it pops the next
    durable probe record instead of probing (restoring environment
    counters as it goes), and once the log is exhausted it probes live
    and appends the record before the executor acts on the result.
    The session uses this proxy for its loop only; callbacks and the
    result still see the inner strategy.
    """

    def __init__(self, inner: SearchStrategy, journal: CheckpointJournal) -> None:
        self.inner = inner
        self._journal = journal
        self.name = inner.name

    def propose(self, history, space, rng) -> ConfigDict:
        return self.inner.propose(history, space, rng)

    def propose_batch(self, history, space, rng, k, shards=None):
        return self.inner.propose_batch(history, space, rng, k, shards=shards)

    def propose_async(self, history, pending, space, rng, shard=None):
        return self.inner.propose_async(history, pending, space, rng, shard=shard)

    def observe(self, trial) -> None:
        self.inner.observe(trial)

    def finished(self, history, space) -> bool:
        return self.inner.finished(history, space)

    def reset(self) -> None:
        self.inner.reset()

    def snapshot_state(self) -> Optional[dict]:
        return self.inner.snapshot_state()

    def measure(self, env, config: ConfigDict):
        record = self._journal.next_probe_record()
        if record is not None:
            return self._journal.replay_measurement(record, env, config)
        measurement = self.inner.measure(env, config)
        self._journal.record_probe(config, measurement, env)
        return measurement
