"""Gaussian-process regression, implemented from scratch on numpy/scipy.

Exact GP regression with a learned homoscedastic noise term:

- posterior via Cholesky factorisation with escalating jitter;
- hyperparameters (kernel variance, ARD lengthscales, noise) fit by
  maximising the log marginal likelihood with multi-restart L-BFGS-B;
- targets standardised internally so kernel priors are scale-free.

This is the surrogate model inside the BO tuner and the OtterTune-style
baseline.  It is deliberately plain exact GP — the configuration budgets in
this problem (tens of trials) never need sparse approximations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import linalg, optimize

from repro.core.kernels import Kernel, Matern52

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


class GPFitError(RuntimeError):
    """Raised when the GP cannot be fit (degenerate data)."""


def _chol_with_jitter(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Cholesky factor with the smallest jitter that succeeds."""
    for jitter in _JITTERS:
        try:
            chol = linalg.cholesky(
                matrix + jitter * np.eye(matrix.shape[0]), lower=True
            )
            return chol, jitter
        except linalg.LinAlgError:
            continue
    raise GPFitError("covariance matrix not positive definite at any jitter level")


class GaussianProcess:
    """Exact GP regression with MLE hyperparameter fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to ARD Matérn-5/2 once the input
        dimension is known at fit time.
    noise_variance:
        Initial observation-noise variance (in standardised-target units);
        refined by the marginal-likelihood fit unless ``fit_noise=False``.
    restarts:
        Number of random restarts for the hyperparameter optimisation.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-2,
        fit_noise: bool = True,
        restarts: int = 3,
        seed: int = 0,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        if restarts < 0:
            raise ValueError("restarts must be >= 0")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.fit_noise = fit_noise
        self.restarts = restarts
        self.seed = seed
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- fitting ---------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, optimize_hypers: bool = True) -> "GaussianProcess":
        """Fit to row-stacked inputs ``x`` and targets ``y``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] < 1:
            raise GPFitError("need at least one observation")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise GPFitError("non-finite values in training data")

        if self.kernel is None:
            self.kernel = Matern52(x.shape[1])
        elif self.kernel.input_dim != x.shape[1]:
            raise ValueError(
                f"kernel expects dim {self.kernel.input_dim}, data has {x.shape[1]}"
            )

        self._y_mean = float(np.mean(y))
        spread = float(np.std(y))
        self._y_std = spread if spread > 1e-12 else 1.0
        z = (y - self._y_mean) / self._y_std

        self._x = x
        self._z = z
        if optimize_hypers and x.shape[0] >= 3:
            self._optimize_hyperparameters()
        self._refresh_posterior()
        return self

    def _log_params(self) -> np.ndarray:
        params = self.kernel.get_log_params()
        if self.fit_noise:
            params = np.concatenate((params, [np.log(self.noise_variance)]))
        return params

    def _apply_log_params(self, log_params: np.ndarray) -> None:
        k = self.kernel.num_params()
        self.kernel.set_log_params(log_params[:k])
        if self.fit_noise:
            self.noise_variance = float(np.exp(np.clip(log_params[k], -12.0, 2.0)))

    def _neg_log_marginal(self, log_params: np.ndarray) -> float:
        self._apply_log_params(log_params)
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x) + self.noise_variance * np.eye(n)
        try:
            chol, _ = _chol_with_jitter(cov)
        except GPFitError:
            return 1e12
        alpha = linalg.cho_solve((chol, True), self._z)
        lml = (
            -0.5 * float(self._z @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(lml):
            return 1e12
        return -lml

    def _optimize_hyperparameters(self) -> None:
        bounds = self.kernel.param_bounds()
        if self.fit_noise:
            bounds = bounds + [(np.log(1e-6), np.log(1.0))]
        rng = np.random.default_rng(self.seed)
        starts = [self._log_params()]
        for _ in range(self.restarts):
            start = np.array([lo + (hi - lo) * rng.random() for lo, hi in bounds])
            starts.append(start)
        best_val = np.inf
        best_params = self._log_params()
        for start in starts:
            result = optimize.minimize(
                self._neg_log_marginal,
                start,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 200},
            )
            if result.fun < best_val:
                best_val = float(result.fun)
                best_params = result.x
        self._apply_log_params(best_params)

    def _refresh_posterior(self) -> None:
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x) + self.noise_variance * np.eye(n)
        self._chol, _ = _chol_with_jitter(cov)
        self._alpha = linalg.cho_solve((self._chol, True), self._z)

    # -- prediction -----------------------------------------------------------

    def predict(self, x_star: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (of the latent function) at ``x_star``.

        Returns ``(mean, variance)`` in the original target units.
        """
        if self._x is None:
            raise GPFitError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self.kernel(self._x, x_star)  # (n, m)
        mean_z = k_star.T @ self._alpha
        v = linalg.solve_triangular(self._chol, k_star, lower=True)
        var_z = self.kernel.diag(x_star) - np.sum(v * v, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        mean = mean_z * self._y_std + self._y_mean
        var = var_z * self._y_std**2
        return mean, var

    def log_marginal_likelihood(self) -> float:
        """LML of the current fit (standardised-target units)."""
        if self._x is None:
            raise GPFitError("log_marginal_likelihood() before fit()")
        return -self._neg_log_marginal(self._log_params())

    @property
    def num_observations(self) -> int:
        """Number of training points in the current fit."""
        return 0 if self._x is None else int(self._x.shape[0])
