"""Gaussian-process regression, implemented from scratch on numpy/scipy.

Exact GP regression with a learned homoscedastic noise term:

- posterior via Cholesky factorisation with escalating jitter;
- hyperparameters (kernel variance, ARD lengthscales, noise) fit by
  maximising the log marginal likelihood with multi-restart L-BFGS-B,
  using analytic gradients (one Cholesky per step serves both the value
  and the full gradient) instead of scipy's finite-difference fallback,
  which costs an extra O(n^3) factorisation per hyperparameter per step;
- targets standardised internally so kernel priors are scale-free.

This is the surrogate model inside the BO tuner and the OtterTune-style
baseline.  At the configuration budgets the paper itself runs (tens of
trials) the exact GP is all that is ever used; for service-scale histories
(thousands of trials) :class:`SparseGaussianProcess` provides an
inducing-point approximation behind the same interface, and
:class:`SurrogateFactory` switches tiers automatically by history size.

Fast-path architecture
----------------------
The posterior state is one Cholesky factor of the training covariance (plus
the solved weights ``alpha`` and the cached log marginal likelihood).  The
factor is built by :meth:`GaussianProcess.fit` and then *reused*:

- :meth:`GaussianProcess.extend` appends observations by extending the
  cached factor one block row at a time — O(m n^2) instead of the O(n^3)
  refactorisation a refit would pay — keeping hyperparameters fixed.  The
  target standardisation is recomputed over the full set, so an extended
  posterior is numerically identical to a from-scratch ``fit`` at the same
  hyperparameters.  When the extension is too degenerate for the cached
  jitter level (near-duplicate inputs at tiny noise), ``extend`` falls back
  to a full refactorisation with escalating jitter.
- :meth:`GaussianProcess.log_marginal_likelihood` returns the value cached
  at the last ``fit``/``extend`` — O(1), no covariance rebuild.

The cached factor is invalidated only by ``fit`` (which may change
hyperparameters); nothing else mutates it.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import linalg, optimize

from repro.core.kernels import Kernel, Matern52

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)

#: An extension's Schur pivots must clear this fraction of the covariance
#: diagonal scale, or the incremental path is declared degenerate and the
#: factor is rebuilt with escalating jitter instead.
_EXTEND_PIVOT_FLOOR = 1e-9


class GPFitError(RuntimeError):
    """Raised when the GP cannot be fit (degenerate data)."""


def _hyperfit_one(task: tuple) -> Tuple[float, np.ndarray]:
    """Run one L-BFGS-B restart of the marginal-likelihood optimisation.

    Top-level (picklable) so restarts can fan out across a process pool;
    the serial path runs the exact same function in-process, which is what
    makes ``fit_workers > 1`` bit-identical to serial: every restart is a
    pure function of its task tuple, and the best-of reduction happens in
    start order either way.
    """
    kernel, x, z, noise_variance, fit_noise, analytic, bounds, start, scale = task
    scratch = GaussianProcess(
        kernel=kernel,
        noise_variance=noise_variance,
        fit_noise=fit_noise,
        restarts=0,
        analytic_gradients=analytic,
    )
    scratch._x = x
    scratch._z = z
    scratch._noise_scale = scale
    result = optimize.minimize(
        lambda p: scratch._neg_log_marginal(p, jac=analytic),
        start,
        method="L-BFGS-B",
        jac=analytic,
        bounds=bounds,
        options={"maxiter": 200},
    )
    return float(result.fun), result.x


#: Persistent hyperfit worker pools, keyed by worker count and owner PID —
#: the PID guard drops pools inherited through a fork (their workers
#: belong to the parent and would dead-letter our submissions).
_FIT_POOLS: Dict[int, ProcessPoolExecutor] = {}
_FIT_POOLS_PID: Optional[int] = None


def _fit_pool(workers: int) -> ProcessPoolExecutor:
    global _FIT_POOLS_PID
    if _FIT_POOLS_PID != os.getpid():
        _FIT_POOLS.clear()
        _FIT_POOLS_PID = os.getpid()
    pool = _FIT_POOLS.get(workers)
    if pool is None:
        # Prefer fork: workers come up in milliseconds and inherit numpy
        # warm; spawn (macOS/Windows default) works too since tasks and
        # results are plain picklable tuples.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _FIT_POOLS[workers] = pool
    return pool


def _run_hyperfit_tasks(
    tasks: List[tuple], fit_workers: int
) -> List[Tuple[float, np.ndarray]]:
    """All restart results, in task order (the reduction key).

    Falls back to in-process execution when the pool cannot be used
    (sandboxes that forbid subprocesses, broken pools) — the results are
    identical either way, only the wall-clock differs.
    """
    if fit_workers > 1 and len(tasks) > 1:
        try:
            pool = _fit_pool(min(fit_workers, len(tasks)))
            return list(pool.map(_hyperfit_one, tasks))
        except (BrokenProcessPool, OSError, PermissionError):
            for stale in _FIT_POOLS.values():
                stale.shutdown(wait=False, cancel_futures=True)
            _FIT_POOLS.clear()
    return [_hyperfit_one(task) for task in tasks]


def _chol_with_jitter(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Cholesky factor with the smallest jitter that succeeds."""
    for jitter in _JITTERS:
        try:
            chol = linalg.cholesky(
                matrix + jitter * np.eye(matrix.shape[0]), lower=True
            )
            return chol, jitter
        except linalg.LinAlgError:
            continue
    raise GPFitError("covariance matrix not positive definite at any jitter level")


class GaussianProcess:
    """Exact GP regression with MLE hyperparameter fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to ARD Matérn-5/2 once the input
        dimension is known at fit time.
    noise_variance:
        Initial observation-noise variance (in standardised-target units);
        refined by the marginal-likelihood fit unless ``fit_noise=False``.
    restarts:
        Number of random restarts for the hyperparameter optimisation.
    analytic_gradients:
        Feed L-BFGS-B the closed-form marginal-likelihood gradient (one
        Cholesky per step).  ``False`` restores scipy's finite-difference
        fallback — kept only as the benchmark baseline.
    fit_workers:
        Fan the multi-start restarts across ``fit_workers`` worker
        processes.  Deterministic: the same starts are generated either
        way, every restart is an independent pure function, and the
        best-of reduction runs in start order — ``fit_workers > 1`` fits
        bit-identical hyperparameters to serial.  Falls back to serial
        when subprocesses are unavailable.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-2,
        fit_noise: bool = True,
        restarts: int = 3,
        seed: int = 0,
        analytic_gradients: bool = True,
        fit_workers: int = 1,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        if restarts < 0:
            raise ValueError("restarts must be >= 0")
        if fit_workers < 1:
            raise ValueError("fit_workers must be >= 1")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.fit_noise = fit_noise
        self.restarts = restarts
        self.seed = seed
        self.analytic_gradients = analytic_gradients
        self.fit_workers = fit_workers
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._chol_inv: Optional[np.ndarray] = None
        self._a_train: Optional[np.ndarray] = None
        self._aa_train: Optional[np.ndarray] = None
        self._jitter: float = 0.0
        self._lml: Optional[float] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._noise_scale: Optional[np.ndarray] = None
        #: Number of ``extend`` calls that hit a degenerate block and fell
        #: back to a full refactorisation with escalating jitter.
        self.extend_fallbacks = 0

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        noise_scale: Optional[np.ndarray] = None,
    ) -> "GaussianProcess":
        """Fit to row-stacked inputs ``x`` and targets ``y``.

        ``noise_scale`` optionally supplies a per-observation multiplier on
        the (shared, possibly fitted) noise variance — observation ``i``
        carries noise ``noise_variance * noise_scale[i]``.  Scales above
        1.0 down-weight points the caller trusts less (e.g. pre-drift
        history under a re-tuning discount).  ``None`` keeps the exact
        homoscedastic path, bit-identical to the scale-free code.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] < 1:
            raise GPFitError("need at least one observation")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise GPFitError("non-finite values in training data")
        if noise_scale is not None:
            noise_scale = np.asarray(noise_scale, dtype=float).ravel()
            if noise_scale.shape[0] != x.shape[0]:
                raise ValueError(
                    f"noise_scale has {noise_scale.shape[0]} entries "
                    f"but x has {x.shape[0]} rows"
                )
            if not np.all(np.isfinite(noise_scale)) or np.any(noise_scale <= 0):
                raise ValueError("noise_scale entries must be positive and finite")

        if self.kernel is None:
            self.kernel = Matern52(x.shape[1])
        elif self.kernel.input_dim != x.shape[1]:
            raise ValueError(
                f"kernel expects dim {self.kernel.input_dim}, data has {x.shape[1]}"
            )

        self._x = x
        self._y = y
        self._noise_scale = noise_scale
        self._standardise()
        if optimize_hypers and x.shape[0] >= 3:
            self._optimize_hyperparameters()
        self._refresh_posterior()
        return self

    def _standardise(self) -> None:
        self._y_mean = float(np.mean(self._y))
        spread = float(np.std(self._y))
        self._y_std = spread if spread > 1e-12 else 1.0
        self._z = (self._y - self._y_mean) / self._y_std

    def _log_params(self) -> np.ndarray:
        params = self.kernel.get_log_params()
        if self.fit_noise:
            params = np.concatenate((params, [np.log(self.noise_variance)]))
        return params

    def _apply_log_params(self, log_params: np.ndarray) -> None:
        k = self.kernel.num_params()
        self.kernel.set_log_params(log_params[:k])
        if self.fit_noise:
            self.noise_variance = float(np.exp(np.clip(log_params[k], -12.0, 2.0)))

    def _neg_log_marginal(
        self, log_params: np.ndarray, jac: bool = False
    ) -> Union[float, Tuple[float, np.ndarray]]:
        """Negative LML at ``log_params``; with ``jac`` also its gradient.

        Value and gradient share one Cholesky factorisation: the gradient
        is ``-0.5 tr((aa^T - K^-1) dK/dtheta)`` per hyperparameter, with
        ``dK`` supplied analytically by :meth:`Kernel.grad_log_params`.
        """
        self._apply_log_params(log_params)
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x) + self._noise_diag(n)
        try:
            chol, _ = _chol_with_jitter(cov)
        except GPFitError:
            return (1e12, np.zeros_like(log_params)) if jac else 1e12
        alpha = linalg.cho_solve((chol, True), self._z)
        lml = (
            -0.5 * float(self._z @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(lml):
            return (1e12, np.zeros_like(log_params)) if jac else 1e12
        if not jac:
            return -lml
        # The gradient needs tr((aa^T - K^-1) dK) per hyperparameter.  The
        # K^-1 factor comes from one cho_solve against the identity; the
        # per-parameter traces collapse inside the kernel's closed-form
        # contraction (grad_log_params_dot) — row sums plus one (n, d)
        # GEMM — so no (p, n, n) derivative tensor is ever materialised.
        k_inv = linalg.cho_solve((chol, True), np.eye(n))
        a_mat = np.outer(alpha, alpha) - k_inv
        grad = np.empty_like(log_params)
        num_kernel = self.kernel.num_params()
        grad[:num_kernel] = 0.5 * self.kernel.grad_log_params_dot(self._x, a_mat)
        if self.fit_noise:
            if self._noise_scale is None:
                # dK/d(log noise) = noise * I, so the trace term collapses.
                grad[num_kernel] = (
                    0.5 * self.noise_variance * (float(alpha @ alpha) - np.trace(k_inv))
                )
            else:
                # dK/d(log noise) = noise * diag(scale): the trace picks up
                # the per-observation scale weights.
                scale = self._noise_scale
                grad[num_kernel] = (
                    0.5
                    * self.noise_variance
                    * (
                        float(alpha @ (scale * alpha))
                        - float(np.diag(k_inv) @ scale)
                    )
                )
        return -lml, -grad

    def _optimize_hyperparameters(self) -> None:
        bounds = self.kernel.param_bounds()
        if self.fit_noise:
            bounds = bounds + [(np.log(1e-6), np.log(1.0))]
        rng = np.random.default_rng(self.seed)
        starts = [self._log_params()]
        for _ in range(self.restarts):
            start = np.array([lo + (hi - lo) * rng.random() for lo, hi in bounds])
            starts.append(start)
        # Every restart gets its own kernel copy so the evaluations are
        # independent pure functions — the same task list runs in-process
        # or across the fit_workers pool with identical results.
        tasks = [
            (
                copy.deepcopy(self.kernel),
                self._x,
                self._z,
                self.noise_variance,
                self.fit_noise,
                self.analytic_gradients,
                bounds,
                start,
                self._noise_scale,
            )
            for start in starts
        ]
        outcomes = _run_hyperfit_tasks(tasks, self.fit_workers)
        best_val = np.inf
        best_params = starts[0]
        for fun, params in outcomes:
            if fun < best_val:
                best_val = float(fun)
                best_params = params
        self._apply_log_params(best_params)

    def _noise_diag(self, n: int) -> np.ndarray:
        """The observation-noise diagonal as an (n, n) matrix.

        The ``None`` branch reproduces the homoscedastic expression
        verbatim so scale-free fits stay bit-identical.
        """
        if self._noise_scale is None:
            return self.noise_variance * np.eye(n)
        return np.diag(self.noise_variance * self._noise_scale)

    def _refresh_posterior(self) -> None:
        n = self._x.shape[0]
        cov = self.kernel(self._x, self._x) + self._noise_diag(n)
        self._chol, self._jitter = _chol_with_jitter(cov)
        self._finish_posterior()

    def _finish_posterior(self) -> None:
        """Solve for the weights and cache the LML from the current factor."""
        self._alpha = linalg.cho_solve((self._chol, True), self._z)
        n = self._x.shape[0]
        self._lml = (
            -0.5 * float(self._z @ self._alpha)
            - float(np.sum(np.log(np.diag(self._chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        # Any factor change invalidates the lazily-built triangular inverse
        # the variance fast path multiplies against.
        self._chol_inv = None
        # Cache the lengthscale-scaled training inputs for prediction:
        # cross-covariances then cost one small GEMM instead of rescaling
        # the training block on every predict call (hyperparameters only
        # change through fit, which lands back here).
        if hasattr(self.kernel, "from_sq_dists"):
            self._a_train = self._x / self.kernel.lengthscales
            self._aa_train = np.sum(self._a_train * self._a_train, axis=1)[:, None]
        else:
            self._a_train = None
            self._aa_train = None

    # -- incremental updates ---------------------------------------------

    def extend(self, x_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcess":
        """Append observations by extending the cached Cholesky factor.

        Hyperparameters are kept fixed; the factor grows by one block row —
        O(m n^2) against the O(n^3) a refit would pay — and the posterior
        equals a from-scratch :meth:`fit` of the concatenated data (with
        ``optimize_hypers=False``) to numerical precision.  Degenerate
        extensions (Schur pivots below a scale-relative floor, as with
        near-duplicate inputs at tiny noise) fall back to a full
        refactorisation with escalating jitter.
        """
        if self._x is None or self._chol is None:
            raise GPFitError("extend() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x_new has {x_new.shape[0]} rows but y_new has {y_new.shape[0]}"
            )
        if x_new.shape[0] < 1:
            raise ValueError("extend() needs at least one new observation")
        if x_new.shape[1] != self.kernel.input_dim:
            raise ValueError(
                f"kernel expects dim {self.kernel.input_dim}, data has {x_new.shape[1]}"
            )
        if not np.all(np.isfinite(x_new)) or not np.all(np.isfinite(y_new)):
            raise GPFitError("non-finite values in new observations")

        n, m = self._x.shape[0], x_new.shape[0]
        # Heteroscedastic fits extend at unit scale: the new block below
        # adds plain ``noise_variance`` noise, so the stored scale vector
        # grows by ones — and must do so *before* the degenerate-block
        # fallback, whose full refactorisation reads it.
        if self._noise_scale is not None:
            self._noise_scale = np.concatenate((self._noise_scale, np.ones(m)))
        k_cross = self.kernel(self._x, x_new)  # (n, m)
        k_new = self.kernel(x_new, x_new) + (
            self.noise_variance + self._jitter
        ) * np.eye(m)
        l21 = linalg.solve_triangular(self._chol, k_cross, lower=True)  # (n, m)
        schur = k_new - l21.T @ l21
        l22 = self._chol_of_schur(schur, float(np.max(np.diag(k_new))))

        x_all = np.vstack((self._x, x_new))
        y_all = np.concatenate((self._y, y_new))
        if l22 is None:
            # Degenerate block: rebuild the whole factor, letting the
            # jitter escalate as far as it needs to.
            self.extend_fallbacks += 1
            self._x, self._y = x_all, y_all
            self._standardise()
            self._refresh_posterior()
            return self

        chol = np.zeros((n + m, n + m))
        chol[:n, :n] = self._chol
        chol[n:, :n] = l21.T
        chol[n:, n:] = l22
        self._x, self._y, self._chol = x_all, y_all, chol
        # Re-standardising shifts every target, but the covariance (and so
        # the factor) is y-independent: only the O(n^2) solve re-runs.
        self._standardise()
        self._finish_posterior()
        return self

    @staticmethod
    def _chol_of_schur(schur: np.ndarray, scale: float) -> Optional[np.ndarray]:
        """Factor the extension's Schur complement, or None if degenerate.

        A successful factorisation with pivots below ``_EXTEND_PIVOT_FLOOR``
        of the covariance scale is still treated as degenerate: such a
        factor amplifies rounding error far beyond the jitter ladder's
        guarantees, so the caller rebuilds from scratch instead.
        """
        try:
            l22 = linalg.cholesky(schur, lower=True)
        except linalg.LinAlgError:
            return None
        if float(np.min(np.diag(l22)) ** 2) < _EXTEND_PIVOT_FLOOR * scale:
            return None
        return l22

    # -- prediction -----------------------------------------------------------

    def _cross_covariance(self, x_star: np.ndarray) -> np.ndarray:
        """``K(x_train, x_star)`` via the cached scaled training inputs.

        Same arithmetic as the kernel's pairwise path, with the
        training-side scaling/norms taken from the posterior cache instead
        of being recomputed per call.
        """
        if self._a_train is not None:
            b = x_star / self.kernel.lengthscales
            bb = np.sum(b * b, axis=1)[None, :]
            sq = self._aa_train + bb - 2.0 * (self._a_train @ b.T)
            return self.kernel.from_sq_dists(np.maximum(sq, 0.0))
        return self.kernel(self._x, x_star)

    def predict(self, x_star: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (of the latent function) at ``x_star``.

        Returns ``(mean, variance)`` in the original target units.
        """
        if self._x is None or self._chol is None:
            raise GPFitError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self._cross_covariance(x_star)  # (n, m)
        mean_z = k_star.T @ self._alpha
        # Variance via a GEMM against the factor's lazily-built triangular
        # inverse — one O(n^3/6) inversion per factor change buys every
        # later predict a matmul instead of a LAPACK solve, which is what
        # the hill-climb's many small neighbourhood batches are made of.
        if self._chol_inv is None:
            self._chol_inv = linalg.solve_triangular(
                self._chol,
                np.eye(self._chol.shape[0]),
                lower=True,
                check_finite=False,
            )
        v = self._chol_inv @ k_star
        var_z = self.kernel.diag(x_star) - np.sum(v * v, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        mean = mean_z * self._y_std + self._y_mean
        var = var_z * self._y_std**2
        return mean, var

    def predict_mean(self, x_star: np.ndarray) -> np.ndarray:
        """Posterior mean only — skips the variance's triangular solve.

        Bit-identical to ``predict(x_star)[0]``; the fast path for
        consumers that never read the variance (the cost-aware acquisition
        ranks by predicted cost *mean*).
        """
        if self._x is None or self._chol is None:
            raise GPFitError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self._cross_covariance(x_star)
        return (k_star.T @ self._alpha) * self._y_std + self._y_mean

    def log_marginal_likelihood(self) -> float:
        """LML of the current fit (standardised-target units).

        Cached at the last :meth:`fit`/:meth:`extend` — no covariance
        rebuild or refactorisation happens here.
        """
        if self._x is None or self._lml is None:
            raise GPFitError("log_marginal_likelihood() before fit()")
        return self._lml

    @property
    def num_observations(self) -> int:
        """Number of training points in the current fit."""
        return 0 if self._x is None else int(self._x.shape[0])


class SparseGaussianProcess:
    """Inducing-point sparse GP (DTC / projected process) for large histories.

    Same surface as :class:`GaussianProcess` — ``fit`` / ``extend`` /
    ``predict`` / ``predict_mean`` / ``log_marginal_likelihood`` /
    ``num_observations`` — so the BO proposer's surrogate cache can hold
    either tier behind one factory hook.  The approximation conditions on
    ``m = max_inducing`` inducing points chosen from the training inputs by
    deterministic greedy k-center (farthest-point) selection, which keeps
    every cost bounded by ``m`` instead of ``n``:

    - ``fit``    — O(n m^2) (one m×m Cholesky plus the projected Gram);
    - ``extend`` — O(m^2) per appended point plus one O(m^3) refactor of
      the m×m inner system: *constant* in ``n``, versus the exact tier's
      O(n^2) factor extension and O(n^3/6) variance-inverse rebuild;
    - ``predict`` — two (m, m)×(m, k) GEMMs per candidate batch, versus the
      exact tier's (n, n)×(n, k).

    Posterior state follows the standard collapsed formulation: with
    ``L = chol(K_mm)``, ``A = L^-1 K_mn``, ``B = I + A A^T / noise`` and
    ``L_B = chol(B)``, the predictive mean at ``x*`` is ``w^T c`` and the
    DTC variance ``k** - |v|^2 + |w|^2``, where ``v = L^-1 k*m``,
    ``w = L_B^-1 v`` and ``c = L_B^-1 (A z) / noise``.  With the inducing
    set equal to the training set (``m = n``) the mean, variance *and* log
    marginal likelihood all reduce to the exact GP posterior — the
    equivalence the tier-1 property tests pin — so shrinking ``m`` is the
    only knob that introduces approximation error.

    Hyperparameters are fit by running the exact tier's multi-restart
    L-BFGS-B machinery on the inducing *subset* (x[Z], y[Z]) — an O(m^3)
    refit regardless of history size, sharing this model's kernel object so
    the optimised parameters land in place.  At ``m = n`` that is the exact
    tier's hyperfit on the full data, seed for seed.

    ``extend`` appends columns to the cached projection ``A`` and refactors
    only the m×m inner system.  The inducing set itself is *bounded
    re-selected*: appends reuse the current set until the history has grown
    past ``reselect_growth`` times its size at the last selection, then one
    O(n m) k-center pass re-picks the inducing points and the factors
    rebuild (hyperparameters fixed).  While the history is still smaller
    than ``max_inducing`` every extension re-selects, so the inducing set
    tracks the data exactly until the cap binds.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-2,
        fit_noise: bool = True,
        restarts: int = 3,
        seed: int = 0,
        analytic_gradients: bool = True,
        fit_workers: int = 1,
        max_inducing: int = 256,
        reselect_growth: float = 1.25,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        if restarts < 0:
            raise ValueError("restarts must be >= 0")
        if fit_workers < 1:
            raise ValueError("fit_workers must be >= 1")
        if max_inducing < 1:
            raise ValueError("max_inducing must be >= 1")
        if reselect_growth <= 1.0:
            raise ValueError("reselect_growth must be > 1")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.fit_noise = fit_noise
        self.restarts = restarts
        self.seed = seed
        self.analytic_gradients = analytic_gradients
        self.fit_workers = fit_workers
        self.max_inducing = max_inducing
        self.reselect_growth = reselect_growth
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._idx: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None  # L = chol(K_mm + jitter I)
        self._chol_inv: Optional[np.ndarray] = None  # L^-1 (per rebuild)
        self._a_proj: Optional[np.ndarray] = None  # A columns, capacity-grown
        self._a_cols = 0
        self._gram: Optional[np.ndarray] = None  # M = A A^T
        self._chol_b: Optional[np.ndarray] = None  # L_B = chol(I + M/noise)
        self._proj_inv: Optional[np.ndarray] = None  # P = L_B^-1 L^-1
        self._c: Optional[np.ndarray] = None
        self._jitter = 0.0
        self._lml: Optional[float] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._a_induce: Optional[np.ndarray] = None
        self._aa_induce: Optional[np.ndarray] = None
        self._reselect_at = 0
        #: Interface parity with the exact tier; the sparse extension has
        #: no degenerate-block fallback (the inner system is m×m and
        #: refactors every call), so this stays 0.
        self.extend_fallbacks = 0
        #: Number of bounded inducing-set re-selections triggered by
        #: ``extend`` (growth past ``reselect_growth``, or the inducing set
        #: still tracking a sub-``max_inducing`` history).
        self.reselections = 0

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        noise_scale: Optional[np.ndarray] = None,
    ) -> "SparseGaussianProcess":
        """Fit to row-stacked inputs ``x`` and targets ``y``.

        ``noise_scale`` is accepted for interface parity with the exact
        tier and ignored: the Nyström projection is homoscedastic by
        construction.  At the history sizes that reach this tier the
        re-tuning layer is expected to run in *evict* mode (drop stale
        rows) rather than discount them, so the approximation never sees
        a non-unit scale in practice.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] < 1:
            raise GPFitError("need at least one observation")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise GPFitError("non-finite values in training data")
        if self.kernel is None:
            self.kernel = Matern52(x.shape[1])
        elif self.kernel.input_dim != x.shape[1]:
            raise ValueError(
                f"kernel expects dim {self.kernel.input_dim}, data has {x.shape[1]}"
            )
        self._x = x
        self._y = y
        self._idx = self._select_inducing(x)
        if optimize_hypers and self._idx.shape[0] >= 3:
            self._optimize_hyperparameters()
        self._rebuild()
        return self

    def _select_inducing(self, x: np.ndarray) -> np.ndarray:
        """Greedy k-center (farthest-point) indices into ``x``, sorted.

        Deterministic: starts from row 0 and repeatedly adds the point
        farthest from the chosen set.  Covers the occupied region with
        near-uniform spacing — the property that keeps the Nyström
        projection well conditioned — in O(n m) distance work.
        """
        n = x.shape[0]
        m = min(self.max_inducing, n)
        if m == n:
            return np.arange(n)
        idx = np.empty(m, dtype=int)
        idx[0] = 0
        dist = np.sum((x - x[0]) ** 2, axis=1)
        for j in range(1, m):
            nxt = int(np.argmax(dist))
            idx[j] = nxt
            dist = np.minimum(dist, np.sum((x - x[nxt]) ** 2, axis=1))
        return np.sort(idx)

    def _optimize_hyperparameters(self) -> None:
        """MLE hypers via the exact tier's machinery on the inducing subset.

        The scratch exact GP shares this model's kernel object, so the
        optimised log-parameters land in place; only the noise term needs
        copying back.  At ``m = n`` this is the exact tier's hyperfit on
        the full data — same seed, same restarts, same reduction order.
        """
        scratch = GaussianProcess(
            kernel=self.kernel,
            noise_variance=self.noise_variance,
            fit_noise=self.fit_noise,
            restarts=self.restarts,
            seed=self.seed,
            analytic_gradients=self.analytic_gradients,
            fit_workers=self.fit_workers,
        )
        scratch.fit(self._x[self._idx], self._y[self._idx], optimize_hypers=True)
        self.noise_variance = scratch.noise_variance

    def _standardise(self) -> None:
        self._y_mean = float(np.mean(self._y))
        spread = float(np.std(self._y))
        self._y_std = spread if spread > 1e-12 else 1.0
        self._z = (self._y - self._y_mean) / self._y_std

    def _rebuild(self) -> None:
        """Factor the inducing system and project every training column."""
        x_m = self._x[self._idx]
        k_mm = self.kernel(x_m, x_m)
        self._chol, self._jitter = _chol_with_jitter(k_mm)
        self._chol_inv = linalg.solve_triangular(
            self._chol,
            np.eye(self._chol.shape[0]),
            lower=True,
            check_finite=False,
        )
        # Scaled inducing inputs: cross-covariances against candidates and
        # new observations cost one small GEMM (same trick as the exact
        # tier's _a_train cache).
        if hasattr(self.kernel, "from_sq_dists"):
            self._a_induce = x_m / self.kernel.lengthscales
            self._aa_induce = np.sum(self._a_induce * self._a_induce, axis=1)[:, None]
        else:
            self._a_induce = None
            self._aa_induce = None
        n = self._x.shape[0]
        m = self._idx.shape[0]
        proj = linalg.solve_triangular(
            self._chol, self._inducing_cross(self._x), lower=True, check_finite=False
        )
        capacity = max(64, 2 * n)
        self._a_proj = np.empty((m, capacity))
        self._a_proj[:, :n] = proj
        self._a_cols = n
        gram = proj @ proj.T
        self._gram = 0.5 * (gram + gram.T)
        self._reselect_at = max(
            n + 1, int(np.ceil(max(n, self.max_inducing) * self.reselect_growth))
        )
        self._finish_posterior()

    def _finish_posterior(self) -> None:
        """Refactor the m×m inner system and cache weights + DTC LML."""
        self._standardise()
        n = self._x.shape[0]
        m = self._idx.shape[0]
        noise = self.noise_variance
        b_mat = np.eye(m) + self._gram / noise
        self._chol_b = linalg.cholesky(b_mat, lower=True)
        a_view = self._a_proj[:, :n]
        az = a_view @ self._z
        self._c = (
            linalg.solve_triangular(
                self._chol_b, az, lower=True, check_finite=False
            )
            / noise
        )
        self._proj_inv = linalg.solve_triangular(
            self._chol_b, self._chol_inv, lower=True, check_finite=False
        )
        # Collapsed DTC evidence: z ~ N(0, A^T A + noise I).
        self._lml = float(
            -0.5 * (self._z @ self._z) / noise
            + 0.5 * (self._c @ self._c)
            - np.sum(np.log(np.diag(self._chol_b)))
            - 0.5 * n * np.log(noise)
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    # -- incremental updates ---------------------------------------------

    def extend(self, x_new: np.ndarray, y_new: np.ndarray) -> "SparseGaussianProcess":
        """Append observations; O(m^2) per point plus one m×m refactor.

        Hyperparameters stay fixed.  New points project onto the *current*
        inducing set — a triangular solve per point and a rank-1 Gram
        update — until the history has grown past the bounded-re-selection
        mark, at which point the inducing set is re-picked by one k-center
        pass and the factors rebuild.  Either way the posterior equals a
        from-scratch :meth:`fit` of the concatenated data (with
        ``optimize_hypers=False``) at the same inducing set.
        """
        if self._x is None or self._chol is None:
            raise GPFitError("extend() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x_new has {x_new.shape[0]} rows but y_new has {y_new.shape[0]}"
            )
        if x_new.shape[0] < 1:
            raise ValueError("extend() needs at least one new observation")
        if x_new.shape[1] != self.kernel.input_dim:
            raise ValueError(
                f"kernel expects dim {self.kernel.input_dim}, data has {x_new.shape[1]}"
            )
        if not np.all(np.isfinite(x_new)) or not np.all(np.isfinite(y_new)):
            raise GPFitError("non-finite values in new observations")

        n = self._x.shape[0]
        total = n + x_new.shape[0]
        self._x = np.vstack((self._x, x_new))
        self._y = np.concatenate((self._y, y_new))
        if self._idx.shape[0] < min(self.max_inducing, total) or total >= self._reselect_at:
            # The inducing set is stale (bounded-growth mark crossed, or
            # still tracking a history below the cap): re-select and
            # rebuild at the current hyperparameters.
            self.reselections += 1
            self._idx = self._select_inducing(self._x)
            self._rebuild()
            return self

        cols = linalg.solve_triangular(
            self._chol, self._inducing_cross(x_new), lower=True, check_finite=False
        )
        if total > self._a_proj.shape[1]:
            grown = np.empty((self._a_proj.shape[0], max(2 * total, 64)))
            grown[:, :n] = self._a_proj[:, :n]
            self._a_proj = grown
        self._a_proj[:, n:total] = cols
        self._a_cols = total
        self._gram += cols @ cols.T
        self._finish_posterior()
        return self

    # -- prediction ------------------------------------------------------

    def _inducing_cross(self, x_star: np.ndarray) -> np.ndarray:
        """``K(x_inducing, x_star)`` via the cached scaled inducing inputs."""
        if self._a_induce is not None:
            b = x_star / self.kernel.lengthscales
            bb = np.sum(b * b, axis=1)[None, :]
            sq = self._aa_induce + bb - 2.0 * (self._a_induce @ b.T)
            return self.kernel.from_sq_dists(np.maximum(sq, 0.0))
        return self.kernel(self._x[self._idx], x_star)

    def predict(self, x_star: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """DTC posterior mean and variance at ``x_star`` (original units)."""
        if self._x is None or self._chol is None:
            raise GPFitError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        k_star = self._inducing_cross(x_star)  # (m, k)
        v = self._chol_inv @ k_star
        w = self._proj_inv @ k_star
        mean_z = w.T @ self._c
        var_z = self.kernel.diag(x_star) - np.sum(v * v, axis=0) + np.sum(w * w, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        return mean_z * self._y_std + self._y_mean, var_z * self._y_std**2

    def predict_mean(self, x_star: np.ndarray) -> np.ndarray:
        """Posterior mean only — one GEMM fewer than :meth:`predict`."""
        if self._x is None or self._chol is None:
            raise GPFitError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        w = self._proj_inv @ self._inducing_cross(x_star)
        return (w.T @ self._c) * self._y_std + self._y_mean

    def log_marginal_likelihood(self) -> float:
        """DTC evidence of the current fit (standardised-target units).

        Cached at the last :meth:`fit`/:meth:`extend`; at ``m = n`` it
        equals the exact GP's marginal likelihood.
        """
        if self._x is None or self._lml is None:
            raise GPFitError("log_marginal_likelihood() before fit()")
        return self._lml

    @property
    def num_observations(self) -> int:
        """Number of training points in the current fit."""
        return 0 if self._x is None else int(self._x.shape[0])

    @property
    def num_inducing(self) -> int:
        """Number of inducing points in the current posterior."""
        return 0 if self._idx is None else int(self._idx.shape[0])


class PriorMeanGP:
    """Residual GP over a fixed prior-mean predictor (transfer warm start).

    A GP's zero-mean assumption is what makes a cold start cold: until the
    local data says otherwise, the posterior reverts to the standardised
    target mean everywhere.  When a *prior* predictor of the response
    surface exists — e.g. a :class:`~repro.core.transfer.TransferPrior`
    fitted to a mapped workload's normalised observations — this wrapper
    fits the inner GP to the **residuals** ``y - prior(x)`` and adds the
    prior back at prediction time, so the posterior mean starts from the
    prior surface instead of from flat and the acquisition surface is
    informative from the first model-based proposal.

    ``prior_mean`` maps encoded rows to *normalised* (zero-mean/unit-std)
    responses; the wrapper rescales them to the target's units with the
    mean/std of the ``y`` passed to :meth:`fit`, frozen for the lifetime
    of the instance so :meth:`extend` stays numerically identical to a
    from-scratch ``fit`` at the same hyperparameters (the surrogate cache
    builds a fresh instance on every rebuild, which is where the scale
    refreshes).  The prior itself must be a fixed deterministic function
    for the whole session.

    The delegated surface (``kernel``, settable ``noise_variance``,
    ``fit``/``extend``/``predict``/``predict_mean``/
    ``log_marginal_likelihood``/``num_observations``/``extend_fallbacks``)
    matches both inner tiers, so the wrapper drops into
    ``_SurrogateCache`` unchanged; :meth:`SurrogateFactory.tier_of`
    unwraps it via the ``inner`` attribute.
    """

    def __init__(self, inner, prior_mean) -> None:
        self.inner = inner
        self.prior_mean = prior_mean
        self._scale: Optional[Tuple[float, float]] = None

    def _prior_units(self, x: np.ndarray) -> np.ndarray:
        """The prior's prediction at ``x``, rescaled to target units."""
        mean, std = self._scale
        values = np.asarray(self.prior_mean(x), dtype=float).ravel()
        return mean + std * values

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        noise_scale: Optional[np.ndarray] = None,
    ) -> "PriorMeanGP":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if y.size == 0:
            raise GPFitError("fit() requires at least one observation")
        mean = float(y.mean())
        std = float(y.std())
        if std <= 1e-12:
            std = abs(mean) * 0.1 + 1.0
        self._scale = (mean, std)
        self.inner.fit(
            x,
            y - self._prior_units(x),
            optimize_hypers=optimize_hypers,
            noise_scale=noise_scale,
        )
        return self

    def extend(self, x_new: np.ndarray, y_new: np.ndarray) -> "PriorMeanGP":
        if self._scale is None:
            raise GPFitError("extend() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        self.inner.extend(x_new, y_new - self._prior_units(x_new))
        return self

    def predict(self, x_star: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        mu, var = self.inner.predict(x_star)
        return mu + self._prior_units(x_star), var

    def predict_mean(self, x_star: np.ndarray) -> np.ndarray:
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        mu = self.inner.predict_mean(x_star)
        return mu + self._prior_units(x_star)

    def log_marginal_likelihood(self) -> float:
        """The inner (residual) GP's cached marginal likelihood."""
        return self.inner.log_marginal_likelihood()

    @property
    def kernel(self):
        return self.inner.kernel

    @property
    def noise_variance(self) -> float:
        return self.inner.noise_variance

    @noise_variance.setter
    def noise_variance(self, value: float) -> None:
        self.inner.noise_variance = value

    @property
    def num_observations(self) -> int:
        return self.inner.num_observations

    @property
    def extend_fallbacks(self) -> int:
        return self.inner.extend_fallbacks


class SurrogateFactory:
    """Size-based exact↔sparse tier policy behind one ``build`` hook.

    The proposer's surrogate cache asks :meth:`tier_for` which tier a
    training set of ``n`` rows belongs to and :meth:`build` for a fresh
    unfitted model of that tier.  Below ``sparse_threshold`` the factory
    returns the exact :class:`GaussianProcess` configured exactly as the
    pre-tier code did, so small-history behaviour is bit-identical;
    at or above it, a :class:`SparseGaussianProcess` capped at
    ``max_inducing`` inducing points.  ``sparse_threshold=None`` disables
    the sparse tier entirely.

    Parameters
    ----------
    kernel_factory:
        Zero-argument callable returning a fresh :class:`Kernel` for the
        model's input dimension.
    sparse_threshold:
        History size at which proposals switch to the sparse tier;
        ``None`` never switches.
    max_inducing:
        Inducing-set cap for the sparse tier.
    seed / fit_workers:
        Forwarded to both tiers' hyperparameter fits.
    prior_mean:
        Optional fixed predictor of the *normalised* response surface
        (e.g. a :class:`~repro.core.transfer.TransferPrior`); every built
        surrogate is then wrapped in :class:`PriorMeanGP`, which fits the
        tier to residuals against the prior and adds it back at
        prediction — the cross-session warm-start path.  ``None`` (the
        default) builds bare tiers, bit-identical to the pre-prior code.
    """

    def __init__(
        self,
        kernel_factory,
        sparse_threshold: Optional[int] = 512,
        max_inducing: int = 256,
        seed: int = 0,
        fit_workers: int = 1,
        prior_mean=None,
    ) -> None:
        if sparse_threshold is not None and sparse_threshold < 4:
            raise ValueError("sparse_threshold must be >= 4 (or None)")
        if max_inducing < 4:
            raise ValueError("max_inducing must be >= 4")
        self.kernel_factory = kernel_factory
        self.sparse_threshold = sparse_threshold
        self.max_inducing = max_inducing
        self.seed = seed
        self.fit_workers = fit_workers
        self.prior_mean = prior_mean

    def tier_for(self, n: int) -> str:
        """``"exact"`` or ``"sparse"`` for an ``n``-row training set."""
        if self.sparse_threshold is not None and n >= self.sparse_threshold:
            return "sparse"
        return "exact"

    @staticmethod
    def tier_of(gp) -> str:
        """The tier an already-built surrogate belongs to.

        A :class:`PriorMeanGP` wrapper belongs to its inner model's tier —
        the prior changes the mean function, not the size policy.
        """
        inner = getattr(gp, "inner", gp)
        return "sparse" if isinstance(inner, SparseGaussianProcess) else "exact"

    def build(self, n: int):
        """A fresh unfitted surrogate of the tier ``n`` rows call for."""
        if self.tier_for(n) == "sparse":
            gp = SparseGaussianProcess(
                kernel=self.kernel_factory(),
                seed=self.seed,
                fit_workers=self.fit_workers,
                max_inducing=self.max_inducing,
            )
        else:
            gp = GaussianProcess(
                kernel=self.kernel_factory(),
                seed=self.seed,
                fit_workers=self.fit_workers,
            )
        if self.prior_mean is not None:
            return PriorMeanGP(gp, self.prior_mean)
        return gp
