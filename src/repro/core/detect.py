"""Online change-point detection and re-tuning policies.

Non-stationary environments (interference ramps, straggler onset, shard
failures) silently invalidate a tuner's model: the surrogate keeps
predicting the pre-drift surface and the incumbent keeps gating probes
against a throughput the cluster can no longer deliver.  This module
closes the loop:

- :class:`ChangePointDetector` is a :class:`~repro.core.session.SessionCallback`
  that watches each completed probe's *residual* — observed objective
  minus the surrogate's out-of-sample posterior mean, in posterior-sigma
  units — and runs a two-sided Page–Hinkley test over the stream.  The
  surrogate the proposer cached at proposal time has not seen the round's
  trials yet, so the residuals are genuinely predictive errors; for
  strategies without a GP surrogate (random search, baselines) a rolling
  window of recent objectives supplies the baseline instead.
- On an alarm the detector emits a :class:`DriftEvent` into the history's
  event log and hands the session's strategy to a :class:`RetuningPolicy`,
  which marks pre-change trials stale (evict or noise-discount, see
  :meth:`~repro.core.bo.BayesianProposer.apply_retuning`), drops the
  early-termination incumbent, and queues a re-probe of the incumbent
  configuration under the new regime.

Detection is deliberately conservative: a warm-up quota before the first
test, a cooldown after each alarm (the re-probe and fresh exploration
points would otherwise re-trigger it), and a drift term ``delta`` that
absorbs measurement noise.  With no drift present the detector observes
and never intervenes, so attaching it leaves stationary sessions
bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.session import SessionCallback
from repro.core.trial import Trial, TrialHistory


@dataclass(frozen=True)
class DriftEvent:
    """One detected change-point.

    ``trial_index`` is the last trial *included* in the alarm — re-tuning
    policies treat trials up to and including it as pre-change.
    ``direction`` is ``"decrease"`` (objective fell: interference,
    stragglers) or ``"increase"`` (objective rose: interference lifted).
    ``statistic`` is the Page–Hinkley deviation that crossed
    ``threshold``.
    """

    trial_index: int
    wall_clock_s: float
    statistic: float
    threshold: float
    direction: str


class _PageHinkley:
    """Two-sided Page–Hinkley test over a (roughly standardised) stream.

    The classic formulation: each observation is centred on the stream's
    *running mean* before accumulating, so a constant offset in the
    stream never alarms — only a change relative to the stream's own
    history does.  This matters for BO residuals, which carry a
    persistent negative bias (the acquisition function probes points the
    surrogate is optimistic about), and that bias must not masquerade as
    drift.  One cumulative sum per side: the decrease side alarms when
    the running sum falls ``threshold`` below its historical maximum,
    the increase side symmetrically.  ``delta`` is the per-observation
    drift allowance — deviations smaller than ``delta`` per step never
    accumulate.
    """

    def __init__(self, delta: float, threshold: float) -> None:
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._low = 0.0
        self._low_max = 0.0
        self._high = 0.0
        self._high_min = 0.0

    def update(self, value: float) -> Optional[tuple]:
        """Feed one observation; returns ``(direction, statistic)`` on alarm."""
        self._n += 1
        self._mean += (value - self._mean) / self._n
        centered = value - self._mean
        self._low += centered + self.delta
        if self._low > self._low_max:
            self._low_max = self._low
        stat_low = self._low_max - self._low
        if stat_low > self.threshold:
            return ("decrease", stat_low)
        self._high += centered - self.delta
        if self._high < self._high_min:
            self._high_min = self._high
        stat_high = self._high - self._high_min
        if stat_high > self.threshold:
            return ("increase", stat_high)
        return None


class RetuningPolicy:
    """What to do when a change-point is detected.

    Parameters
    ----------
    mode:
        ``"discount"`` (default) keeps pre-change trials with observation
        noise inflated by ``1/discount`` — pre-change structure still
        guides exploration, but cannot overrule fresh data; ``"evict"``
        drops them from the surrogate training set entirely (harsher —
        BENCH_P8 found it discards global structure the tuner still
        needs); ``"off"`` detects and records events without touching
        the strategy.
    discount:
        The noise-discount factor in (0, 1] used by ``"discount"`` mode.
    reprobe_incumbent:
        Queue the best-so-far configuration for an immediate re-probe, so
        the tuner learns the incumbent's post-drift value first.
    refresh_initial:
        Number of fresh random exploration points to queue behind the
        re-probe, re-seeding the surrogate in the new regime.
    """

    def __init__(
        self,
        mode: str = "discount",
        discount: float = 0.25,
        reprobe_incumbent: bool = True,
        refresh_initial: int = 2,
    ) -> None:
        if mode not in ("evict", "discount", "off"):
            raise ValueError("mode must be 'evict', 'discount', or 'off'")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        if refresh_initial < 0:
            raise ValueError("refresh_initial must be non-negative")
        self.mode = mode
        self.discount = discount
        self.reprobe_incumbent = reprobe_incumbent
        self.refresh_initial = refresh_initial

    def apply(self, strategy, history: TrialHistory, event: DriftEvent) -> bool:
        """Apply the policy to ``strategy``; True when a re-tune happened.

        Walks wrapper chains (``inner`` attributes) to find a strategy
        exposing ``apply_retuning``; strategies without one (random
        search, baselines) are left untouched — the event is still on
        record.
        """
        if self.mode == "off":
            return False
        target = strategy
        for _ in range(8):
            if target is None:
                return False
            if hasattr(target, "apply_retuning"):
                break
            target = getattr(target, "inner", None)
        else:
            return False
        reprobe = None
        if self.reprobe_incumbent:
            best = history.best()
            if best is not None:
                reprobe = best.config
        target.apply_retuning(
            event.trial_index + 1,
            discount=None if self.mode == "evict" else self.discount,
            reprobe=reprobe,
            refresh_initial=self.refresh_initial,
        )
        return True


def _find_proposer(strategy):
    """The strategy's :class:`~repro.core.bo.BayesianProposer`, if any."""
    obj = strategy
    for _ in range(8):
        if obj is None:
            return None
        proposer = getattr(obj, "_proposer", None)
        if proposer is not None:
            return proposer
        obj = getattr(obj, "inner", None)
    return None


def _surrogate_sigma_units(gp):
    """(noise std in target units, y_std) for a fitted surrogate, or None."""
    inner = gp
    for _ in range(4):
        y_std = getattr(inner, "_y_std", None)
        if y_std is not None:
            noise = float(getattr(gp, "noise_variance", 0.0))
            return float(np.sqrt(max(noise, 1e-12))) * float(y_std), float(y_std)
        inner = getattr(inner, "inner", None)
        if inner is None:
            return None
    return None


class ChangePointDetector(SessionCallback):
    """Session callback running Page–Hinkley over probe residuals.

    Parameters
    ----------
    policy:
        :class:`RetuningPolicy` invoked on each alarm; ``None`` installs
        the default evict policy.
    delta:
        Page–Hinkley drift allowance per observation, in (normalised)
        sigma units.  On a roughly unit-variance residual stream the
        cumulative sums random-walk, so the allowance must be a visible
        fraction of a sigma — far smaller and ordinary excursions reach
        any threshold eventually.
    threshold:
        Alarm threshold on the accumulated deviation, in sigma units.
        Higher is more conservative; with ``delta=0.3`` a threshold of 8
        keeps stationary unit-variance streams quiet for hundreds of
        observations while a 3-sigma mean shift alarms within ~2-4.
    warmup:
        Completed probes to observe before testing begins (the surrogate
        and rolling baseline need data before residuals mean anything).
    cooldown:
        Probes to skip after an alarm before testing resumes — the
        re-probe and refresh points land in this window.
    window:
        Rolling-window length for the non-surrogate fallback baseline.
    clip:
        Residuals are winsorised to ``[-clip, clip]`` scale units before
        the Page–Hinkley update.  Objective landscapes are heavy-tailed
        (one catastrophically bad configuration can sit tens of sigma
        from the posterior mean), and without clipping a single outlier
        trips the alarm no matter how high the threshold.  Clipping caps
        any one observation's contribution, so only a *sustained* offset
        — actual drift — can accumulate past the threshold.

    Residuals are additionally re-scaled by the rolling median absolute
    deviation of the recent residual stream before testing.  Posterior
    sigma units are only as good as the surrogate's calibration: on
    heavy-tailed objectives a few catastrophic observations inflate the
    fitted signal variance so much that a genuine regime change amounts
    to a fraction of a sigma and would never alarm.  Normalising by the
    stream's own robust spread restores a unit scale — "how unusual is
    this residual relative to recent residuals" — independent of how
    over-dispersed the surrogate happens to be.

    The detector's :attr:`events` list accumulates every alarm; each is
    also pushed into the history via
    :meth:`~repro.core.trial.TrialHistory.record_event`.
    """

    def __init__(
        self,
        policy: Optional[RetuningPolicy] = None,
        delta: float = 0.3,
        threshold: float = 8.0,
        warmup: int = 10,
        cooldown: int = 8,
        window: int = 10,
        clip: float = 4.0,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if window < 3:
            raise ValueError("window must be >= 3")
        if clip <= 0:
            raise ValueError("clip must be positive")
        self.policy = policy if policy is not None else RetuningPolicy()
        self.delta = delta
        self.threshold = threshold
        self.warmup = warmup
        self.cooldown = cooldown
        self.window = window
        self.clip = clip
        self.events: List[DriftEvent] = []
        self._ph = _PageHinkley(delta, threshold)
        self._strategy = None
        self._space = None
        self._seen = 0
        self._cooldown_left = 0
        self._recent: deque = deque(maxlen=window)
        self._resid_hist: deque = deque(maxlen=4 * window)

    # -- SessionCallback hooks ------------------------------------------------

    def on_session_start(self, strategy, env, space, budget) -> None:
        self._strategy = strategy
        self._space = space
        self._seen = 0
        self._cooldown_left = 0
        self._recent = deque(maxlen=self.window)
        self._resid_hist = deque(maxlen=4 * self.window)
        self._ph.reset()
        self.events = []

    def on_round_end(
        self, round_index: int, trials: Sequence[Trial], history: TrialHistory
    ) -> None:
        for trial in trials:
            if not trial.ok or trial.measurement.fidelity == "fantasy":
                continue
            self._observe(trial, history)

    # -- internals ------------------------------------------------------------

    def _observe(self, trial: Trial, history: TrialHistory) -> None:
        residual = self._residual(trial)
        self._recent.append(float(trial.objective))
        self._seen += 1
        if residual is None or self._seen <= self.warmup:
            if residual is not None:
                self._resid_hist.append(float(residual))
            return
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self._resid_hist.append(float(residual))
            return
        value = residual / self._residual_scale()
        self._resid_hist.append(float(residual))
        alarm = self._ph.update(float(np.clip(value, -self.clip, self.clip)))
        if alarm is None:
            return
        direction, statistic = alarm
        event = DriftEvent(
            trial_index=trial.index,
            wall_clock_s=float(trial.cumulative_wall_clock_s),
            statistic=float(statistic),
            threshold=self.threshold,
            direction=direction,
        )
        self.events.append(event)
        history.record_event(event)
        # Full restart, not just a cooldown: the re-tuned surrogate needs
        # a fresh warm-up's worth of post-change observations before its
        # residuals are trustworthy again — otherwise the rebuild itself
        # re-triggers the detector and each alarm evicts the very data the
        # tuner just gathered.
        self._ph.reset()
        self._recent.clear()
        self._resid_hist.clear()
        self._seen = 0
        self._cooldown_left = self.cooldown
        self.policy.apply(self._strategy, history, event)

    def _residual_scale(self) -> float:
        """Robust spread of the recent residual stream (floored near 1).

        ``1.4826 * MAD`` estimates the standard deviation without being
        dragged by catastrophic-outlier residuals.  The floor keeps a
        well-calibrated surrogate's ~unit-scale residuals untouched and
        caps the amplification an over-tight stream could introduce.
        """
        if len(self._resid_hist) < max(5, self.warmup // 2):
            return 1.0
        resid = np.asarray(self._resid_hist, dtype=float)
        mad = float(np.median(np.abs(resid - np.median(resid))))
        return max(1.4826 * mad, 0.2)

    def _residual(self, trial: Trial) -> Optional[float]:
        """Standardised prediction error for one completed probe.

        Prefers the proposer's cached surrogate (fitted before this probe
        was proposed, so the prediction is out-of-sample); falls back to a
        rolling-window z-score when no surrogate is available.
        """
        surrogate = self._surrogate_residual(trial)
        if surrogate is not None:
            return surrogate
        return self._window_residual(trial)

    def _surrogate_residual(self, trial: Trial) -> Optional[float]:
        proposer = _find_proposer(self._strategy)
        if proposer is None:
            return None
        gp = getattr(proposer._objective_cache, "gp", None)
        if gp is None:
            return None
        space = getattr(proposer, "space", None) or self._space
        if space is None:
            return None
        try:
            x = space.encode(trial.config)[None, :]
            mu, var = gp.predict(x)
        except Exception:
            return None
        observed = float(trial.objective)
        if getattr(proposer, "_log_active", False):
            if observed <= 0:
                return None
            observed = float(np.log(observed))
        units = _surrogate_sigma_units(gp)
        noise_std = units[0] if units is not None else 0.0
        sigma = float(np.sqrt(max(float(var[0]), 1e-12) + noise_std**2))
        return (observed - float(mu[0])) / max(sigma, 1e-9)

    def _window_residual(self, trial: Trial) -> Optional[float]:
        if len(self._recent) < 3:
            return None
        recent = np.asarray(self._recent, dtype=float)
        mean = float(recent.mean())
        std = float(recent.std())
        scale = std if std > 1e-9 else max(abs(mean) * 0.05, 1e-9)
        return (float(trial.objective) - mean) / scale
