"""Tuning sessions: the propose→probe loop with pluggable trial execution.

The seed hard-wired the run loop inside :meth:`SearchStrategy.run`: one
probe at a time, cost accounted as pure machine-seconds.  This module
extracts that loop into a :class:`TuningSession`, which owns the budget,
history, and RNG, and delegates *how probes execute* to an
:class:`Executor`:

- :class:`SerialExecutor` — one probe per round, exactly the seed's
  semantics (histories are trial-for-trial identical at the same seed);
- :class:`ParallelExecutor` — K probes per round, the cluster setting the
  paper targets.  Strategies supply the batch via
  :meth:`SearchStrategy.propose_batch` (the BO tuner uses constant-liar
  fantasisation, see :mod:`repro.core.parallel`), every member is probed,
  and the history is charged machine cost for all K probes but wall-clock
  only for the slowest one — the synchronous round barrier a real K-machine
  deployment pays;
- :class:`AsyncExecutor` — K workers with **no round barrier**: a
  simulated event-driven free-list where each worker pulls a fresh
  proposal (conditioned on the still-in-flight configurations via
  :meth:`SearchStrategy.propose_async`) the moment its probe completes.
  Machine cost is identical per probe to the synchronous executors; the
  wall-clock is each worker's own timeline, so heterogeneous probe
  durations no longer leave K-1 workers idle behind a round's straggler.

Every executor can additionally fan the session across an
:class:`~repro.core.fleet.EnvironmentPool` — a fleet of named environment
shards with per-shard capacities and probe-speed multipliers.  With
``pool=`` set, probe dispatch goes through the pool's
:class:`~repro.core.fleet.ShardScheduler`, worker slots become *shard*
slots (so per-shard wall-clock timelines replace the single environment's
timeline), every trial records the shard it ran on (``Trial.shard``,
itemised by :meth:`~repro.core.trial.TrialHistory.cost_by_shard`), and
asynchronous proposals receive the target shard's descriptor so
constant-liar fantasies can lie with shard-specific probe cost.
``pool=None`` (the default) keeps single-environment semantics
bit-identical to the pre-fleet code.

Sessions also emit lifecycle events to :class:`SessionCallback` observers;
:class:`ProgressLogger` (per-round progress lines) and
:class:`JsonlTrialLog` (a JSONL sink for offline analysis) ship here.

Example
-------
>>> from repro.core import MLConfigTuner, TuningBudget
>>> from repro.core.session import AsyncExecutor, TuningSession
>>> session = TuningSession(MLConfigTuner(), executor=AsyncExecutor(4))
>>> # result = session.run(env, space, TuningBudget(max_trials=40))
"""

from __future__ import annotations

import json
import os
import sys
from abc import ABC, abstractmethod
from heapq import heappop, heappush
from typing import IO, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointJournal,
    JournalledStrategy,
    executor_fingerprint,
    session_meta,
    space_fingerprint,
)
from repro.core.fleet import EnvironmentPool, EnvironmentShard
from repro.core.strategy import SearchStrategy, TuningBudget, TuningResult
from repro.core.trial import Trial, TrialHistory
from repro.mlsim import Measurement, TrainingEnvironment

#: Attempts a preempted probe gets (original launch + relaunches) before
#: the executor abandons it as a failed trial.
MAX_PROBE_ATTEMPTS = 3


def _set_env_clock(env, t: float) -> None:
    """Stamp an environment's virtual clock, if it has one.

    Drift schedules are evaluated at ``TrainingEnvironment.clock_s``; the
    stamp is a plain attribute write, inert without a drift schedule, so
    stamping unconditionally preserves bit-identical static trajectories.
    """
    set_clock = getattr(env, "set_clock", None)
    if set_clock is not None:
        set_clock(t)


def _measure_on(pool, shard, strategy, config, t: float):
    """One probe attempt on a shard at virtual time ``t``.

    Stamps the shard environment's clock and applies any open
    failure-rate spike from the pool's injector as a transient
    ``extra_failure_rate`` for just this probe.
    """
    env = shard.env
    _set_env_clock(env, t)
    injector = pool.injector
    if injector is not None:
        boost = injector.failure_boost(shard.name, t)
        if boost > 0 and hasattr(env, "extra_failure_rate"):
            env.extra_failure_rate = boost
            try:
                return shard.measure(strategy, config)
            finally:
                env.extra_failure_rate = 0.0
    return shard.measure(strategy, config)


def _abandoned_measurement(last: Measurement) -> Measurement:
    """The failed, zero-cost record of a probe abandoned to outages.

    The burned machine time of every preempted attempt was already billed
    through ``charge_cancelled``, so the abandonment itself is free.
    """
    return Measurement(
        config=last.config,
        ok=False,
        fidelity=last.fidelity,
        error="probe preempted by repeated shard outages",
        probe_cost_s=0.0,
    )


def _measure_preemptible(pool, strategy, shard, config, start_s, history):
    """Run one probe on a shard, retrying across outage preemptions.

    Returns ``(measurement, end_s)``.  Each attempt that an outage window
    cuts short bills the wall-clock it burned via
    :meth:`~repro.core.trial.TrialHistory.charge_cancelled` and relaunches
    on the same shard once it recovers; after
    :data:`MAX_PROBE_ATTEMPTS` preemptions the probe is abandoned as a
    failed zero-cost measurement (the serial executor redirects to other
    shards instead — it holds no other slots while waiting).
    """
    injector = pool.injector
    t = float(start_s)
    measurement = None
    for _ in range(MAX_PROBE_ATTEMPTS):
        measurement = _measure_on(pool, shard, strategy, config, t)
        end_s = t + max(0.0, measurement.probe_cost_s)
        preempt_s = injector.preemption_at(shard.name, t, end_s)
        if preempt_s is None:
            return measurement, end_s
        history.charge_cancelled(max(0.0, preempt_s - t), shard=shard.name)
        t = injector.up_after(shard.name, preempt_s)
    return _abandoned_measurement(measurement), t


class SessionCallback:
    """Observer of session lifecycle events.  Every hook is an optional no-op.

    Hooks fire in a fixed order: ``on_session_start``, then per round
    ``on_trial_start`` for every launched probe, ``on_trial_end`` for every
    recorded trial, ``on_round_end`` once, and finally ``on_session_end``.

    Under an :class:`AsyncExecutor` there is no round barrier:
    ``on_trial_start`` fires at *launch* (its ``index`` is the launch
    ordinal) while ``on_trial_end`` fires at *completion* (the recorded
    :attr:`Trial.index` is the completion ordinal), so a cheap probe
    launched late can end before an expensive probe launched early, and a
    probe still in flight when the session stops gets a start event with
    no matching end (it was cancelled at the budget boundary).  Pair a
    start event with its end event through :attr:`Trial.launch_index`,
    never by ``Trial.index``.
    """

    def on_session_start(
        self,
        strategy: SearchStrategy,
        env: TrainingEnvironment,
        space: ConfigSpace,
        budget: TuningBudget,
    ) -> None:
        """The session is about to run its first round."""

    def on_trial_start(self, index: int, config: ConfigDict) -> None:
        """A probe of ``config`` is being launched as trial ``index``."""

    def on_trial_end(self, trial: Trial) -> None:
        """A probe finished and was recorded in the history."""

    def on_round_end(
        self, round_index: int, trials: Sequence[Trial], history: TrialHistory
    ) -> None:
        """A round (all its probes) completed."""

    def on_session_end(self, result: TuningResult) -> None:
        """The session finished (budget exhausted or strategy done)."""


class _Events:
    """Fans one lifecycle event out to every registered callback."""

    def __init__(self, callbacks: Sequence[SessionCallback]) -> None:
        self._callbacks = list(callbacks)

    def session_start(self, strategy, env, space, budget) -> None:
        for callback in self._callbacks:
            callback.on_session_start(strategy, env, space, budget)

    def trial_start(self, index: int, config: ConfigDict) -> None:
        for callback in self._callbacks:
            callback.on_trial_start(index, config)

    def trial_end(self, trial: Trial) -> None:
        for callback in self._callbacks:
            callback.on_trial_end(trial)

    def round_end(self, round_index, trials, history) -> None:
        for callback in self._callbacks:
            callback.on_round_end(round_index, trials, history)

    def session_end(self, result: TuningResult) -> None:
        for callback in self._callbacks:
            callback.on_session_end(result)


class ProgressLogger(SessionCallback):
    """Log one line per round: trials, best objective, machine cost, wall-clock."""

    def __init__(self, stream: Optional[TextIO] = None, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.stream = stream
        self.every = every
        self._name = "session"

    def on_session_start(self, strategy, env, space, budget) -> None:
        self._name = strategy.name

    def on_round_end(self, round_index, trials, history) -> None:
        if (round_index + 1) % self.every:
            return
        best = history.best_objective()
        best_text = f"{best:.2f}" if best is not None else "-"
        print(
            f"[{self._name}] round {round_index + 1}: trials={len(history)} "
            f"best={best_text} cost={history.total_cost_s:.0f}s "
            f"wall={history.total_wall_clock_s:.0f}s",
            file=self.stream or sys.stderr,
        )


class JsonlTrialLog(SessionCallback):
    """Write the session as JSON lines: session markers plus one trial per line.

    The file is truncated at session start, so one sink instance logs one
    session at a time (reuse across sequential sessions overwrites).

    ``durable=True`` additionally ``os.fsync``'s the file after every
    record, so a process crash cannot silently lose the buffered tail of
    the log — the offline record then always ends at a trial the session
    actually completed.
    """

    def __init__(self, path: str, durable: bool = False) -> None:
        self.path = path
        self.durable = durable
        self._handle: Optional[IO[str]] = None

    def _write(self, payload: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w")
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def on_session_start(self, strategy, env, space, budget) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._write(
            {
                "event": "session_start",
                "strategy": strategy.name,
                "environment": env.describe(),
                "budget_trials": budget.max_trials,
                "budget_cost_s": budget.max_cost_s,
                "budget_wall_clock_s": budget.max_wall_clock_s,
            }
        )

    def on_trial_end(self, trial: Trial) -> None:
        if self._handle is None:
            # Same guard as on_session_end: a trial event with no session
            # open would lazily reopen the file in "w" mode and truncate a
            # previously completed session's log.
            return
        self._write(
            {
                "event": "trial",
                "index": trial.index,
                "launch": trial.launch_index,
                "round": trial.round_index,
                "shard": trial.shard,
                "config": trial.config,
                "ok": trial.ok,
                "objective": None if trial.objective is None else float(trial.objective),
                "probe_cost_s": float(trial.measurement.probe_cost_s),
                "cumulative_cost_s": float(trial.cumulative_cost_s),
                "cumulative_wall_clock_s": float(trial.cumulative_wall_clock_s),
            }
        )

    def on_session_end(self, result: TuningResult) -> None:
        if self._handle is None:
            # No session is open: the callback was attached to a session
            # that aborted before on_session_start, or session_end fired
            # twice.  Writing would lazily reopen the file in "w" mode and
            # truncate the log to a lone session_end record.
            return
        best = result.best_objective
        payload = {
            "event": "session_end",
            "num_trials": result.num_trials,
            "best_objective": None if best is None else float(best),
            "total_cost_s": float(result.total_cost_s),
            "total_wall_clock_s": float(result.history.total_wall_clock_s),
        }
        if result.history.cancelled_cost_s > 0:
            payload["cancelled_cost_s"] = float(result.history.cancelled_cost_s)
        cost_by_shard = result.history.cost_by_shard()
        if any(shard is not None for shard in cost_by_shard):
            # Fleet sessions: itemise the machine bill per shard so the log
            # alone reconstructs where the probe seconds went.  Non-pool
            # cost (the None key) is labelled "unsharded".
            payload["cost_by_shard"] = {
                (shard if shard is not None else "unsharded"): float(cost)
                for shard, cost in sorted(
                    cost_by_shard.items(), key=lambda item: item[0] or ""
                )
            }
        self._write(payload)
        self._handle.close()
        self._handle = None


class Executor(ABC):
    """How one round of probes executes against the environment.

    Executors constructed with ``pool=`` dispatch probes through an
    :class:`~repro.core.fleet.EnvironmentPool` instead of the single
    environment passed to :meth:`run_round` (which may then be ``None``):
    the pool's scheduler picks the shard, the shard's environment runs the
    probe, and the recorded trial carries the shard name.
    """

    workers: int = 1
    pool: Optional[EnvironmentPool] = None

    def reset(self, seed: int = 0) -> None:
        """Hook: clear per-session state (called at the start of every run).

        Stateful executors (the async free-list) must override this so a
        reused instance does not leak in-flight probes or worker timelines
        from a previous session; overrides must call ``super().reset(seed)``
        so an attached pool re-derives its per-shard RNG streams from the
        session seed and rewinds occupancy and environment counters.
        """
        if self.pool is not None:
            self.pool.reset(seed)

    def has_pending(self) -> bool:
        """Hook: True while launched-but-unrecorded probes are in flight.

        The session keeps calling :meth:`run_round` to drain them after
        the strategy finishes (their measurements exist and their machine
        time was spent — discarding them would under-report the session);
        only budget exhaustion cancels pending probes outright.
        """
        return False

    def cancel_pending(self, history: TrialHistory) -> None:
        """Hook: cancel in-flight probes when the session stops mid-flight.

        Called once after the session loop exits with probes still
        pending (budget exhaustion — the only exit that strands them).
        Executors that track in-flight probes bill the machine time each
        one burned up to the cancellation instant via
        :meth:`TrialHistory.charge_cancelled`; a cancelled probe produced
        no trial, but its elapsed seconds were still spent on the cluster.
        """

    @abstractmethod
    def run_round(
        self,
        strategy: SearchStrategy,
        env: TrainingEnvironment,
        space: ConfigSpace,
        history: TrialHistory,
        rng: np.random.Generator,
        budget: TuningBudget,
        events: _Events,
    ) -> List[Trial]:
        """Propose, probe, and record one round; return the recorded trials."""


class SerialExecutor(Executor):
    """One probe per round — the seed's exact serial semantics.

    With a pool, each probe is placed on the shard the scheduler picks
    (one at a time, so the pool is never saturated); the wall-clock stays
    the serial sum of probe costs.  A homogeneous pool over one shared
    environment reproduces the single-environment trial sequence
    bit-identically, whatever the shard rotation.
    """

    def __init__(self, pool: Optional[EnvironmentPool] = None) -> None:
        self.pool = pool

    def run_round(self, strategy, env, space, history, rng, budget, events):
        shard: Optional[EnvironmentShard] = None
        injector = None if self.pool is None else self.pool.injector
        round_start_s = history.total_wall_clock_s
        if self.pool is not None:
            if injector is not None:
                self.pool.set_clock(round_start_s)
            shard = self.pool.scheduler.select(self.pool)
            if shard is None and injector is not None:
                # Every shard is inside an outage window: the session
                # waits out the earliest recovery (dead wall-clock, no
                # machine cost) instead of stalling out.
                up = self.pool.next_up_s()
                if up is not None and up > round_start_s:
                    history.advance_wall_clock(up - round_start_s)
                    round_start_s = history.total_wall_clock_s
                    self.pool.set_clock(round_start_s)
                    shard = self.pool.scheduler.select(self.pool)
            if shard is None:
                return []
        config = strategy.propose(history, space, rng)
        events.trial_start(len(history), config)
        if shard is None:
            _set_env_clock(env, round_start_s)
            measurement = strategy.measure(env, config)
            trial = history.record(config, measurement)
        elif injector is None:
            _set_env_clock(shard.env, round_start_s)
            self.pool.acquire(shard.name)
            try:
                measurement = shard.measure(strategy, config)
            finally:
                self.pool.release(shard.name)
            trial = history.record(config, measurement, shard=shard.name)
        else:
            measurement, end_s, shard = self._probe_with_redirect(
                strategy, shard, config, round_start_s, history
            )
            trial = history.record(
                config,
                measurement,
                wall_clock_s=max(0.0, end_s - round_start_s),
                shard=shard.name,
            )
        strategy.observe(trial)
        events.trial_end(trial)
        return [trial]

    def _probe_with_redirect(self, strategy, shard, config, start_s, history):
        """Probe under failure injection, redirecting across preemptions.

        Each attempt that an outage preempts bills the burned wall-clock
        (:meth:`TrialHistory.charge_cancelled`) and asks the scheduler to
        re-place the probe at the preemption instant — downed shards are
        skipped, so the relaunch lands on any healthy shard (or the
        original one after it recovers).  After
        :data:`MAX_PROBE_ATTEMPTS` attempts, or with the whole fleet
        down past its last recovery, the probe is abandoned as a failed
        zero-cost measurement.  Returns ``(measurement, end_s, shard)``.
        """
        injector = self.pool.injector
        t = float(start_s)
        measurement = None
        for _ in range(MAX_PROBE_ATTEMPTS):
            self.pool.acquire(shard.name)
            try:
                measurement = _measure_on(self.pool, shard, strategy, config, t)
            finally:
                self.pool.release(shard.name)
            end_s = t + max(0.0, measurement.probe_cost_s)
            preempt_s = injector.preemption_at(shard.name, t, end_s)
            if preempt_s is None:
                return measurement, end_s, shard
            history.charge_cancelled(max(0.0, preempt_s - t), shard=shard.name)
            t = preempt_s
            self.pool.set_clock(t)
            next_shard = self.pool.scheduler.select(self.pool)
            if next_shard is None:
                up = self.pool.next_up_s()
                if up is not None and up > t:
                    t = up
                    self.pool.set_clock(t)
                    next_shard = self.pool.scheduler.select(self.pool)
            if next_shard is None:
                break
            shard = next_shard
        return _abandoned_measurement(measurement), t, shard


class ParallelExecutor(Executor):
    """K-way synchronous parallel probing with honest wall-clock accounting.

    Each round asks the strategy for up to ``workers`` configurations,
    probes every member, and records all of them under one round index.
    Machine cost accrues for every probe; wall-clock accrues once per
    round, at the cost of the slowest member (the synchronous barrier).
    The batch is truncated near the trial budget so a session never
    overshoots ``max_trials``.

    Probes are *simulated* member by member (the convention the
    constant-liar module established): each member is measured, recorded,
    and observed before the next, so gates like the BO tuner's early
    termination see round-mates' results — on a real cluster the short
    probes that drive the gate finish in the first fraction of the round,
    long before the round barrier.  Only the wall-clock accounting treats
    the round as concurrent.

    With a pool, the round width is the pool's total slot capacity and
    every member is placed on a shard (acquired for the whole round — the
    barrier holds all slots until the round closes); probe durations then
    reflect each shard's ``cost_multiplier`` and trials carry the shard
    name.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        pool: Optional[EnvironmentPool] = None,
    ) -> None:
        if pool is not None:
            self.workers = pool.total_capacity if workers is None else workers
            if self.workers > pool.total_capacity:
                raise ValueError(
                    f"workers ({self.workers}) exceed the pool's total "
                    f"capacity ({pool.total_capacity})"
                )
        else:
            if workers is None:
                raise ValueError("workers is required without a pool")
            self.workers = workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.pool = pool

    def run_round(self, strategy, env, space, history, rng, budget, events):
        k = self.workers
        injector = None if self.pool is None else self.pool.injector
        if injector is not None:
            self.pool.set_clock(history.total_wall_clock_s)
            if self.pool.free_capacity() == 0:
                # The whole fleet is inside outage windows: wait out the
                # earliest recovery (dead wall-clock, no machine cost).
                up = self.pool.next_up_s()
                if up is not None and up > history.total_wall_clock_s:
                    history.advance_wall_clock(up - history.total_wall_clock_s)
                    self.pool.set_clock(history.total_wall_clock_s)
            # Downed shards drop out of the round width exactly like a
            # shrunken lease — the barrier narrows instead of tripping the
            # mid-assignment saturation error below.
            k = min(k, self.pool.free_capacity())
        if self.pool is not None and self.pool.lease_width is not None:
            # Under a service lease the round width is the leased free
            # capacity, not the raw slot count — a shrunken lease narrows
            # the round (a zero-width lease skips it) instead of tripping
            # the mid-assignment saturation error below.
            k = min(k, self.pool.free_capacity())
        if budget.max_trials is not None:
            k = min(k, budget.max_trials - len(history))
        if k < 1:
            return []
        round_index = history.num_rounds
        round_start_wall_s = history.total_wall_clock_s
        shards: List[Optional[EnvironmentShard]] = []
        trials = []
        round_wall_s = 0.0
        try:
            # All members launch at the round start, so shard slots are
            # assigned up front (and held until the round closes — the
            # synchronous barrier occupies its machines for the whole
            # round).  Assignment runs *before* the proposals so the
            # strategy sees where each member will run — cost-aware
            # strategies condition each member's proposal and fantasy on
            # its own shard's probe speed — and inside the try so a
            # scheduler failing mid-assignment cannot leak the slots
            # already acquired.
            descriptors = None
            if self.pool is not None:
                for _ in range(k):
                    shard = self.pool.scheduler.select(self.pool)
                    if shard is None:
                        raise RuntimeError(
                            "pool saturated mid-assignment: scheduler returned "
                            "no shard for a round within the pool's total "
                            "capacity"
                        )
                    self.pool.acquire(shard.name)
                    shards.append(shard)
                descriptors = [shard.descriptor for shard in shards]
            batch = strategy.propose_batch(history, space, rng, k, shards=descriptors)
            if not batch:
                return []
            if self.pool is None:
                shards = [None] * len(batch)
            elif len(batch) < len(shards):
                # Short batch (grid exhaustion, rung boundary): the unused
                # trailing slots never probe anything — hand them back now
                # rather than holding them across the round barrier.
                for shard in shards[len(batch):]:
                    self.pool.release(shard.name)
                shards = shards[: len(batch)]
            for offset, config in enumerate(batch):
                events.trial_start(len(history) + offset, config)
            for member, (config, shard) in enumerate(zip(batch, shards)):
                if shard is None:
                    _set_env_clock(env, round_start_wall_s)
                    measurement = strategy.measure(env, config)
                    duration = measurement.probe_cost_s
                elif injector is None:
                    _set_env_clock(shard.env, round_start_wall_s)
                    measurement = shard.measure(strategy, config)
                    duration = measurement.probe_cost_s
                else:
                    # Preempted members retry on their own shard after it
                    # recovers (the slot is held for the whole round); the
                    # member's duration then includes the dead time.
                    measurement, end_s = _measure_preemptible(
                        self.pool, strategy, shard, config,
                        round_start_wall_s, history,
                    )
                    duration = max(0.0, end_s - round_start_wall_s)
                # The session total advances by the running round maximum (the
                # slowest member so far — exactly the round's slowest probe
                # once the round completes), while each trial is stamped with
                # its own physical completion time: round start plus its own
                # probe cost, independent of batch order.
                new_wall_s = max(round_wall_s, duration)
                trial = history.record(
                    config,
                    measurement,
                    wall_clock_s=new_wall_s - round_wall_s,
                    round_index=round_index,
                    completed_at_wall_s=round_start_wall_s + duration,
                    shard=None if shard is None else shard.name,
                )
                round_wall_s = new_wall_s
                strategy.observe(trial)
                events.trial_end(trial)
                trials.append(trial)
                # A cost-bounded budget stops mid-round: the remaining members
                # are cancelled, capping overshoot at one *recorded* probe — as
                # in serial.  Cancellation is not free: every member launched
                # at the round start, so each cancelled member's slot was
                # occupied from the round start until the cancellation order
                # went out — the round's latest completion so far (the running
                # wall maximum, which covers the case where an earlier, slower
                # member is what actually pushed the total over the cap).
                # That elapsed wall-clock is billed as machine cost (itemised
                # in ``cancelled_cost_s`` and under the member's shard); the
                # cancelled probes were never measured, so the bill is the
                # slot-occupancy time, the quantity a real cluster invoice
                # charges for.
                # A wall-clock cap deliberately does NOT cancel mid-round: the
                # whole batch launched at the round start, before the cap could
                # gate anything, and members record in batch order rather than
                # completion order — cancelling on the running wall total would
                # drop probes that physically completed before the cap whenever
                # a slow member happens to record first.  The cap instead stops
                # the session at the round boundary (the loop's budget check).
                if (
                    budget.max_cost_s is not None
                    and history.total_cost_s >= budget.max_cost_s
                ):
                    elapsed = round_wall_s
                    for cancelled_shard in shards[member + 1:]:
                        history.charge_cancelled(
                            elapsed,
                            shard=(
                                None
                                if cancelled_shard is None
                                else cancelled_shard.name
                            ),
                        )
                    break
        finally:
            if self.pool is not None:
                for shard in shards:
                    if shard is not None:
                        self.pool.release(shard.name)
        return trials


class AsyncExecutor(Executor):
    """Barrier-free K-worker probing: a simulated event-driven free-list.

    Each worker holds one in-flight (configuration, completion-time) slot.
    A ``run_round`` call is one *event step*: first every free worker is
    filled — the strategy supplies each launch through
    :meth:`SearchStrategy.propose_async`, conditioned on the
    configurations still pending on the other workers (the BO tuner
    fantasises them with the constant liar) — then the earliest in-flight
    probe completes, is recorded and observed, and its worker rejoins the
    free list at that completion time, ready for the next step's refill.

    Accounting matches the synchronous executors probe-for-probe on the
    machine-cost axis (every probe second is billed) but the wall-clock is
    each worker's own timeline: the session clock advances to each
    completion in order, so the final ``total_wall_clock_s`` is the
    makespan of the greedy schedule — never worse than the synchronous
    round barrier for the same probe sequence, and strictly better
    whenever probe durations are heterogeneous enough that a round's
    stragglers would have idled the other workers.

    Launch gating near the budget: no probe is launched beyond
    ``max_trials``, past the point where committed machine cost (recorded
    plus in-flight) reaches ``max_cost_s``, or with a start time at or
    past ``max_wall_clock_s``.  When the *strategy* finishes (grid
    exhausted, EI threshold) the in-flight probes drain to completion and
    are recorded; only *budget* exhaustion cancels them outright (start
    event without end event), mirroring the synchronous executor's
    cancellation of a round's unprobed remainder.  A cancelled probe is
    not free: it ran from its launch until the session stopped, so
    :meth:`cancel_pending` bills that elapsed wall-clock (clamped to the
    probe's own duration) as machine cost via
    :meth:`TrialHistory.charge_cancelled` — the cluster bill keeps every
    second a worker actually burned, recorded or not.

    Trials are recorded in *completion* order: :attr:`Trial.index` is the
    completion ordinal while ``on_trial_start`` carries the launch
    ordinal, and each trial's round is its own event step (``num_rounds``
    equals the number of completions).

    With a pool, the worker slots are the pool's *shard* slots: a freed
    slot belongs to a specific shard, the scheduler decides which shard's
    slot to fill next, each launch hands the strategy the target shard's
    descriptor (so constant-liar fantasies lie with shard-specific probe
    cost), and each slot's timeline advances at its shard's own probe
    speed — the per-shard wall-clock timelines that replace the single
    environment's clock.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        pool: Optional[EnvironmentPool] = None,
    ) -> None:
        if pool is not None:
            # Async slots ARE the pool's shard slots, so a separate worker
            # count is ambiguous (which shards would lose slots?).  Reject
            # it rather than silently ignoring the requested concurrency.
            if workers is not None:
                raise ValueError(
                    "workers is determined by the pool's total capacity; "
                    "size the pool's shard capacities instead"
                )
            self.workers = pool.total_capacity
        else:
            if workers is None:
                raise ValueError("workers is required without a pool")
            if workers < 1:
                raise ValueError("workers must be >= 1")
            self.workers = workers
        self.pool = pool
        self.reset()

    def reset(self, seed: int = 0) -> None:
        # Per-session state: free slots as (freed-up time, shard) pairs —
        # shard is None without a pool — the in-flight heap of
        # (completion_s, launch ordinal, config, measurement, start_s,
        # shard), and the launch counter the budget gate checks.
        super().reset(seed)
        if self.pool is None:
            self._slots: List[tuple] = [(0.0, None)] * self.workers
        else:
            self._slots = [
                (0.0, shard)
                for shard in self.pool.shards
                for _ in range(shard.capacity)
            ]
        self._in_flight: List[tuple] = []
        self._launched = 0

    def has_pending(self) -> bool:
        return bool(self._in_flight)

    def cancel_pending(self, history: TrialHistory) -> None:
        """Bill the partial machine cost of every cancelled in-flight probe.

        The cancellation instant is the session clock at which the budget
        fired — the wall-clock stamp of the completion that exhausted it.
        Each in-flight probe is billed the wall-time between its launch
        and that instant, clamped to its own duration (a probe whose
        completion coincides with the stop is billed in full) and
        itemised under its shard, and the in-flight list is cleared so a
        drained executor reports no pending work.
        """
        stop_wall_s = history.total_wall_clock_s
        for _, _, _, measurement, start_s, shard in self._in_flight:
            elapsed = min(
                max(0.0, stop_wall_s - start_s),
                max(0.0, measurement.probe_cost_s),
            )
            history.charge_cancelled(
                elapsed, shard=None if shard is None else shard.name
            )
            if shard is not None:
                self.pool.release(shard.name)
        self._in_flight = []

    def _pending_configs(self) -> List[ConfigDict]:
        """In-flight configurations, in launch order."""
        return [entry[2] for entry in sorted(self._in_flight, key=lambda e: e[1])]

    def _next_free_slot(self) -> Optional[int]:
        """Index of the slot to fill next, or None when nothing may launch.

        Without a pool: the earliest-freed slot, so each launch is
        conditioned on exactly the trials completed by its start time.
        With a pool: the scheduler picks the shard, then that shard's
        earliest-freed slot — placement policy decides *where*, the
        free-list still decides *when*.
        """
        if not self._slots:
            return None
        if self.pool is None:
            return min(range(len(self._slots)), key=lambda i: self._slots[i][0])
        shard = self.pool.scheduler.select(self.pool)
        if shard is None:
            return None
        candidates = [i for i, slot in enumerate(self._slots) if slot[1] is shard]
        if not candidates:
            return None
        return min(candidates, key=lambda i: self._slots[i][0])

    def _may_launch(
        self,
        start_s: float,
        strategy: SearchStrategy,
        history: TrialHistory,
        space: ConfigSpace,
        budget: TuningBudget,
    ) -> bool:
        if strategy.finished(history, space):
            return False
        if budget.max_trials is not None and self._launched >= budget.max_trials:
            return False
        if budget.max_wall_clock_s is not None and start_s >= budget.max_wall_clock_s:
            return False
        if budget.max_cost_s is not None:
            committed = history.total_cost_s + sum(
                entry[3].probe_cost_s for entry in self._in_flight
            )
            if committed >= budget.max_cost_s:
                return False
        return True

    def _fill_slots(self, strategy, env, space, history, rng, budget, events):
        # Fill every free slot (earliest-free first; the scheduler picks
        # the shard when a pool is attached), so each launch is
        # conditioned on exactly the trials completed by its start time.
        injector = None if self.pool is None else self.pool.injector
        while True:
            slot_index = self._next_free_slot()
            if slot_index is None:
                break
            free_s, shard = self._slots[slot_index]
            # A worker can sit idle past its free-time while launches are
            # gated — a stopping rule may un-finish when a draining probe
            # records a success (e.g. FailureStreakRule).  It re-launches
            # at the current session clock, never in the past, keeping
            # completion stamps monotone.
            start_s = max(free_s, history.total_wall_clock_s)
            if not self._may_launch(start_s, strategy, history, space, budget):
                break
            if shard is None:
                config = strategy.propose_async(
                    history, self._pending_configs(), space, rng
                )
            else:
                config = strategy.propose_async(
                    history,
                    self._pending_configs(),
                    space,
                    rng,
                    shard=shard.descriptor,
                )
            if config is None:
                # The strategy declines to launch until in-flight results
                # land (e.g. a rung boundary); the worker stays free.
                break
            del self._slots[slot_index]
            events.trial_start(self._launched, config)
            if shard is None:
                _set_env_clock(env, start_s)
                measurement = strategy.measure(env, config)
                completion_s = start_s + max(0.0, measurement.probe_cost_s)
            else:
                self.pool.acquire(shard.name)
                try:
                    if injector is None:
                        _set_env_clock(shard.env, start_s)
                        measurement = shard.measure(strategy, config)
                        completion_s = start_s + max(0.0, measurement.probe_cost_s)
                    else:
                        # Outage preemptions retry on the same shard after
                        # recovery (the slot stays occupied); the recorded
                        # completion then includes the dead time.
                        measurement, completion_s = _measure_preemptible(
                            self.pool, strategy, shard, config, start_s, history
                        )
                except BaseException:
                    # A raising probe must not strand the slot: put it back
                    # and free the shard so a caller that catches the error
                    # sees consistent pool occupancy.
                    self.pool.release(shard.name)
                    self._slots.append((free_s, shard))
                    raise
            heappush(
                self._in_flight,
                (
                    completion_s,
                    self._launched,
                    config,
                    measurement,
                    start_s,
                    shard,
                ),
            )
            self._launched += 1

    def run_round(self, strategy, env, space, history, rng, budget, events):
        injector = None if self.pool is None else self.pool.injector
        if injector is not None:
            self.pool.set_clock(history.total_wall_clock_s)
        self._fill_slots(strategy, env, space, history, rng, budget, events)
        while not self._in_flight:
            if injector is None or not self._slots:
                return []
            # Nothing launched and nothing in flight: if shards are down,
            # wait out the earliest recovery (dead wall-clock, no machine
            # cost) and refill; otherwise the session is genuinely done.
            up = self.pool.next_up_s()
            now = history.total_wall_clock_s
            if up is None or up <= now:
                return []
            history.advance_wall_clock(up - now)
            self.pool.set_clock(history.total_wall_clock_s)
            self._fill_slots(strategy, env, space, history, rng, budget, events)
        completion_s, launch_ordinal, config, measurement, _, shard = heappop(
            self._in_flight
        )
        self._slots.append((completion_s, shard))
        if shard is not None:
            self.pool.release(shard.name)
        # Events drain in completion order, so the session clock only ever
        # advances; each trial's stamp is its physical completion time.
        trial = history.record(
            config,
            measurement,
            wall_clock_s=max(0.0, completion_s - history.total_wall_clock_s),
            completed_at_wall_s=completion_s,
            launch_index=launch_ordinal,
            shard=None if shard is None else shard.name,
        )
        strategy.observe(trial)
        events.trial_end(trial)
        return [trial]


EXECUTOR_MODES = ("sync", "async")


def executor_for(
    workers: int,
    mode: str = "sync",
    pool: Optional[EnvironmentPool] = None,
) -> Executor:
    """The executor for a worker count, execution mode, and optional pool.

    ``workers=1`` deliberately maps to :class:`SerialExecutor` in *both*
    modes: with one worker there is no barrier to remove, and the serial
    path goes through :meth:`propose` and is guaranteed seed-identical to
    the pre-session loop, while the multi-worker paths route through
    ``propose_batch`` / ``propose_async``.  With K > 1, ``"sync"`` builds
    the round-barrier :class:`ParallelExecutor` and ``"async"`` the
    barrier-free :class:`AsyncExecutor`.

    With ``pool=``, concurrency comes from the pool's slots rather than
    ``workers``: ``workers=1`` (or a one-slot pool) probes the fleet
    serially through the pool's scheduler, any other value fans out over
    the pool's total capacity in the chosen mode.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if mode not in EXECUTOR_MODES:
        raise ValueError(
            f"unknown executor mode {mode!r}: valid modes are "
            + ", ".join(repr(m) for m in EXECUTOR_MODES)
        )
    if pool is not None:
        if workers == 1 or pool.total_capacity == 1:
            return SerialExecutor(pool=pool)
        if mode == "async":
            return AsyncExecutor(pool=pool)
        return ParallelExecutor(pool=pool)
    if workers == 1:
        return SerialExecutor()
    return AsyncExecutor(workers) if mode == "async" else ParallelExecutor(workers)


class TuningSession:
    """Owns the budget/history/RNG loop; delegates probing to an executor.

    ``SearchStrategy.run`` is a thin shim over this class; construct a
    session directly to choose the executor or attach callbacks::

        TuningSession(tuner, executor=ParallelExecutor(4),
                      callbacks=[ProgressLogger()]).run(env, space, budget)

    A session is also a *schedulable unit*: :meth:`start` initialises the
    loop, each :meth:`step` runs exactly one executor round (returning
    ``False`` once the session has nothing more to do), and
    :meth:`finish` cancels stranded in-flight probes and produces the
    :class:`~repro.core.strategy.TuningResult`.  :meth:`run` is exactly
    ``start``; drain ``step``; ``finish`` — trial-for-trial identical to
    the historical single-call loop — while a multi-tenant scheduler
    (:class:`~repro.core.service.TuningService`) interleaves many
    sessions by calling their ``step`` methods in its own order, pausing
    each tenant between rounds at no extra cost.  All loop state (RNG,
    history, executor free-list) lives on the session, so the
    interleaving order cannot perturb any single session's stream.
    """

    def __init__(
        self,
        strategy: SearchStrategy,
        executor: Optional[Executor] = None,
        callbacks: Sequence[SessionCallback] = (),
        detector: Optional[SessionCallback] = None,
    ) -> None:
        self.strategy = strategy
        self.executor = executor if executor is not None else SerialExecutor()
        self.callbacks = list(callbacks)
        # Convenience slot for a ChangePointDetector (repro.core.detect) —
        # just another callback, but surfaced as a named parameter so the
        # common "tune under drift" setup reads as intent.
        self.detector = detector
        if detector is not None:
            self.callbacks.append(detector)
        self._env: Optional[TrainingEnvironment] = None
        self._env_like = None
        self._space: Optional[ConfigSpace] = None
        self._budget: Optional[TuningBudget] = None
        self._rng: Optional[np.random.Generator] = None
        self._history: Optional[TrialHistory] = None
        self._events: Optional[_Events] = None
        self._stalled = False
        self._result: Optional[TuningResult] = None
        # The strategy the loop actually drives: the raw strategy, or a
        # JournalledStrategy proxy when a checkpoint is attached.
        self._loop_strategy: SearchStrategy = strategy
        self._journal: Optional[CheckpointJournal] = None

    @property
    def history(self) -> Optional[TrialHistory]:
        """The live trial history (``None`` before :meth:`start`)."""
        return self._history

    @property
    def done(self) -> bool:
        """True once :meth:`step` has nothing left to run."""
        return self._result is not None or self._stalled

    def start(
        self,
        env: Optional[TrainingEnvironment],
        space: ConfigSpace,
        budget: TuningBudget,
        seed: int = 0,
        checkpoint: Union[CheckpointConfig, CheckpointJournal, str, None] = None,
    ) -> "TuningSession":
        """Initialise the loop state; the first :meth:`step` may then run.

        ``env`` may be ``None`` when the executor carries an
        :class:`~repro.core.fleet.EnvironmentPool` — probes then dispatch
        through the pool's shards and the pool's own description stands in
        for the environment in callbacks and the result.  When both are
        given the pool wins for dispatch.

        ``checkpoint`` (a :class:`~repro.core.checkpoint.CheckpointConfig`
        or a bare path) makes the session durable: every probe is logged
        to a write-ahead log before the loop acts on it and the snapshot
        refreshes every ``every_n_trials`` recorded trials, so a crashed
        process can pick the session back up with :meth:`resume`.
        Starting fresh at a path *overwrites* any previous checkpoint
        there (use :meth:`restore`/:meth:`resume` to continue one).
        An already-loaded :class:`CheckpointJournal` continues its replay
        instead — that is the path :meth:`restore` takes internally.
        """
        pool = self.executor.pool
        if env is None and pool is None:
            raise ValueError(
                "env may only be None when the executor probes an EnvironmentPool"
            )
        journal: Optional[CheckpointJournal] = None
        if checkpoint is not None:
            if isinstance(checkpoint, CheckpointJournal):
                journal = checkpoint
            else:
                config = (
                    checkpoint
                    if isinstance(checkpoint, CheckpointConfig)
                    else CheckpointConfig(checkpoint)
                )
                journal = CheckpointJournal.create(
                    config,
                    session_meta(self.strategy, seed, budget, space, self.executor),
                )
        self._env = env
        self._env_like = env if pool is None else pool
        self._space = space
        self._budget = budget
        self._rng = np.random.default_rng(seed)
        self._history = TrialHistory()
        self._journal = journal
        self._loop_strategy = (
            self.strategy
            if journal is None
            else JournalledStrategy(self.strategy, journal)
        )
        # The recorder runs FIRST in the callback chain: its position is
        # deterministic (identical in the original run and every replay),
        # and a later callback raising can never lose a trial's record.
        callbacks = list(self.callbacks)
        if journal is not None:
            callbacks.insert(0, journal.recorder(self))
        self._events = _Events(callbacks)
        self._stalled = False
        self._result = None
        self.strategy.reset()
        self.executor.reset(seed)
        self._events.session_start(self.strategy, self._env_like, space, budget)
        return self

    def step(self) -> bool:
        """Run one executor round; ``False`` when the session is done.

        A ``False`` return latches: the budget is exhausted, the strategy
        finished with nothing in flight, or the executor produced no
        trials (saturation/decline) — in every case the session has
        nothing more to do and :meth:`finish` should be called.
        """
        if self._history is None:
            raise RuntimeError("step() before start()")
        if self.done:
            return False
        if self._budget.exhausted(self._history):
            self._stalled = True
            return False
        # A finished strategy launches nothing new, but probes already
        # in flight drain to completion — their machine time is spent
        # and their measurements exist.  Budget exhaustion, by
        # contrast, cancels pending probes (the check above).
        if self._loop_strategy.finished(self._history, self._space) and not (
            self.executor.has_pending()
        ):
            self._stalled = True
            return False
        trials = self.executor.run_round(
            self._loop_strategy,
            self._env,
            self._space,
            self._history,
            self._rng,
            self._budget,
            self._events,
        )
        if not trials:
            self._stalled = True
            return False
        self._events.round_end(self._history.num_rounds - 1, trials, self._history)
        return True

    def finish(self) -> TuningResult:
        """Cancel stranded in-flight probes and seal the result.

        Idempotent: the first call produces the result (and fires
        ``on_session_end``); later calls return the same object.
        """
        if self._history is None:
            raise RuntimeError("finish() before start()")
        if self._result is not None:
            return self._result
        if self.executor.has_pending():
            # Budget exhaustion is the only exit that strands in-flight
            # probes; bill the machine time they burned before the cut.
            self.executor.cancel_pending(self._history)
        result = TuningResult(
            strategy=self.strategy.name,
            history=self._history,
            best_trial=self._history.best(),
            environment=self._env_like.describe(),
        )
        self._result = result
        self._events.session_end(result)
        return result

    def run(
        self,
        env: Optional[TrainingEnvironment],
        space: ConfigSpace,
        budget: TuningBudget,
        seed: int = 0,
        checkpoint: Union[CheckpointConfig, str, None] = None,
    ) -> TuningResult:
        """Execute the tuning session to completion and return its result."""
        self.start(env, space, budget, seed, checkpoint=checkpoint)
        while self.step():
            pass
        return self.finish()

    def restore(
        self,
        checkpoint: Union[CheckpointConfig, str],
        env: Optional[TrainingEnvironment],
        space: ConfigSpace,
    ) -> "TuningSession":
        """Restart this session from a checkpoint written by a prior run.

        The budget and seed come from the checkpoint's metadata; the
        strategy, space, and executor must match the originals (their
        fingerprints are validated — replay re-executes the original
        scheduling decisions, so a different executor shape or search
        space cannot reproduce the same stream).  Restoration is
        *replay*: the loop restarts from trial zero with every durable
        probe's recorded measurement substituted for the probe itself, so
        no machine time is re-spent, all derived state (RNG streams,
        surrogate caches, incumbents, executor free-lists) is rebuilt
        bit-identically, and the continuation keeps appending to the same
        write-ahead log.  After :meth:`restore`, drive the session with
        :meth:`step`/:meth:`finish` as usual (or call :meth:`resume` to
        do all three).
        """
        config = (
            checkpoint
            if isinstance(checkpoint, CheckpointConfig)
            else CheckpointConfig(checkpoint)
        )
        journal = CheckpointJournal.load(config)
        meta = journal.meta
        if meta.get("strategy") != self.strategy.name:
            raise CheckpointError(
                f"checkpoint {config.path!r} was written by strategy "
                f"{meta.get('strategy')!r}, not {self.strategy.name!r}"
            )
        if meta.get("space") != space_fingerprint(space):
            raise CheckpointError(
                f"checkpoint {config.path!r} was written against a different "
                f"search space ({meta.get('space')!r} vs "
                f"{space_fingerprint(space)!r})"
            )
        if meta.get("executor") != executor_fingerprint(self.executor):
            raise CheckpointError(
                f"checkpoint {config.path!r} was written under a different "
                f"executor ({meta.get('executor')!r} vs "
                f"{executor_fingerprint(self.executor)!r}); resume with the "
                f"same executor kind, worker count, and fleet shape"
            )
        budget_payload = meta.get("budget", {})
        budget = TuningBudget(
            max_trials=budget_payload.get("max_trials"),
            max_cost_s=budget_payload.get("max_cost_s"),
            max_wall_clock_s=budget_payload.get("max_wall_clock_s"),
        )
        seed = int(meta.get("seed", 0))
        return self.start(env, space, budget, seed, checkpoint=journal)

    def resume(
        self,
        checkpoint: Union[CheckpointConfig, str],
        env: Optional[TrainingEnvironment],
        space: ConfigSpace,
    ) -> TuningResult:
        """Resume from a checkpoint and run the session to completion.

        The result is bit-identical to what the uninterrupted run would
        have produced: the durable write-ahead prefix replays for free,
        the remainder probes live.  Resuming a checkpoint whose session
        already completed simply replays to the same final result.
        """
        self.restore(checkpoint, env, space)
        while self.step():
            pass
        return self.finish()
