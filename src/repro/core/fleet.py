"""Environment pools: fan one tuning session across a fleet of clusters.

The shard/scheduler/pool contract
---------------------------------
A single :class:`~repro.mlsim.TrainingEnvironment` models tuning against
one cluster.  Production tuning rarely has that luxury or that limit: the
probing fleet is a *pool* of simulated clusters — replicas of the target
deployment that differ in probe speed (older hardware, contended tenancy,
cheaper spot capacity) and in how many probes each can host at once.  This
module makes "which cluster runs a probe" a first-class dimension of the
session/executor stack:

- :class:`EnvironmentShard` — one named member of the fleet: a training
  environment, a ``capacity`` (concurrent probe slots), and a
  ``cost_multiplier`` scaling the wall-clock/machine seconds a probe takes
  there relative to the pool baseline (2.0 = a replica that runs the same
  probe twice as slowly; the *measurement* itself is unchanged — the shard
  is a replica of the target cluster, only its probe speed differs).
  Shards built over genuinely different :class:`~repro.cluster.ClusterSpec`s
  are allowed too; their measurements then reflect their own hardware.
- :class:`ShardScheduler` — the pluggable placement policy: given the
  pool's current occupancy, pick the shard that hosts the next probe.
  :class:`RoundRobinScheduler` cycles the fleet deterministically,
  :class:`LeastLoadedScheduler` fills the emptiest shard, and
  :class:`CheapestEligibleScheduler` prefers the lowest
  ``cost_multiplier`` among shards with a free slot.
- :class:`EnvironmentPool` — the fleet itself: the shard list, a
  scheduler, slot occupancy (``acquire``/``release``), and per-shard
  deterministic RNG streams derived from the session seed at
  :meth:`EnvironmentPool.reset` (:meth:`EnvironmentPool.rng_for`).  The
  streams are part of the scheduler contract — a stochastic placement
  policy must draw from its target shard's stream so fleets replay
  bit-identically per session seed; the three stock schedulers are
  deterministic and leave them untouched.

Executors (:mod:`repro.core.session`) own the clock: they ask the
scheduler for a shard, occupy one of its slots, run the probe through
:meth:`EnvironmentShard.measure`, and record the trial with
``Trial.shard`` set — per-shard machine-cost itemisation then falls out of
:meth:`repro.core.trial.TrialHistory.cost_by_shard`.  Strategies see the
target shard as a :class:`ShardDescriptor` through
:meth:`~repro.core.strategy.SearchStrategy.propose_async`, which is how
constant-liar fantasies lie with shard-specific probe cost.

``pool=None`` everywhere keeps the single-environment semantics
bit-identical to the pre-fleet code; a pool built with
:meth:`EnvironmentPool.homogeneous_over` (N shards sharing one
environment) run serially reproduces the single-environment trial
sequence exactly — the regression anchor ``tests/test_fleet.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class OutageWindow:
    """One scheduled shard outage: down on ``[start_s, end_s)`` virtual time.

    Probes in flight on the shard when the window opens are *preempted*
    (the executor bills the burned wall-clock via
    :meth:`~repro.core.trial.TrialHistory.charge_cancelled` and retries or
    redirects); new launches are refused while the window is open
    (:meth:`EnvironmentPool.free_slots` reports zero).
    """

    shard: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not self.shard:
            raise ValueError("outage shard name must be non-empty")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("need 0 <= start_s < end_s")


@dataclass(frozen=True)
class FailureSpike:
    """A window of elevated transient-failure probability on one shard.

    While open, probes launched on the shard get ``rate`` added to the
    environment's ``transient_failure_rate`` — a spot-reclamation wave or
    flaky switch that kills jobs without taking the whole shard down.
    """

    shard: str
    start_s: float
    end_s: float
    rate: float

    def __post_init__(self) -> None:
        if not self.shard:
            raise ValueError("spike shard name must be non-empty")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("need 0 <= start_s < end_s")
        if not 0.0 < self.rate < 1.0:
            raise ValueError("spike rate must be in (0, 1)")


class FailureInjector:
    """Scheduled shard failures, keyed (like drift) by virtual time.

    Holds :class:`OutageWindow`s and :class:`FailureSpike`s and answers
    pure time queries — no mutable state, so same-seed sessions replay the
    same failures bit-identically.  Attached to a pool via
    ``EnvironmentPool(..., injector=...)``; ``None`` keeps every code path
    identical to the failure-free fleet.
    """

    def __init__(
        self,
        outages: Sequence[OutageWindow] = (),
        spikes: Sequence[FailureSpike] = (),
    ) -> None:
        self._outages: Dict[str, List[OutageWindow]] = {}
        for window in outages:
            self._outages.setdefault(window.shard, []).append(window)
        for windows in self._outages.values():
            windows.sort(key=lambda w: w.start_s)
        self._spikes: Dict[str, List[FailureSpike]] = {}
        for spike in spikes:
            self._spikes.setdefault(spike.shard, []).append(spike)
        for spikes_list in self._spikes.values():
            spikes_list.sort(key=lambda s: s.start_s)

    @property
    def outages(self) -> Tuple[OutageWindow, ...]:
        return tuple(w for windows in self._outages.values() for w in windows)

    @property
    def spikes(self) -> Tuple[FailureSpike, ...]:
        return tuple(s for spikes in self._spikes.values() for s in spikes)

    def is_down(self, name: str, t: float) -> bool:
        """Whether the shard is inside an outage window at ``t``."""
        return any(
            w.start_s <= t < w.end_s for w in self._outages.get(name, ())
        )

    def up_after(self, name: str, t: float) -> float:
        """The earliest time >= ``t`` at which the shard is up.

        Chained windows (the next opening exactly when one closes) are
        walked through; returns ``t`` itself when the shard is up.
        """
        t = float(t)
        for window in self._outages.get(name, ()):
            if window.start_s <= t < window.end_s:
                t = window.end_s
        return t

    def preemption_at(
        self, name: str, start_s: float, end_s: float
    ) -> Optional[float]:
        """When an outage would kill a probe running on ``[start_s, end_s)``.

        Returns the first outage start strictly inside the interval, or
        ``start_s`` if the shard was already down at launch time (a probe
        must never run through a window); ``None`` when the probe
        completes undisturbed.
        """
        if self.is_down(name, start_s):
            return float(start_s)
        best: Optional[float] = None
        for window in self._outages.get(name, ()):
            if start_s < window.start_s < end_s:
                if best is None or window.start_s < best:
                    best = window.start_s
        return best

    def failure_boost(self, name: str, t: float) -> float:
        """Summed spike rates open on the shard at ``t``."""
        return sum(
            s.rate for s in self._spikes.get(name, ()) if s.start_s <= t < s.end_s
        )

    def describe(self) -> Dict[str, object]:
        return {
            "outages": [
                {"shard": w.shard, "start_s": w.start_s, "end_s": w.end_s}
                for w in self.outages
            ],
            "spikes": [
                {
                    "shard": s.shard,
                    "start_s": s.start_s,
                    "end_s": s.end_s,
                    "rate": s.rate,
                }
                for s in self.spikes
            ],
        }


def parse_outage_spec(text: str) -> List[OutageWindow]:
    """Parse a CLI ``--outage`` string into outage windows.

    Grammar: semicolon-separated per-shard entries, each
    ``SHARD:START-END[,START-END...]`` in virtual seconds — e.g.
    ``"shard0:3600-7200;shard2:1000-1500,9000-9900"``.
    """
    windows: List[OutageWindow] = []
    for raw_entry in text.split(";"):
        entry = raw_entry.strip()
        if not entry:
            continue
        shard, sep, body = entry.partition(":")
        shard = shard.strip()
        if not sep or not shard:
            raise ValueError(
                f"bad outage entry {entry!r}: expected SHARD:START-END[,...]"
            )
        for span in body.split(","):
            span = span.strip()
            if not span:
                continue
            start_text, dash, end_text = span.partition("-")
            try:
                start_s, end_s = float(start_text), float(end_text)
            except ValueError:
                raise ValueError(
                    f"bad outage span {span!r} in {entry!r}: expected START-END"
                ) from None
            windows.append(OutageWindow(shard=shard, start_s=start_s, end_s=end_s))
    if not windows:
        raise ValueError("outage spec describes no windows")
    return windows


@dataclass(frozen=True)
class ShardDescriptor:
    """What a strategy is told about the shard its next probe will run on.

    ``cost_multiplier`` is the shard's relative probe duration (1.0 = pool
    baseline): a constant-liar fantasy for an in-flight probe on this
    shard should lie with the median probe cost *scaled by this factor*,
    and a cost-aware surrogate can condition on it as an input feature.
    """

    name: str
    index: int
    capacity: int
    cost_multiplier: float


class EnvironmentShard:
    """One named member of the probing fleet.

    Parameters
    ----------
    name:
        Unique shard identifier (appears on ``Trial.shard`` and in logs).
    env:
        The shard's :class:`~repro.mlsim.TrainingEnvironment`.  Several
        shards may share one environment instance (a homogeneous pool over
        the same simulated cluster — the seed-identical configuration).
    capacity:
        Concurrent probe slots this shard offers.
    cost_multiplier:
        Relative probe duration on this shard (see module docstring).
        Applied to ``Measurement.probe_cost_s``; the measured objective is
        untouched.
    """

    def __init__(
        self,
        name: str,
        env,
        capacity: int = 1,
        cost_multiplier: float = 1.0,
    ) -> None:
        if not name:
            raise ValueError("shard name must be non-empty")
        if capacity < 1:
            raise ValueError(f"shard {name!r}: capacity must be >= 1")
        if cost_multiplier <= 0:
            raise ValueError(f"shard {name!r}: cost_multiplier must be positive")
        self.name = name
        self.env = env
        self.capacity = capacity
        self.cost_multiplier = cost_multiplier
        self.index = -1  # assigned by the pool
        self.descriptor: Optional[ShardDescriptor] = None  # assigned by the pool

    def measure(self, strategy, config):
        """Run one probe of ``config`` on this shard via the strategy's gate.

        The strategy's :meth:`~repro.core.strategy.SearchStrategy.measure`
        hook runs against the shard's environment (early-termination gates
        keep working per probe); the returned measurement's probe cost is
        then scaled by the shard's ``cost_multiplier`` — the same job
        simply takes longer on a slower replica.
        """
        measurement = strategy.measure(self.env, config)
        if self.cost_multiplier != 1.0:
            measurement = dc_replace(
                measurement,
                probe_cost_s=measurement.probe_cost_s * self.cost_multiplier,
            )
        return measurement


class ShardScheduler:
    """Placement policy: which shard hosts the next probe.

    :meth:`select` must return a shard that currently has a free slot, or
    ``None`` when the whole pool is saturated — and must be *pure*: an
    executor may select without launching (a budget gate or the strategy
    can decline after the choice), so rotation state only advances through
    :meth:`notify_launch`, which the pool fires from
    :meth:`EnvironmentPool.acquire` when a launch actually commits.
    :meth:`reset` is called at session start so a reused scheduler replays
    deterministically.
    """

    def reset(self, pool: "EnvironmentPool") -> None:
        """Hook: clear per-session state."""

    def notify_launch(self, pool: "EnvironmentPool", shard: EnvironmentShard) -> None:
        """Hook: a probe was actually placed on ``shard``."""

    def select(self, pool: "EnvironmentPool") -> Optional[EnvironmentShard]:
        raise NotImplementedError


class RoundRobinScheduler(ShardScheduler):
    """Cycle the shard list deterministically, skipping saturated shards.

    The cursor advances only on committed launches (``notify_launch``), so
    declined selections — a strategy waiting at a rung boundary, a budget
    gate closing — do not drift the rotation.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self, pool: "EnvironmentPool") -> None:
        self._cursor = 0

    def notify_launch(self, pool: "EnvironmentPool", shard: EnvironmentShard) -> None:
        self._cursor = (shard.index + 1) % len(pool.shards)

    def select(self, pool: "EnvironmentPool") -> Optional[EnvironmentShard]:
        shards = pool.shards
        for offset in range(len(shards)):
            shard = shards[(self._cursor + offset) % len(shards)]
            if pool.free_slots(shard.name) > 0:
                return shard
        return None


class LeastLoadedScheduler(ShardScheduler):
    """Fill the shard with the lowest occupied fraction (ties: lowest index).

    Load is occupied slots over capacity, so a half-full 8-slot shard
    (load 0.5, four slots free) loses to an empty 1-slot shard (load 0).
    """

    def select(self, pool: "EnvironmentPool") -> Optional[EnvironmentShard]:
        eligible = [s for s in pool.shards if pool.free_slots(s.name) > 0]
        if not eligible:
            return None
        return min(eligible, key=lambda s: (pool.busy(s.name) / s.capacity, s.index))


class CheapestEligibleScheduler(ShardScheduler):
    """Prefer the lowest ``cost_multiplier`` among shards with a free slot.

    The cost-aware policy: when the fleet mixes fast and slow replicas,
    probes land on the fastest (cheapest per probe) shard that is not
    already saturated, spilling onto progressively slower shards only when
    the cheap ones are busy.  Ties break by shard index.
    """

    def select(self, pool: "EnvironmentPool") -> Optional[EnvironmentShard]:
        eligible = [s for s in pool.shards if pool.free_slots(s.name) > 0]
        if not eligible:
            return None
        return min(eligible, key=lambda s: (s.cost_multiplier, s.index))


SCHEDULERS = {
    "roundrobin": RoundRobinScheduler,
    "least-loaded": LeastLoadedScheduler,
    "cheapest": CheapestEligibleScheduler,
}


def make_scheduler(name: str) -> ShardScheduler:
    """A scheduler instance by name (CLI surface)."""
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r}; valid schedulers: {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()


class EnvironmentPool:
    """A fleet of environment shards plus the scheduler that places probes.

    The pool owns slot occupancy (executors ``acquire``/``release`` around
    each probe) and the per-shard RNG streams; executors own the clock and
    the per-slot timelines.  :meth:`reset` restores the pool to a
    session-start state: occupancy cleared, scheduler reset, per-shard RNG
    streams re-derived from the session seed, and each distinct
    environment's probe counters rewound so a reused pool replays
    identical measurement-noise streams (the property
    ``compare_strategies(pool=...)`` relies on for repeat comparability).
    """

    def __init__(
        self,
        shards: Sequence[EnvironmentShard],
        scheduler: Optional[ShardScheduler] = None,
        injector: Optional[FailureInjector] = None,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("pool must have at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        self.shards: List[EnvironmentShard] = shards
        for index, shard in enumerate(shards):
            shard.index = index
            shard.descriptor = ShardDescriptor(
                name=shard.name,
                index=index,
                capacity=shard.capacity,
                cost_multiplier=shard.cost_multiplier,
            )
        self.scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self._by_name = {shard.name: shard for shard in shards}
        self._busy: Dict[str, int] = {name: 0 for name in names}
        self._rngs: Dict[str, np.random.Generator] = {}
        self._lease_width: Optional[int] = None
        self.injector = injector
        if injector is not None:
            known = set(names)
            for window in list(injector.outages) + list(injector.spikes):
                if window.shard not in known:
                    raise ValueError(
                        f"injector references unknown shard {window.shard!r}"
                    )
        # Virtual clock the injector is evaluated at; executors stamp it
        # with the session wall-clock.  Inert while ``injector is None``.
        self.clock_s = 0.0
        self.reset(seed=0)

    @classmethod
    def homogeneous_over(
        cls,
        env,
        shards: int = 2,
        capacity: int = 1,
        scheduler: Optional[ShardScheduler] = None,
    ) -> "EnvironmentPool":
        """N shards sharing one environment — the seed-identical fleet.

        Because every shard wraps the *same* environment instance at cost
        multiplier 1.0, the sequence of measurements a serial session runs
        through this pool is bit-identical to probing the environment
        directly, whatever the shard rotation.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        return cls(
            [
                EnvironmentShard(f"shard{i}", env, capacity=capacity)
                for i in range(shards)
            ],
            scheduler=scheduler,
        )

    # -- occupancy ---------------------------------------------------------

    @property
    def total_capacity(self) -> int:
        """Concurrent probe slots across the whole fleet."""
        return sum(shard.capacity for shard in self.shards)

    def shard(self, name: str) -> EnvironmentShard:
        return self._by_name[name]

    def busy(self, name: str) -> int:
        """Occupied slots on a shard."""
        return self._busy[name]

    def total_busy(self) -> int:
        """Occupied slots across the whole fleet."""
        return sum(self._busy.values())

    @property
    def lease_width(self) -> Optional[int]:
        """The fleet-wide concurrent-slot cap, or ``None`` (uncapped)."""
        return self._lease_width

    def set_lease(self, width: Optional[int]) -> None:
        """Cap fleet-wide concurrency at ``width`` slots (``None`` lifts it).

        The *lease* is how slot ownership moves from the executor to a
        service: a :class:`~repro.core.service.TuningService` grants each
        tenant's pool a lease equal to its fair-share allocation, and
        :meth:`free_slots` then reports zero everywhere once the tenant's
        total occupancy reaches the lease — schedulers return ``None``,
        executors stop launching — however much raw shard capacity
        remains.  Probes already in flight are unaffected by a shrinking
        lease (they complete and release normally; new launches gate).
        The lease is ownership state, not session state: :meth:`reset`
        leaves it in place.
        """
        if width is not None:
            width = int(width)
            if width < 0:
                raise ValueError("lease width must be >= 0 (or None)")
        self._lease_width = width

    def set_clock(self, t: float) -> None:
        """Advance the virtual clock outage queries are evaluated at."""
        self.clock_s = float(t)

    def is_down(self, name: str) -> bool:
        """Whether the shard is inside an outage window right now."""
        return self.injector is not None and self.injector.is_down(
            name, self.clock_s
        )

    def next_up_s(self) -> Optional[float]:
        """Earliest recovery time among currently-down shards (None: all up)."""
        if self.injector is None:
            return None
        recoveries = [
            self.injector.up_after(shard.name, self.clock_s)
            for shard in self.shards
            if self.is_down(shard.name)
        ]
        return min(recoveries) if recoveries else None

    def free_slots(self, name: str) -> int:
        if self.is_down(name):
            return 0
        free = self._by_name[name].capacity - self._busy[name]
        if self._lease_width is not None:
            free = min(free, self._lease_width - self.total_busy())
        return max(0, free)

    def free_capacity(self) -> int:
        """Free slots fleet-wide, respecting the lease and outages.

        With no injector this equals ``total_capacity - total_busy``
        (lease-capped) exactly; downed shards' free slots drop out of the
        sum while their in-flight probes still count as busy.
        """
        free = sum(
            shard.capacity - self._busy[shard.name]
            for shard in self.shards
            if not self.is_down(shard.name)
        )
        if self._lease_width is not None:
            free = min(free, self._lease_width - self.total_busy())
        return max(0, free)

    def acquire(self, name: str) -> None:
        """Occupy one slot on a shard — the commit point of a launch.

        Fires the scheduler's ``notify_launch`` hook, so rotation state
        (e.g. the round-robin cursor) advances exactly once per probe that
        actually launches, never on declined selections.
        """
        if self.free_slots(name) < 1:
            raise RuntimeError(f"shard {name!r} has no free slot")
        self._busy[name] += 1
        self.scheduler.notify_launch(self, self._by_name[name])

    def release(self, name: str) -> None:
        if self._busy[name] < 1:
            raise RuntimeError(f"shard {name!r} has no occupied slot to release")
        self._busy[name] -= 1

    # -- session lifecycle -------------------------------------------------

    def reset(self, seed: int = 0) -> None:
        """Restore session-start state; derive per-shard RNG streams.

        Each shard's stream is seeded from ``(session seed, shard index)``
        so two shards never share a stream and the same session seed
        replays the same streams.  Distinct environments (shards may share
        one) get their probe counters rewound so per-trial-index
        measurement noise replays identically across sessions.
        """
        self._busy = {shard.name: 0 for shard in self.shards}
        self.clock_s = 0.0
        self._rngs = {
            shard.name: np.random.default_rng([seed, shard.index])
            for shard in self.shards
        }
        seen = set()
        for shard in self.shards:
            if id(shard.env) in seen:
                continue
            seen.add(id(shard.env))
            reset_counters = getattr(shard.env, "reset_counters", None)
            if reset_counters is not None:
                reset_counters()
        self.scheduler.reset(self)

    def rng_for(self, name: str) -> np.random.Generator:
        """The shard's deterministic per-session RNG stream."""
        return self._rngs[name]

    def descriptors(self) -> List[ShardDescriptor]:
        return [shard.descriptor for shard in self.shards]

    def fingerprint(self) -> List[List[object]]:
        """JSON-exact fleet shape, for checkpoint executor fingerprints.

        A resumed session must rebuild the same fleet — shard order,
        capacities, and cost multipliers all steer scheduling and probe
        accounting, so any difference means the recorded stream cannot
        replay.  Scheduler identity rides along for the same reason.
        """
        return [
            [shard.name, int(shard.capacity), float(shard.cost_multiplier)]
            for shard in self.shards
        ] + [["scheduler", type(self.scheduler).__name__, 0.0]]

    def env_counters(self) -> Dict[str, Dict[str, object]]:
        """Probe counters per distinct shard environment (checkpoint audit).

        Keyed by the first shard name wrapping each distinct environment
        (shards may share one), values are the counters that key the
        environment's per-trial noise streams.
        """
        counters: Dict[str, Dict[str, object]] = {}
        seen = set()
        for shard in self.shards:
            if id(shard.env) in seen:
                continue
            seen.add(id(shard.env))
            trials_run = getattr(shard.env, "trials_run", None)
            cost = getattr(shard.env, "total_probe_cost_s", None)
            counters[shard.name] = {
                "trials_run": None if trials_run is None else int(trials_run),
                "total_probe_cost_s": None if cost is None else float(cost),
            }
        return counters

    def describe(self) -> Dict[str, object]:
        """Summary dict for experiment logs (the fleet analogue of
        :meth:`~repro.mlsim.TrainingEnvironment.describe`)."""
        base = {}
        describe = getattr(self.shards[0].env, "describe", None)
        if describe is not None:
            base = dict(describe())
        base.update(
            {
                "pool": True,
                "num_shards": len(self.shards),
                "total_capacity": self.total_capacity,
                "scheduler": type(self.scheduler).__name__,
                **(
                    {"injector": self.injector.describe()}
                    if self.injector is not None
                    else {}
                ),
                "shards": [
                    {
                        "name": shard.name,
                        "capacity": shard.capacity,
                        "cost_multiplier": shard.cost_multiplier,
                    }
                    for shard in self.shards
                ],
            }
        )
        return base


def parse_shard_spec(text: str) -> List[Dict[str, object]]:
    """Parse a CLI ``--shard-spec`` string into shard build recipes.

    Grammar: comma-separated entries, each
    ``NODE_TYPE:NODES[xCAPACITY][@COST_MULTIPLIER]`` — e.g.
    ``"std-cpu:16,std-cpu:16x2@1.5,gpu-v100:8@0.5"`` describes a
    three-shard fleet: a baseline 16-node shard, a 16-node shard offering
    two probe slots at 1.5x probe duration, and an 8-node V100 shard that
    probes at half duration.  Returns one dict per shard with keys
    ``node_type``, ``nodes``, ``capacity``, ``cost_multiplier``; the
    caller builds the environments (this module stays import-light).
    """
    recipes: List[Dict[str, object]] = []
    for raw_entry in text.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        head, sep, cost_text = entry.partition("@")
        node_type, sep, size_text = head.partition(":")
        if not sep or not node_type:
            raise ValueError(
                f"bad shard entry {entry!r}: expected NODE_TYPE:NODES[xCAP][@COST]"
            )
        nodes_text, _, cap_text = size_text.partition("x")
        try:
            nodes = int(nodes_text)
            capacity = int(cap_text) if cap_text else 1
            cost_multiplier = float(cost_text) if cost_text else 1.0
        except ValueError:
            raise ValueError(
                f"bad shard entry {entry!r}: expected NODE_TYPE:NODES[xCAP][@COST]"
            ) from None
        if nodes < 1:
            raise ValueError(f"bad shard entry {entry!r}: nodes must be >= 1")
        recipes.append(
            {
                "node_type": node_type.strip(),
                "nodes": nodes,
                "capacity": capacity,
                "cost_multiplier": cost_multiplier,
            }
        )
    if not recipes:
        raise ValueError("shard spec describes no shards")
    return recipes
