"""Trials and tuning history.

A :class:`Trial` records one configuration probe: the typed configuration,
the measurement that came back, and bookkeeping (index, cumulative cost).
:class:`TrialHistory` is the append-only log a tuner builds up; it exposes
the derived series the evaluation plots (best-so-far, cumulative cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.configspace import ConfigDict
from repro.mlsim import Measurement


@dataclass(frozen=True)
class Trial:
    """One configuration probe and its outcome."""

    index: int
    config: ConfigDict
    measurement: Measurement
    cumulative_cost_s: float

    @property
    def ok(self) -> bool:
        """True when the probe ran to completion."""
        return self.measurement.ok

    @property
    def objective(self) -> Optional[float]:
        """Measured objective (higher is better); None for failed probes."""
        return self.measurement.objective


class TrialHistory:
    """Append-only log of trials with derived evaluation series."""

    def __init__(self) -> None:
        self._trials: List[Trial] = []
        self.total_cost_s = 0.0

    def record(self, config: ConfigDict, measurement: Measurement) -> Trial:
        """Append a trial, accumulating its probe cost."""
        self.total_cost_s += measurement.probe_cost_s
        trial = Trial(
            index=len(self._trials),
            config=dict(config),
            measurement=measurement,
            cumulative_cost_s=self.total_cost_s,
        )
        self._trials.append(trial)
        return trial

    def __len__(self) -> int:
        return len(self._trials)

    def __iter__(self) -> Iterator[Trial]:
        return iter(self._trials)

    def __getitem__(self, index: int) -> Trial:
        return self._trials[index]

    @property
    def trials(self) -> List[Trial]:
        """All trials in execution order (a copy-safe view)."""
        return list(self._trials)

    def successful(self) -> List[Trial]:
        """Trials whose probe completed."""
        return [t for t in self._trials if t.ok]

    def failed(self) -> List[Trial]:
        """Trials whose probe crashed (infeasible configuration)."""
        return [t for t in self._trials if not t.ok]

    def best(self) -> Optional[Trial]:
        """The successful trial with the highest objective, or None."""
        candidates = self.successful()
        if not candidates:
            return None
        return max(candidates, key=lambda t: t.objective)

    def best_objective(self) -> Optional[float]:
        """Best measured objective so far, or None if nothing succeeded."""
        best = self.best()
        return best.objective if best else None

    def best_so_far_series(self) -> List[Optional[float]]:
        """Best objective after each trial (None until the first success).

        This is the y-axis of the convergence figures (F2).
        """
        series: List[Optional[float]] = []
        best: Optional[float] = None
        for trial in self._trials:
            if trial.ok and (best is None or trial.objective > best):
                best = trial.objective
            series.append(best)
        return series

    def cost_series(self) -> List[float]:
        """Cumulative probe cost (simulated seconds) after each trial."""
        return [t.cumulative_cost_s for t in self._trials]

    def trials_to_reach(self, threshold: float) -> Optional[int]:
        """Number of trials to first reach ``objective >= threshold``."""
        for trial in self._trials:
            if trial.ok and trial.objective >= threshold:
                return trial.index + 1
        return None

    def cost_to_reach(self, threshold: float) -> Optional[float]:
        """Probe cost (simulated seconds) to first reach ``threshold``."""
        for trial in self._trials:
            if trial.ok and trial.objective >= threshold:
                return trial.cumulative_cost_s
        return None
