"""Trials and tuning history.

A :class:`Trial` records one configuration probe: the typed configuration,
the measurement that came back, and bookkeeping (index, round, cumulative
machine cost and wall-clock).  :class:`TrialHistory` is the append-only log
a tuner builds up; it exposes the derived series the evaluation plots
(best-so-far, cumulative cost).

Two cost axes are tracked.  *Machine cost* (``cumulative_cost_s``) sums
every probe second regardless of where it ran — the bill for the whole
cluster, including the partial seconds burned by probes cancelled at a
budget boundary (:meth:`TrialHistory.charge_cancelled`, itemised in
``cancelled_cost_s``).  *Wall-clock* (``cumulative_wall_clock_s``) is what
a stopwatch next to the tuning session reads: serial probing accrues every
probe, K-way-parallel probing accrues only the slowest probe of each round.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.configspace import ConfigDict
from repro.mlsim import Measurement


def measurement_to_payload(measurement: Measurement) -> dict:
    """A JSON-exact payload for a :class:`~repro.mlsim.Measurement`.

    Every field is a JSON-native scalar: Python's ``json`` round-trips
    floats via ``repr`` (bit-exact, ``inf`` included) and the config is a
    :class:`~repro.mlsim.config.TrainingConfig` of plain scalars, so
    ``measurement_from_payload(measurement_to_payload(m)) == m`` holds
    bit-for-bit — the property the checkpoint WAL's replay guarantee
    rests on.
    """
    return {
        "config": measurement.config.to_dict(),
        "ok": bool(measurement.ok),
        "fidelity": measurement.fidelity,
        "error": measurement.error,
        "throughput": measurement.throughput,
        "iteration_time_s": measurement.iteration_time_s,
        "mean_staleness": measurement.mean_staleness,
        "tta_s": measurement.tta_s,
        "probe_cost_s": measurement.probe_cost_s,
        "objective": measurement.objective,
    }


def measurement_from_payload(payload: dict) -> Measurement:
    """Inverse of :func:`measurement_to_payload`."""
    from repro.mlsim.config import TrainingConfig

    return Measurement(
        config=TrainingConfig.from_dict(payload["config"]),
        ok=bool(payload["ok"]),
        fidelity=payload["fidelity"],
        error=payload["error"],
        throughput=float(payload["throughput"]),
        iteration_time_s=float(payload["iteration_time_s"]),
        mean_staleness=float(payload["mean_staleness"]),
        tta_s=float(payload["tta_s"]),
        probe_cost_s=float(payload["probe_cost_s"]),
        objective=(
            None if payload["objective"] is None else float(payload["objective"])
        ),
    )


class RestoredEvent:
    """A session event deserialised from a checkpoint snapshot.

    Original event objects (e.g. :class:`~repro.core.detect.DriftEvent`)
    are serialised field-by-field when their fields are JSON-safe; this
    shim re-exposes those fields as attributes so consumers like
    :meth:`TrialHistory.recommendation` (which reads ``trial_index``)
    keep working on an inspected history.  Events whose fields do not
    serialise keep only their ``repr`` under the ``detail`` attribute.
    """

    def __init__(self, kind: str, fields: Optional[dict] = None, detail: str = ""):
        self.kind = kind
        self.fields = dict(fields) if fields else {}
        self.detail = detail

    def __getattr__(self, name: str):
        fields = self.__dict__.get("fields", {})
        if name in fields:
            return fields[name]
        raise AttributeError(name)

    def __repr__(self) -> str:
        body = self.fields if self.fields else self.detail
        return f"RestoredEvent({self.kind}, {body})"


def _event_to_payload(event: object) -> dict:
    """Serialise a history event: fields when JSON-safe, repr otherwise."""
    kind = type(event).__name__
    if isinstance(event, RestoredEvent):
        return {"kind": event.kind, "fields": event.fields, "detail": event.detail}
    if dataclasses.is_dataclass(event) and not isinstance(event, type):
        try:
            fields = dataclasses.asdict(event)
            json.dumps(fields)
            return {"kind": kind, "fields": fields}
        except (TypeError, ValueError):
            pass
    return {"kind": kind, "detail": repr(event)}


def _event_from_payload(payload: dict) -> RestoredEvent:
    return RestoredEvent(
        payload.get("kind", "event"),
        fields=payload.get("fields"),
        detail=payload.get("detail", ""),
    )


@dataclass(frozen=True)
class Trial:
    """One configuration probe and its outcome.

    ``round_index`` groups trials probed concurrently (serial execution
    gives every trial its own round); ``cumulative_wall_clock_s`` is the
    session wall-clock at which this trial's own probe completed — under
    parallel probing that is its round's start plus its own probe cost,
    so round-mates carry different stamps and the stamp of a cheap probe
    is independent of slower round-mates.

    ``launch_index`` is the ordinal at which the probe was *launched* —
    the index ``on_trial_start`` fired with.  Under the synchronous
    executors it equals ``index``; under asynchronous execution trials
    are recorded in completion order, so it is the key that correlates a
    trial with its start event.

    ``shard`` names the environment shard the probe ran on when the
    session fanned across an :class:`~repro.core.fleet.EnvironmentPool`;
    ``None`` for single-environment sessions.
    """

    index: int
    config: ConfigDict
    measurement: Measurement
    cumulative_cost_s: float
    round_index: int = 0
    cumulative_wall_clock_s: float = 0.0
    launch_index: int = 0
    shard: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the probe ran to completion."""
        return self.measurement.ok

    @property
    def objective(self) -> Optional[float]:
        """Measured objective (higher is better); None for failed probes."""
        return self.measurement.objective

    def to_payload(self) -> dict:
        """A JSON-exact payload round-tripping through :meth:`from_payload`."""
        return {
            "index": self.index,
            "config": dict(self.config),
            "measurement": measurement_to_payload(self.measurement),
            "cumulative_cost_s": self.cumulative_cost_s,
            "round_index": self.round_index,
            "cumulative_wall_clock_s": self.cumulative_wall_clock_s,
            "launch_index": self.launch_index,
            "shard": self.shard,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Trial":
        """Inverse of :meth:`to_payload`."""
        return cls(
            index=int(payload["index"]),
            config=dict(payload["config"]),
            measurement=measurement_from_payload(payload["measurement"]),
            cumulative_cost_s=float(payload["cumulative_cost_s"]),
            round_index=int(payload["round_index"]),
            cumulative_wall_clock_s=float(payload["cumulative_wall_clock_s"]),
            launch_index=int(payload["launch_index"]),
            shard=payload["shard"],
        )


class TrialHistory:
    """Append-only log of trials with derived evaluation series."""

    def __init__(self) -> None:
        self._trials: List[Trial] = []
        self.total_cost_s = 0.0
        self.total_wall_clock_s = 0.0
        self.cancelled_cost_s = 0.0
        self._cost_by_shard: Dict[Optional[str], float] = {}
        self.events: List[object] = []

    def record(
        self,
        config: ConfigDict,
        measurement: Measurement,
        *,
        wall_clock_s: Optional[float] = None,
        round_index: Optional[int] = None,
        completed_at_wall_s: Optional[float] = None,
        launch_index: Optional[int] = None,
        shard: Optional[str] = None,
    ) -> Trial:
        """Append a trial, accumulating its probe cost and wall-clock.

        ``wall_clock_s`` is this trial's contribution to the session's
        running wall-clock and defaults to the probe cost (serial
        execution).  A parallel executor spreads each round's wall-clock
        (the slowest member) over the round's trials and stamps every
        trial with ``completed_at_wall_s`` — the round's start plus the
        trial's own probe cost — so stamps are physical completion times,
        independent of batch order; within a round they are not monotone
        in trial index.  ``round_index`` defaults to a fresh round per
        trial.  ``launch_index`` defaults to the recording index (launch
        and completion order coincide outside async execution).
        ``shard`` itemises the probe's machine cost under that shard in
        :meth:`cost_by_shard` (single-environment probes accrue under the
        ``None`` key).
        """
        if wall_clock_s is None:
            wall_clock_s = measurement.probe_cost_s
        if round_index is None:
            round_index = self.num_rounds
        self.total_cost_s += measurement.probe_cost_s
        self.total_wall_clock_s += wall_clock_s
        self._cost_by_shard[shard] = (
            self._cost_by_shard.get(shard, 0.0) + measurement.probe_cost_s
        )
        trial = Trial(
            index=len(self._trials),
            config=dict(config),
            measurement=measurement,
            cumulative_cost_s=self.total_cost_s,
            round_index=round_index,
            cumulative_wall_clock_s=(
                completed_at_wall_s
                if completed_at_wall_s is not None
                else self.total_wall_clock_s
            ),
            launch_index=(
                launch_index if launch_index is not None else len(self._trials)
            ),
            shard=shard,
        )
        self._trials.append(trial)
        return trial

    def charge_cancelled(self, cost_s: float, shard: Optional[str] = None) -> None:
        """Bill machine time burned by a probe cancelled before completion.

        A probe cut short at a budget boundary produced no trial, but the
        machine seconds it ran before cancellation were still spent — the
        cluster bill does not refund them.  The charge raises
        ``total_cost_s`` (and is itemised in ``cancelled_cost_s``) without
        appending a trial, so trial counts and per-trial series are
        untouched.  ``shard`` attributes the charge in
        :meth:`cost_by_shard` so the per-shard itemisation keeps summing
        to ``total_cost_s`` even across cancellations.
        """
        if cost_s < 0:
            raise ValueError("cost_s must be non-negative")
        self.cancelled_cost_s += cost_s
        self.total_cost_s += cost_s
        self._cost_by_shard[shard] = self._cost_by_shard.get(shard, 0.0) + cost_s

    def advance_wall_clock(self, dt_s: float) -> None:
        """Move the session wall-clock forward without recording a trial.

        Dead time the session spends *waiting* rather than probing — e.g.
        every shard down in an outage window — still elapses on the
        stopwatch.  No machine cost accrues.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        self.total_wall_clock_s += dt_s

    def record_event(self, event: object) -> None:
        """Append a session-level event (e.g. a detected change-point).

        Events live alongside the trial log — ordered by insertion, not
        charged to any cost axis — so experiments can correlate detector
        output with the trial timeline after the fact.
        """
        self.events.append(event)

    def clone(self) -> "TrialHistory":
        """A metadata-preserving copy sharing the (frozen) trial records.

        Unlike replaying trials through :meth:`record`, the clone keeps
        every trial's ``round_index`` and wall-clock stamps and both
        running totals bit-identical.  :class:`Trial` is frozen, so
        sharing the records is safe; appending to the clone never touches
        the original.
        """
        copy = TrialHistory()
        copy._trials = list(self._trials)
        copy.total_cost_s = self.total_cost_s
        copy.total_wall_clock_s = self.total_wall_clock_s
        copy.cancelled_cost_s = self.cancelled_cost_s
        copy._cost_by_shard = dict(self._cost_by_shard)
        copy.events = list(self.events)
        return copy

    def to_payload(self) -> dict:
        """A JSON payload capturing the full history state.

        Trials and both running cost ledgers round-trip bit-exactly
        (``json`` serialises floats via ``repr``).  ``cost_by_shard`` is
        encoded as ``[shard-or-null, seconds]`` pairs because JSON object
        keys cannot be ``None``.  Events are serialised field-by-field
        when JSON-safe and by ``repr`` otherwise (see
        :class:`RestoredEvent`), so an inspected history preserves e.g. a
        drift event's ``trial_index`` but not the original event class.
        """
        return {
            "trials": [trial.to_payload() for trial in self._trials],
            "total_cost_s": self.total_cost_s,
            "total_wall_clock_s": self.total_wall_clock_s,
            "cancelled_cost_s": self.cancelled_cost_s,
            "cost_by_shard": [
                [shard, cost] for shard, cost in self._cost_by_shard.items()
            ],
            "events": [_event_to_payload(event) for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TrialHistory":
        """Inverse of :meth:`to_payload` (events become :class:`RestoredEvent`)."""
        history = cls()
        history._trials = [Trial.from_payload(item) for item in payload["trials"]]
        history.total_cost_s = float(payload["total_cost_s"])
        history.total_wall_clock_s = float(payload["total_wall_clock_s"])
        history.cancelled_cost_s = float(payload["cancelled_cost_s"])
        history._cost_by_shard = {
            shard: float(cost) for shard, cost in payload["cost_by_shard"]
        }
        history.events = [_event_from_payload(item) for item in payload["events"]]
        return history

    def cost_by_shard(self) -> Dict[Optional[str], float]:
        """Machine cost itemised per environment shard.

        Keys are shard names (``None`` collects probes that ran outside a
        pool); values include cancellation charges attributed to the
        shard, so the values always sum to ``total_cost_s``.
        """
        return dict(self._cost_by_shard)

    def wall_clock_by_shard(self) -> Dict[Optional[str], float]:
        """Latest completion stamp per shard — each shard's own timeline.

        Derived from the trials' physical completion times; a shard that
        finished its last probe early shows a shorter timeline than the
        session's total wall-clock (the makespan across all shards).
        """
        timelines: Dict[Optional[str], float] = {}
        for trial in self._trials:
            stamp = trial.cumulative_wall_clock_s
            if stamp > timelines.get(trial.shard, 0.0):
                timelines[trial.shard] = stamp
        return timelines

    @property
    def num_rounds(self) -> int:
        """Number of probe rounds recorded so far."""
        return self._trials[-1].round_index + 1 if self._trials else 0

    def __len__(self) -> int:
        return len(self._trials)

    def __iter__(self) -> Iterator[Trial]:
        return iter(self._trials)

    def __getitem__(self, index: int) -> Trial:
        return self._trials[index]

    @property
    def trials(self) -> List[Trial]:
        """All trials in execution order (a copy-safe view)."""
        return list(self._trials)

    def successful(self) -> List[Trial]:
        """Trials whose probe completed."""
        return [t for t in self._trials if t.ok]

    def failed(self) -> List[Trial]:
        """Trials whose probe crashed (infeasible configuration)."""
        return [t for t in self._trials if not t.ok]

    def best(self, since_index: Optional[int] = None) -> Optional[Trial]:
        """The successful trial with the highest objective, or None.

        ``since_index`` restricts the search to trials with
        ``index >= since_index`` — the building block for drift-aware
        recommendations, where measurements taken before a detected
        change-point are no longer comparable to those taken after.
        """
        candidates = self.successful()
        if since_index is not None:
            candidates = [t for t in candidates if t.index >= since_index]
        if not candidates:
            return None
        return max(candidates, key=lambda t: t.objective)

    def recommendation(self) -> Optional[Trial]:
        """The trial a deployment should copy its configuration from.

        With no recorded change-point events this is :meth:`best`.  After
        a detected change-point (any event exposing ``trial_index``),
        only trials measured *after* the latest one count: pre-change
        measurements were taken on a surface that no longer exists, so a
        stale record objective must not outrank a fresh, honest one.
        Falls back to the global best while the post-change window is
        still empty.
        """
        cutoff = None
        for event in self.events:
            index = getattr(event, "trial_index", None)
            if index is not None:
                cutoff = int(index) + 1 if cutoff is None else max(cutoff, int(index) + 1)
        if cutoff is not None:
            fresh = self.best(since_index=cutoff)
            if fresh is not None:
                return fresh
        return self.best()

    def best_objective(self) -> Optional[float]:
        """Best measured objective so far, or None if nothing succeeded."""
        best = self.best()
        return best.objective if best else None

    def best_so_far_series(self) -> List[Optional[float]]:
        """Best objective after each trial (None until the first success).

        This is the y-axis of the convergence figures (F2).
        """
        series: List[Optional[float]] = []
        best: Optional[float] = None
        for trial in self._trials:
            if trial.ok and (best is None or trial.objective > best):
                best = trial.objective
            series.append(best)
        return series

    def cost_series(self) -> List[float]:
        """Cumulative probe cost (simulated seconds) after each trial."""
        return [t.cumulative_cost_s for t in self._trials]

    def wall_clock_series(self) -> List[float]:
        """Per-trial completion time on the session wall-clock.

        Monotone under serial execution; under parallel probing the
        members of one round carry their own completion offsets.
        """
        return [t.cumulative_wall_clock_s for t in self._trials]

    def trials_to_reach(self, threshold: float) -> Optional[int]:
        """Number of trials to first reach ``objective >= threshold``."""
        for trial in self._trials:
            if trial.ok and trial.objective >= threshold:
                return trial.index + 1
        return None

    def cost_to_reach(self, threshold: float) -> Optional[float]:
        """Probe cost (simulated seconds) to first reach ``threshold``."""
        for trial in self._trials:
            if trial.ok and trial.objective >= threshold:
                return trial.cumulative_cost_s
        return None

    def wall_clock_to_reach(self, threshold: float) -> Optional[float]:
        """Earliest wall-clock (simulated seconds) at which ``threshold`` held.

        The minimum completion stamp over qualifying trials — under
        parallel probing a cheap round-mate can reach the threshold before
        an earlier-indexed slow probe completes.
        """
        times = [
            t.cumulative_wall_clock_s
            for t in self._trials
            if t.ok and t.objective >= threshold
        ]
        return min(times) if times else None
