"""The Bayesian-optimisation proposal engine.

:class:`BayesianProposer` turns a trial history into the next configuration
to probe:

1. while fewer than ``n_initial`` trials exist, emit points from a
   Latin-hypercube initial design;
2. afterwards, fit a GP surrogate to (encoded config → objective), score a
   large candidate set with the chosen acquisition function, and refine the
   best candidate with acquisition hill-climbing over the space's
   single-knob neighbourhood moves.

Failed trials (crashed probes) are kept in the training set at a penalised
objective value — one standard deviation below the worst success — so the
surrogate learns to avoid the infeasible region instead of repeatedly
proposing configurations that cannot run.

When the acquisition is cost-aware (``"eipc"``), a second GP is fit to the
log probe cost and candidates are scored by improvement *per predicted
second of probing*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.acquisition import get_acquisition
from repro.core.gp import GaussianProcess, GPFitError
from repro.core.kernels import make_kernel
from repro.core.trial import TrialHistory


class BayesianProposer:
    """Stateless-per-call BO proposal logic (state lives in the history).

    Parameters
    ----------
    space:
        The configuration space to search.
    acquisition:
        ``"ei"``, ``"pi"``, ``"ucb"``, or ``"eipc"`` (cost-aware EI).
    n_initial:
        Size of the Latin-hypercube initial design.
    n_candidates:
        Random candidates scored per proposal (before local refinement).
    kernel:
        Surrogate kernel name (``"matern52"`` or ``"rbf"``).
    xi / beta:
        Exploration parameters for EI/PI and UCB respectively.
    log_objective:
        ``"auto"`` fits the surrogate to ``log(objective)`` whenever every
        observed objective is positive (the transform CherryPick applies to
        running cost); improvement is then measured in log space, i.e.
        relative improvement.  Default ``"never"``: on this substrate an
        A/B comparison showed no benefit (see EXPERIMENTS.md commentary),
        and the recorded benchmarks use the raw scale.
    """

    def __init__(
        self,
        space: ConfigSpace,
        acquisition: str = "ei",
        n_initial: int = 8,
        n_candidates: int = 512,
        kernel: str = "matern52",
        xi: float = 0.01,
        beta: float = 2.0,
        local_search_steps: int = 8,
        refit_every: int = 3,
        log_objective: str = "never",
        seed: int = 0,
    ) -> None:
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2")
        if n_candidates < 8:
            raise ValueError("n_candidates must be >= 8")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if log_objective not in ("auto", "never"):
            raise ValueError("log_objective must be 'auto' or 'never'")
        self.space = space
        self.acquisition_name = acquisition
        self.acquisition = get_acquisition(acquisition)
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.kernel_name = kernel
        self.xi = xi
        self.beta = beta
        self.local_search_steps = local_search_steps
        # Full marginal-likelihood refits are the dominant cost of a
        # proposal; hyperparameters drift slowly, so refit every few trials
        # and reuse the cached values in between.
        self.refit_every = refit_every
        self.log_objective = log_objective
        self.seed = seed
        self._initial_design: Optional[List[ConfigDict]] = None
        self._cached_hypers: Optional[np.ndarray] = None
        self._last_refit_at = -1
        self._log_active = False
        self.last_fit_diagnostics: dict = {}

    # -- training-set assembly ------------------------------------------------

    def _training_set(self, history: TrialHistory) -> Tuple[np.ndarray, np.ndarray]:
        """Encoded (X, y) including penalised failures.

        When the log transform is active, targets are log objectives and
        failures are penalised in log space.
        """
        successes = history.successful()
        failures = history.failed()
        ys = np.array([t.objective for t in successes], dtype=float)
        use_log = (
            self.log_objective == "auto" and len(ys) > 0 and np.all(ys > 0)
        )
        self._log_active = use_log
        if use_log:
            ys = np.log(ys)
        if len(ys) > 0:
            penalty = ys.min() - (ys.std() if len(ys) > 1 and ys.std() > 0 else abs(ys.min()) * 0.1 + 1.0)
        else:
            penalty = -1.0
        trials = successes + failures
        if not trials:
            return np.array([]), np.array([])
        rows = self.space.encode_batch([t.config for t in trials])
        targets = [float(value) for value in ys] + [penalty] * len(failures)
        return rows, np.array(targets)

    # -- proposal ------------------------------------------------------------

    def propose(
        self, history: TrialHistory, rng: np.random.Generator
    ) -> ConfigDict:
        """The next configuration to probe."""
        if len(history) < self.n_initial:
            return self._initial_point(len(history), rng)
        try:
            return self._model_based_point(history, rng)
        except GPFitError:
            # Degenerate data (e.g. all failures): fall back to exploration.
            return self.space.sample(rng)

    def _initial_point(self, index: int, rng: np.random.Generator) -> ConfigDict:
        if self._initial_design is None:
            design_rng = np.random.default_rng(self.seed + 7)
            self._initial_design = self.space.latin_hypercube(design_rng, self.n_initial)
        return self._initial_design[index % len(self._initial_design)]

    def _model_based_point(
        self, history: TrialHistory, rng: np.random.Generator
    ) -> ConfigDict:
        x, y = self._training_set(history)
        if len(y) == 0:
            return self.space.sample(rng)
        surrogate = GaussianProcess(
            kernel=make_kernel(self.kernel_name, self.space.dims),
            seed=self.seed,
        )
        refit_due = (
            self._cached_hypers is None
            or len(history) - self._last_refit_at >= self.refit_every
        )
        if not refit_due:
            k = surrogate.kernel.num_params()
            surrogate.kernel.set_log_params(self._cached_hypers[:k])
            surrogate.noise_variance = float(np.exp(self._cached_hypers[k]))
            surrogate.fit(x, y, optimize_hypers=False)
        else:
            surrogate.fit(x, y, optimize_hypers=True)
            self._cached_hypers = np.concatenate(
                (surrogate.kernel.get_log_params(), [np.log(surrogate.noise_variance)])
            )
            self._last_refit_at = len(history)

        cost_model = None
        if self.acquisition_name == "eipc":
            cost_model = self._fit_cost_model(history)

        incumbent = float(np.max(y))
        candidates = self._candidate_set(history, rng)
        scored = self._score(candidates, surrogate, incumbent, cost_model)
        order = int(np.argmax(scored))
        best_config, best_score = candidates[order], float(scored[order])

        # Local refinement: climb the acquisition surface via single-knob
        # moves from the best random candidate.
        current, current_score = best_config, best_score
        for _ in range(self.local_search_steps):
            moves = self.space.neighbors(current, rng)
            if not moves:
                break
            move_scores = self._score(moves, surrogate, incumbent, cost_model)
            top = int(np.argmax(move_scores))
            if move_scores[top] <= current_score:
                break
            current, current_score = moves[top], float(move_scores[top])

        self.last_fit_diagnostics = {
            "lml": surrogate.log_marginal_likelihood(),
            "noise_variance": surrogate.noise_variance,
            "incumbent": incumbent,
            "acquisition_value": current_score,
        }
        return current

    def _candidate_set(
        self, history: TrialHistory, rng: np.random.Generator
    ) -> List[ConfigDict]:
        candidates = self.space.sample_batch(rng, self.n_candidates)
        best = history.best()
        if best is not None:
            candidates.extend(self.space.neighbors(best.config, rng))
            candidates.append(dict(best.config))
        return candidates

    def _score(
        self,
        candidates: List[ConfigDict],
        surrogate: GaussianProcess,
        incumbent: float,
        cost_model: Optional[GaussianProcess],
    ) -> np.ndarray:
        x = self.space.encode_batch(candidates)
        mu, var = surrogate.predict(x)
        sigma = np.sqrt(var)
        if self.acquisition_name == "ei":
            return self.acquisition(mu, sigma, incumbent, xi=self.xi)
        if self.acquisition_name == "pi":
            return self.acquisition(mu, sigma, incumbent, xi=self.xi)
        if self.acquisition_name == "ucb":
            return self.acquisition(mu, sigma, incumbent, beta=self.beta)
        # eipc: improvement per predicted probe second.
        if cost_model is not None:
            log_cost, _ = cost_model.predict(x)
            cost = np.exp(np.clip(log_cost, -2.0, 20.0))
        else:
            cost = np.ones(len(candidates))
        return self.acquisition(mu, sigma, incumbent, cost=cost, xi=self.xi)

    def _fit_cost_model(self, history: TrialHistory) -> Optional[GaussianProcess]:
        successes = history.successful()
        if len(successes) < 3:
            return None
        x = self.space.encode_batch([t.config for t in successes])
        log_cost = np.log(
            np.array([max(1e-3, t.measurement.probe_cost_s) for t in successes])
        )
        try:
            return GaussianProcess(
                kernel=make_kernel(self.kernel_name, self.space.dims),
                seed=self.seed + 1,
            ).fit(x, log_cost)
        except GPFitError:
            return None
