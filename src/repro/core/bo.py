"""The Bayesian-optimisation proposal engine.

:class:`BayesianProposer` turns a trial history into the next configuration
to probe:

1. while fewer than ``n_initial`` trials exist, emit points from a
   Latin-hypercube initial design;
2. afterwards, fit a GP surrogate to (encoded config → objective), score a
   large candidate set with the chosen acquisition function, and refine the
   best candidate with acquisition hill-climbing over the space's
   single-knob neighbourhood moves.

Failed trials (crashed probes) are kept in the training set at a penalised
objective value — one standard deviation below the worst success — so the
surrogate learns to avoid the infeasible region instead of repeatedly
proposing configurations that cannot run.

When the acquisition is cost-aware (``"eipc"``), a second GP is fit to the
log probe cost and candidates are scored by improvement *per predicted
second of probing*.

Fast-path architecture
----------------------
Proposal latency is the interactive hot path of the whole tuner (a
CherryPick-style loop proposes between every probe), so the proposer keeps
its surrogates *persistent* across :meth:`BayesianProposer.propose` calls
instead of rebuilding them per call:

- each surrogate (objective GP, and the cost GP under ``"eipc"``) lives in
  a :class:`_SurrogateCache`.  When the new training set is a pure append
  of the cached one — the common case: one more real trial, or one more
  constant-liar fantasy during a batch round — the cached Cholesky factor
  is *extended* in O(n^2) via :meth:`GaussianProcess.extend`;
- hyperparameters are refit every ``refit_every`` trials; only then is the
  cached factor rebuilt (with L-BFGS-B over analytic gradients).  The refit
  cadence counts **real** trials only, so the k fantasies a constant-liar
  round appends (:mod:`repro.core.parallel`) never trigger mid-round
  refits — a round costs one refit at most, not k;
- any other change to the training set (a fantasy replaced by its real
  measurement, the failure penalty shifting, the log transform toggling)
  misses the cache and falls back to one plain Cholesky refit at the
  cached hyperparameters — correctness never depends on the cache;
- past ``sparse_threshold`` trials the cache switches the surrogate to the
  inducing-point sparse tier (:class:`~repro.core.gp.SparseGaussianProcess`
  via :class:`~repro.core.gp.SurrogateFactory`), which keeps extension,
  prediction, and hyper-refit costs bounded by ``max_inducing`` instead of
  the history size — the tier that keeps 10^4-trial histories interactive.

``reuse_surrogate=False`` disables the caching and restores rebuild-per-
call surrogates (with a full cost-GP hyperparameter fit per call); it
exists as the benchmark baseline (``benchmarks/bench_p3_surrogate.py``).
Note it is a *conservative* baseline, not a bit-exact replay of the
pre-optimisation code: its refits still use analytic LML gradients and
the real-trial refit cadence, so measured speedups understate the gap to
the true finite-difference past.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.acquisition import get_acquisition
from repro.core.gp import GaussianProcess, GPFitError, SurrogateFactory
from repro.core.kernels import make_kernel
from repro.core.trial import TrialHistory


class _SurrogateCache:
    """One persistent GP reused across propose calls (extend-or-rebuild).

    Holds the GP together with the exact training set it represents and
    the last optimised hyperparameters.  :meth:`update` returns a GP
    trained on exactly ``(x, y)`` by the cheapest sound route:

    - ``optimize=True`` — fresh fit with hyperparameter optimisation; the
      fitted hypers are cached for the rebuild path;
    - cached training set is a prefix of ``(x, y)`` *and* the cached GP is
      still the tier the factory picks for the new size — incremental
      extension of the cached factors, hyperparameters fixed;
    - otherwise — fresh single-factorisation fit at the cached hypers.

    ``factory`` is a :class:`~repro.core.gp.SurrogateFactory`: the cache
    asks it which tier an ``n``-row training set belongs to and for fresh
    unfitted models.  A tier mismatch (the history just crossed the
    exact→sparse threshold) forces a rebuild *at the crossing trial* — not
    at the next hyper-refit — so the switchover happens on schedule even
    when refits are far apart.  Both tiers share the hyperparameter cache
    format (kernel log-params plus log noise), so a switchover rebuild
    reuses the hypers the exact tier last optimised.
    """

    def __init__(self) -> None:
        self.gp = None
        self.hypers: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _extends_cached(self, x: np.ndarray, y: np.ndarray) -> bool:
        n = self._y.shape[0]
        return (
            y.shape[0] >= n
            and x.shape[1] == self._x.shape[1]
            and np.array_equal(x[:n], self._x)
            and np.array_equal(y[:n], self._y)
        )

    def _scale_extends(self, noise_scale: Optional[np.ndarray]) -> bool:
        """Whether the requested noise scale is extendable from the cache.

        GP ``extend`` always appends at unit scale, so the request must
        match the cached scale on the prefix and be all-ones on the
        extension.  ``None`` is the all-ones scale.
        """
        n = self._y.shape[0]
        if noise_scale is None:
            return self._scale is None or bool(np.all(self._scale == 1.0))
        cached = self._scale if self._scale is not None else np.ones(n)
        return np.array_equal(noise_scale[:n], cached) and bool(
            np.all(noise_scale[n:] == 1.0)
        )

    def update(
        self,
        x: np.ndarray,
        y: np.ndarray,
        factory: SurrogateFactory,
        optimize: bool,
        allow_extend: bool = True,
        noise_scale: Optional[np.ndarray] = None,
    ):
        if (
            not optimize
            and allow_extend
            and self.gp is not None
            and factory.tier_for(y.shape[0]) == factory.tier_of(self.gp)
            and self._extends_cached(x, y)
            and self._scale_extends(noise_scale)
        ):
            n = self._y.shape[0]
            if y.shape[0] > n:
                self.gp.extend(x[n:], y[n:])
            self._x, self._y, self._scale = x, y, noise_scale
            return self.gp
        gp = factory.build(y.shape[0])
        if optimize or self.hypers is None:
            gp.fit(x, y, optimize_hypers=True, noise_scale=noise_scale)
            self.hypers = np.concatenate(
                (gp.kernel.get_log_params(), [np.log(gp.noise_variance)])
            )
        else:
            k = gp.kernel.num_params()
            gp.kernel.set_log_params(self.hypers[:k])
            gp.noise_variance = float(np.exp(self.hypers[k]))
            gp.fit(x, y, optimize_hypers=False, noise_scale=noise_scale)
        self.gp, self._x, self._y, self._scale = gp, x, y, noise_scale
        return gp


class _EncodedRowCache:
    """Incremental encoder for append-mostly trial lists.

    Proposal latency used to include re-encoding the *entire* history (and
    the cost model's success list) on every call.  Trials are frozen and
    history clones share trial objects, so an identity-prefix comparison
    tells exactly which suffix is new: only those rows are encoded and the
    cached block is reused for the shared prefix.  A constant-liar round's
    fantasies are fresh objects each round, so they re-encode (a handful
    of rows); the real-trial prefix never does.
    """

    def __init__(self, space: ConfigSpace) -> None:
        self.space = space
        self._trials: List = []
        self._rows = np.empty((0, space.dims))

    def rows(self, trials: List) -> np.ndarray:
        cached = self._trials
        limit = min(len(cached), len(trials))
        prefix = 0
        while prefix < limit and cached[prefix] is trials[prefix]:
            prefix += 1
        if prefix == len(trials) == len(cached):
            return self._rows
        fresh = self.space.encode_batch([t.config for t in trials[prefix:]])
        rows = np.vstack((self._rows[:prefix], fresh)) if prefix else fresh
        self._trials = list(trials)
        self._rows = rows
        return rows


class BayesianProposer:
    """Stateless-per-call BO proposal logic (state lives in the history).

    Parameters
    ----------
    space:
        The configuration space to search.
    acquisition:
        ``"ei"``, ``"pi"``, ``"ucb"``, or ``"eipc"`` (cost-aware EI).
    n_initial:
        Size of the Latin-hypercube initial design.
    n_candidates:
        Random candidates scored per proposal (before local refinement).
    kernel:
        Surrogate kernel name (``"matern52"`` or ``"rbf"``).
    xi / beta:
        Exploration parameters for EI/PI and UCB respectively.
    log_objective:
        ``"auto"`` fits the surrogate to ``log(objective)`` whenever every
        observed objective is positive (the transform CherryPick applies to
        running cost); improvement is then measured in log space, i.e.
        relative improvement.  Default ``"never"``: on this substrate an
        A/B comparison showed no benefit (see EXPERIMENTS.md commentary),
        and the recorded benchmarks use the raw scale.
    reuse_surrogate:
        Keep the fitted surrogates persistent between ``propose`` calls and
        extend their cached Cholesky factors when the history grew by pure
        appends (see the module docstring).  ``False`` rebuilds every
        surrogate per call — kept as the (conservative) benchmark
        baseline.
    vectorized_candidates:
        Run the candidate pipeline on encoded ``(count, dims)`` arrays
        end-to-end: candidates are drawn by
        :meth:`ConfigSpace.sample_batch_encoded` (vectorised rejection
        sampling and constraint masking), scored in place, and only the
        winning row's typed dict is ever touched; the hill-climb scores
        :meth:`ConfigSpace.neighbors_batch` rows the same way.  ``False``
        restores the scalar per-config loop (one :meth:`ConfigSpace.sample`
        call per candidate plus an ``encode_batch`` re-encode), which
        reproduces the historical *candidate RNG stream* bit-identically —
        kept as the benchmark baseline
        (``benchmarks/bench_p5_throughput.py``).  The flag scopes the
        candidate pipeline only: the shared GP prediction path got
        structurally faster in the same change (cached scaled inputs,
        inverse-factor variances) and its last-ulp differences can flip a
        near-tie argmax, so the fallback is not a bit-exact replay of
        pre-change proposal *sequences*, only of their candidate stream.
        The two paths draw the same marginal candidate distribution but
        consume the RNG stream in a different order, so individual
        proposals may differ between them.
    fit_workers:
        Fan each surrogate hyperparameter refit's multi-start L-BFGS-B
        restarts across ``fit_workers`` processes (see
        :class:`~repro.core.gp.GaussianProcess`); 1 = in-process serial,
        bit-identical results either way.
    shard_cost_feature:
        Condition the ``"eipc"`` cost surrogate on the environment shard a
        trial ran on: the cost GP's input gains one extra dimension — the
        shard's ``cost_multiplier`` (looked up via
        :meth:`set_shard_weights`; 1.0 for shard-less trials) — and
        candidate scoring predicts probe cost at the *target* shard's
        multiplier (the ``shard_weight`` argument of :meth:`propose`).
        On a heterogeneous fleet this keeps a slow shard's probes from
        inflating the predicted cost of probing the same point on a fast
        shard.  Off by default; irrelevant outside pool execution.
    sparse_threshold:
        History size at which the surrogates switch from the exact
        :class:`~repro.core.gp.GaussianProcess` to the inducing-point
        :class:`~repro.core.gp.SparseGaussianProcess` tier (see
        :class:`~repro.core.gp.SurrogateFactory`).  Below the threshold
        behaviour is bit-identical to the exact-only code; ``None``
        disables the sparse tier entirely.  The switchover happens at the
        crossing trial (the cache rebuilds on tier mismatch), and the
        sparse tier keeps the same extend-per-append / refit-on-cadence
        fast paths with every per-proposal cost bounded by
        ``max_inducing`` instead of the history size.
    max_inducing:
        Inducing-set cap for the sparse tier.
    prior_mean:
        Optional fixed predictor of the normalised objective surface (a
        :class:`~repro.core.transfer.TransferPrior` built from a history
        repository's nearest prior workload).  The *objective* surrogate
        is then built as a :class:`~repro.core.gp.PriorMeanGP` — a
        residual GP whose posterior mean starts from the prior surface
        instead of from flat — which is the cross-session warm-start
        path.  The cost surrogate is never prior-wrapped.  Must be set
        before the first proposal (the surrogate factory is built lazily
        and cached).
    """

    def __init__(
        self,
        space: ConfigSpace,
        acquisition: str = "ei",
        n_initial: int = 8,
        n_candidates: int = 512,
        kernel: str = "matern52",
        xi: float = 0.01,
        beta: float = 2.0,
        local_search_steps: int = 8,
        refit_every: int = 3,
        log_objective: str = "never",
        reuse_surrogate: bool = True,
        vectorized_candidates: bool = True,
        shard_cost_feature: bool = False,
        fit_workers: int = 1,
        sparse_threshold: Optional[int] = 512,
        max_inducing: int = 256,
        prior_mean=None,
        seed: int = 0,
    ) -> None:
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2")
        if n_candidates < 8:
            raise ValueError("n_candidates must be >= 8")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if log_objective not in ("auto", "never"):
            raise ValueError("log_objective must be 'auto' or 'never'")
        if fit_workers < 1:
            raise ValueError("fit_workers must be >= 1")
        if sparse_threshold is not None and sparse_threshold < 4:
            raise ValueError("sparse_threshold must be >= 4 (or None)")
        if max_inducing < 4:
            raise ValueError("max_inducing must be >= 4")
        self.space = space
        self.acquisition_name = acquisition
        self.acquisition = get_acquisition(acquisition)
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.kernel_name = kernel
        self.xi = xi
        self.beta = beta
        self.local_search_steps = local_search_steps
        # Full marginal-likelihood refits are the dominant cost of a
        # proposal; hyperparameters drift slowly, so refit every few trials
        # and reuse the cached values in between.
        self.refit_every = refit_every
        self.log_objective = log_objective
        self.reuse_surrogate = reuse_surrogate
        self.vectorized_candidates = vectorized_candidates
        self.shard_cost_feature = shard_cost_feature
        self.fit_workers = fit_workers
        self.sparse_threshold = sparse_threshold
        self.max_inducing = max_inducing
        self.prior_mean = prior_mean
        self.seed = seed
        self._factories: dict = {}
        self._initial_design: Optional[List[ConfigDict]] = None
        self._last_refit_at = -1
        # Re-tuning state: trials with ``index < _stale_before`` predate
        # the most recent detected change-point.  ``_stale_discount`` is
        # None to evict them from the training set outright, or a factor
        # in (0, 1] to keep them with noise inflated by ``1/discount``.
        self._stale_before = 0
        self._stale_discount: Optional[float] = None
        self._log_active = False
        self._objective_cache = _SurrogateCache()
        self._cost_cache = _SurrogateCache()
        self._train_rows = _EncodedRowCache(space)
        self._cost_rows = _EncodedRowCache(space)
        self._shard_weights: dict = {}
        self._target_shard_weight: Optional[float] = None
        self.last_fit_diagnostics: dict = {}

    def _surrogate_factory(
        self, dims: int, seed: int, prior_mean=None
    ) -> SurrogateFactory:
        """The (cached) tier factory for a ``dims``-dimensional surrogate.

        One factory per (dims, seed) pair: the objective surrogate uses
        the space's dimension and the proposer's seed (and carries the
        prior mean when one is installed); the cost surrogate uses
        ``seed + 1``, never a prior, and one extra dimension when the
        shard cost feature is on.
        """
        key = (dims, seed)
        factory = self._factories.get(key)
        if factory is None:
            factory = SurrogateFactory(
                kernel_factory=lambda: make_kernel(self.kernel_name, dims),
                sparse_threshold=self.sparse_threshold,
                max_inducing=self.max_inducing,
                seed=seed,
                fit_workers=self.fit_workers,
                prior_mean=prior_mean,
            )
            self._factories[key] = factory
        return factory

    def set_shard_weights(self, weights: dict) -> None:
        """Register shard-name → ``cost_multiplier`` mappings.

        Used by the shard cost feature to encode which shard each recorded
        trial ran on; unknown shards (and fantasies, which carry no shard)
        default to the baseline multiplier 1.0.
        """
        self._shard_weights.update(weights)

    # -- re-tuning ------------------------------------------------------------

    def apply_retuning(self, before_index: int, discount: Optional[float] = None) -> None:
        """Mark trials before ``before_index`` as pre-change-point.

        ``discount=None`` evicts them from the surrogate training set;
        a factor in (0, 1] keeps them with observation noise inflated by
        ``1/discount`` (age-weighted targets).  Either way the cached
        surrogates and the refit clock are reset so the next proposal
        refits hyperparameters against the re-weighted data.  The trial
        history itself is never mutated — only how the surrogate reads it.
        """
        if before_index < 0:
            raise ValueError("before_index must be >= 0")
        if discount is not None and not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self._stale_before = max(self._stale_before, int(before_index))
        self._stale_discount = discount
        self._objective_cache = _SurrogateCache()
        self._cost_cache = _SurrogateCache()
        self._last_refit_at = -1

    def _stale_split(self, trials: List) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """(keep_mask, noise_scale) implementing the stale-history policy.

        ``(None, None)`` when no re-tuning is active or nothing in
        ``trials`` is stale; ``(mask, None)`` in evict mode (keep only the
        masked rows); ``(None, scale)`` in discount mode (keep everything,
        per-row noise multipliers).
        """
        before = self._stale_before
        if before <= 0 or not trials:
            return None, None
        count = len(trials)
        stale = np.fromiter((t.index < before for t in trials), dtype=bool, count=count)
        if not stale.any():
            return None, None
        if self._stale_discount is None:
            return ~stale, None
        scale = np.ones(count)
        scale[stale] = 1.0 / self._stale_discount
        return None, scale

    # -- training-set assembly ------------------------------------------------

    def _training_set(
        self, history: TrialHistory
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Encoded (X, y, noise_scale) with penalised failures, in history order.

        Rows follow trial order (the GP posterior is permutation-invariant,
        and history order makes a grown history a pure *append* of the
        previous training set — the case the surrogate cache fast-paths).
        When the log transform is active, targets are log objectives and
        failures are penalised in log space.  Active re-tuning either drops
        pre-change-point rows (evict) or returns a per-row noise scale
        (discount); the failure penalty is computed from the *kept* rows
        only, so a stale high plateau cannot park the penalty above live
        post-drift objectives.
        """
        trials = history.trials
        if not trials:
            return np.array([]), np.array([]), None
        keep, noise_scale = self._stale_split(trials)
        rows = self._train_rows.rows(trials)
        if keep is not None:
            trials = [t for t, k in zip(trials, keep) if k]
            rows = rows[keep]
            if not trials:
                return np.array([]), np.array([]), None
        count = len(trials)
        ok = np.fromiter((t.ok for t in trials), dtype=bool, count=count)
        raw = np.fromiter(
            (t.objective if t.ok else 0.0 for t in trials), dtype=float, count=count
        )
        ys = raw[ok]
        use_log = self.log_objective == "auto" and ys.size > 0 and bool(np.all(ys > 0))
        self._log_active = use_log
        if use_log:
            ys = np.log(ys)
        if ys.size > 0:
            spread = float(ys.std()) if ys.size > 1 else 0.0
            penalty = ys.min() - (spread if spread > 0 else abs(ys.min()) * 0.1 + 1.0)
        else:
            penalty = -1.0
        # One vectorised pass: successes get their (possibly logged)
        # objective, failures the shared penalty — no per-trial np.log or
        # repeated std() recomputation.
        targets = np.full(count, float(penalty))
        targets[ok] = ys
        return rows, targets, noise_scale

    # -- proposal ------------------------------------------------------------

    def propose(
        self,
        history: TrialHistory,
        rng: np.random.Generator,
        shard_weight: Optional[float] = None,
    ) -> ConfigDict:
        """The next configuration to probe.

        ``shard_weight`` is the target shard's ``cost_multiplier`` when
        the caller knows where the probe will run; the shard-conditioned
        cost surrogate (``shard_cost_feature=True``) then predicts probe
        cost at that shard.  Ignored otherwise.
        """
        self._target_shard_weight = shard_weight
        if len(history) < self.n_initial:
            return self._initial_point(len(history), rng)
        try:
            return self._model_based_point(history, rng)
        except GPFitError:
            # Degenerate data (e.g. all failures): fall back to exploration.
            return self.space.sample(rng)

    def _initial_point(self, index: int, rng: np.random.Generator) -> ConfigDict:
        if self._initial_design is None:
            design_rng = np.random.default_rng(self.seed + 7)
            self._initial_design = self.space.latin_hypercube(design_rng, self.n_initial)
        return self._initial_design[index % len(self._initial_design)]

    @staticmethod
    def _num_real_trials(history: TrialHistory) -> int:
        """Trials backed by an actual probe (constant-liar fantasies excluded).

        The refit cadence runs on this count so the fantasies a batch round
        appends never trigger mid-round hyperparameter refits.
        """
        return sum(1 for t in history if t.measurement.fidelity != "fantasy")

    def _model_based_point(
        self, history: TrialHistory, rng: np.random.Generator
    ) -> ConfigDict:
        x, y, noise_scale = self._training_set(history)
        if len(y) == 0:
            return self.space.sample(rng)
        real_n = self._num_real_trials(history)
        refit_due = (
            self._objective_cache.hypers is None
            or real_n - self._last_refit_at >= self.refit_every
        )
        surrogate = self._objective_cache.update(
            x,
            y,
            factory=self._surrogate_factory(
                self.space.dims, self.seed, prior_mean=self.prior_mean
            ),
            optimize=refit_due,
            allow_extend=self.reuse_surrogate,
            noise_scale=noise_scale,
        )
        if refit_due:
            self._last_refit_at = real_n

        cost_model = None
        if self.acquisition_name == "eipc":
            cost_model = self._fit_cost_model(history, refit_due)

        incumbent = float(np.max(y))
        if self.vectorized_candidates:
            cand_x, lookup = self._candidate_matrix(history, rng)
        else:
            candidates = self._candidate_set(history, rng)
            cand_x = self.space.encode_batch(candidates)
            lookup = candidates.__getitem__
        scored = self._score_encoded(cand_x, surrogate, incumbent, cost_model)
        order = int(np.argmax(scored))
        best_config, best_score = lookup(order), float(scored[order])

        # Local refinement: climb the acquisition surface via single-knob
        # moves from the best random candidate.  The vectorised path keeps
        # every move in encoded form (one base row, one slice overwritten
        # per move) and scores the matrix in place.
        current, current_score = best_config, best_score
        current_row = cand_x[order]
        for _ in range(self.local_search_steps):
            if self.vectorized_candidates:
                moves_x, moves = self.space.neighbors_batch(
                    current, rng, base_row=current_row
                )
            else:
                moves = self.space.neighbors(current, rng)
                moves_x = self.space.encode_batch(moves)
            if not moves:
                break
            move_scores = self._score_encoded(moves_x, surrogate, incumbent, cost_model)
            top = int(np.argmax(move_scores))
            if move_scores[top] <= current_score:
                break
            current, current_score = moves[top], float(move_scores[top])
            current_row = moves_x[top]

        self.last_fit_diagnostics = {
            # Cached at the surrogate's last fit/extension — no O(n^3)
            # posterior recomputation just to populate a diagnostic.
            "lml": surrogate.log_marginal_likelihood(),
            "noise_variance": surrogate.noise_variance,
            "incumbent": incumbent,
            "acquisition_value": current_score,
        }
        return current

    def _candidate_set(
        self, history: TrialHistory, rng: np.random.Generator
    ) -> List[ConfigDict]:
        """Scalar candidate generation — the historical per-config loop.

        Kept as the ``vectorized_candidates=False`` baseline: the explicit
        ``sample`` loop reproduces the pre-vectorisation RNG stream exactly
        (``ConfigSpace.sample_batch`` itself is batched now and consumes
        the stream in a different order under rejection).
        """
        candidates = [self.space.sample(rng) for _ in range(self.n_candidates)]
        best = history.best()
        if best is not None:
            candidates.extend(self.space.neighbors(best.config, rng))
            candidates.append(dict(best.config))
        return candidates

    def _candidate_matrix(self, history: TrialHistory, rng: np.random.Generator):
        """Vectorised candidate generation: encoded matrix + winner lookup.

        The matrix comes straight from the batched sampling pipeline
        (encode once); the incumbent's neighbourhood rows are spliced from
        the incumbent's own encoding.  Scoring happens on the matrix; the
        returned ``lookup(i)`` materialises row ``i`` as a typed dict, and
        is called exactly once — for the argmax winner — so no dicts are
        built for the other candidates.
        """
        x, columns = self.space.sample_batch_encoded(rng, self.n_candidates)
        extras: List[ConfigDict] = []
        best = history.best()
        if best is not None:
            moves_x, moves = self.space.neighbors_batch(best.config, rng)
            best_x = self.space.encode(best.config)
            x = np.vstack((x, moves_x, best_x[None, :]))
            extras = moves + [dict(best.config)]

        def lookup(index: int) -> ConfigDict:
            if index < self.n_candidates:
                return self.space.config_at(columns, index)
            return extras[index - self.n_candidates]

        return x, lookup

    def _score_encoded(
        self,
        x: np.ndarray,
        surrogate: GaussianProcess,
        incumbent: float,
        cost_model: Optional[GaussianProcess],
    ) -> np.ndarray:
        """Acquisition scores for already-encoded candidate rows.

        The hot path: candidate matrices arrive pre-encoded from the
        batched sampling pipeline / neighbourhood splicing and are scored
        in place; the ``eipc`` cost surrogate reuses the same matrix
        (with one extra shard-weight column when that feature is on)
        instead of re-encoding the candidate set.
        """
        mu, var = surrogate.predict(x)
        sigma = np.sqrt(var)
        if self.acquisition_name == "ei":
            return self.acquisition(mu, sigma, incumbent, xi=self.xi)
        if self.acquisition_name == "pi":
            return self.acquisition(mu, sigma, incumbent, xi=self.xi)
        if self.acquisition_name == "ucb":
            return self.acquisition(mu, sigma, incumbent, beta=self.beta)
        # eipc: improvement per predicted probe second.
        if cost_model is not None:
            cost_x = x
            if self.shard_cost_feature:
                # Predict probe cost at the *target* shard's multiplier
                # (baseline 1.0 when the caller named no shard).
                weight = (
                    self._target_shard_weight
                    if self._target_shard_weight is not None
                    else 1.0
                )
                cost_x = np.empty((x.shape[0], x.shape[1] + 1))
                cost_x[:, :-1] = x
                cost_x[:, -1] = float(weight)
            log_cost = cost_model.predict_mean(cost_x)
            cost = np.exp(np.clip(log_cost, -2.0, 20.0))
        else:
            cost = np.ones(x.shape[0])
        return self.acquisition(mu, sigma, incumbent, cost=cost, xi=self.xi)

    def _row_weight(self, trial) -> float:
        """The shard cost multiplier a training row is encoded at."""
        if trial.shard is not None:
            return float(self._shard_weights.get(trial.shard, 1.0))
        if (
            trial.measurement.fidelity == "fantasy"
            and self._target_shard_weight is not None
        ):
            return float(self._target_shard_weight)
        return 1.0

    def _fit_cost_model(
        self, history: TrialHistory, refit_due: bool
    ) -> Optional[GaussianProcess]:
        successes = history.successful()
        keep, cost_scale = self._stale_split(successes)
        if keep is not None:
            successes = [t for t, k in zip(successes, keep) if k]
        if len(successes) < 3:
            return None
        x = self._cost_rows.rows(successes)
        if self.shard_cost_feature:
            # One extra input dimension: the cost multiplier of the shard
            # each probe ran on (1.0 for shard-less trials).  Fantasies
            # carry no shard but their probe-cost lie was scaled by the
            # *target* shard's multiplier (repro.core.parallel), so they
            # must be encoded at that same weight — encoding a 1.5x-priced
            # lie at weight 1.0 would teach the GP that baseline probes
            # cost 1.5x the median.
            weights = np.array([[self._row_weight(t)] for t in successes])
            x = np.hstack([x, weights])
        log_cost = np.log(
            np.array([max(1e-3, t.measurement.probe_cost_s) for t in successes])
        )
        # Successes appear in history order, so a new probe appends one row
        # and the cached cost factor extends exactly like the objective's.
        # Without surrogate reuse the pre-optimisation behaviour is kept:
        # a full hyperparameter fit on every single call.
        optimize = refit_due if self.reuse_surrogate else True
        dims = x.shape[1]
        try:
            return self._cost_cache.update(
                x,
                log_cost,
                factory=self._surrogate_factory(dims, self.seed + 1),
                optimize=optimize,
                allow_extend=self.reuse_surrogate,
                noise_scale=cost_scale,
            )
        except GPFitError:
            return None
