"""The BO-based configuration tuner (the paper's primary contribution)."""

from repro.core.acquisition import (
    ACQUISITIONS,
    expected_improvement,
    expected_improvement_per_cost,
    get_acquisition,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.bo import BayesianProposer
from repro.core.fleet import (
    CheapestEligibleScheduler,
    EnvironmentPool,
    EnvironmentShard,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    SCHEDULERS,
    ShardDescriptor,
    ShardScheduler,
    make_scheduler,
    parse_shard_spec,
)
from repro.core.gp import (
    GaussianProcess,
    GPFitError,
    SparseGaussianProcess,
    SurrogateFactory,
)
from repro.core.importance import fit_surrogate, knob_importance, ranked_knobs
from repro.core.kernels import KERNELS, Kernel, Matern52, RBF, make_kernel
from repro.core.parallel import propose_async, propose_batch, run_parallel_round
from repro.core.session import (
    AsyncExecutor,
    EXECUTOR_MODES,
    Executor,
    JsonlTrialLog,
    ParallelExecutor,
    ProgressLogger,
    SerialExecutor,
    SessionCallback,
    TuningSession,
    executor_for,
)
from repro.core.stopping import (
    CostCapRule,
    FailureStreakRule,
    PlateauRule,
    StoppedStrategy,
    StoppingRule,
    TargetRule,
    WallClockCapRule,
)
from repro.core.strategy import SearchStrategy, TuningBudget, TuningResult
from repro.core.trial import Trial, TrialHistory
from repro.core.tuner import MLConfigTuner

__all__ = [
    "ACQUISITIONS",
    "BayesianProposer",
    "GPFitError",
    "GaussianProcess",
    "KERNELS",
    "Kernel",
    "MLConfigTuner",
    "Matern52",
    "RBF",
    "SearchStrategy",
    "SparseGaussianProcess",
    "SurrogateFactory",
    "Trial",
    "TrialHistory",
    "TuningBudget",
    "TuningResult",
    "expected_improvement",
    "fit_surrogate",
    "knob_importance",
    "ranked_knobs",
    "expected_improvement_per_cost",
    "get_acquisition",
    "make_kernel",
    "probability_of_improvement",
    "upper_confidence_bound",
    "CostCapRule",
    "FailureStreakRule",
    "PlateauRule",
    "StoppedStrategy",
    "StoppingRule",
    "TargetRule",
    "WallClockCapRule",
    "AsyncExecutor",
    "CheapestEligibleScheduler",
    "EXECUTOR_MODES",
    "EnvironmentPool",
    "EnvironmentShard",
    "Executor",
    "JsonlTrialLog",
    "LeastLoadedScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "ShardDescriptor",
    "ShardScheduler",
    "make_scheduler",
    "parse_shard_spec",
    "ParallelExecutor",
    "ProgressLogger",
    "SerialExecutor",
    "SessionCallback",
    "TuningSession",
    "executor_for",
    "propose_async",
    "propose_batch",
    "run_parallel_round",
]
