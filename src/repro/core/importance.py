"""Knob-importance analysis from the tuner's fitted surrogate.

A fitted ARD kernel assigns each unit-cube dimension a lengthscale: short
lengthscales mean the objective changes quickly along that dimension, i.e.
the knob *matters*.  Aggregating inverse lengthscales per knob (summing the
one-hot dimensions of categoricals) gives the per-workload importance
profile the paper-style analysis reports: `num_ps` dominates for
communication-bound models, `num_workers`/`batch` for compute-bound ones.

This is the light-weight cousin of fANOVA; it reuses the surrogate the
tuner already maintains, so it is free at the end of a tuning session.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.configspace import ConfigSpace
from repro.core.gp import GaussianProcess, GPFitError
from repro.core.kernels import make_kernel
from repro.core.trial import TrialHistory


def fit_surrogate(
    history: TrialHistory, space: ConfigSpace, seed: int = 0
) -> GaussianProcess:
    """Fit a fresh ARD surrogate to a tuning session's successful trials."""
    successes = history.successful()
    if len(successes) < 4:
        raise GPFitError(
            f"need at least 4 successful trials for importance analysis, "
            f"have {len(successes)}"
        )
    x = np.array([space.encode(t.config) for t in successes])
    y = np.array([t.objective for t in successes])
    return GaussianProcess(kernel=make_kernel("matern52", space.dims), seed=seed).fit(
        x, y
    )


def knob_importance(
    history: TrialHistory,
    space: ConfigSpace,
    surrogate: Optional[GaussianProcess] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Normalised importance per knob (sums to 1.0).

    Importance of a unit-cube dimension is its inverse lengthscale; a
    knob's importance is the sum over its dimensions (one for numeric and
    boolean knobs, one per choice for categoricals).
    """
    if surrogate is None:
        surrogate = fit_surrogate(history, space, seed=seed)
    inverse = 1.0 / np.asarray(surrogate.kernel.lengthscales, dtype=float)
    importance: Dict[str, float] = {}
    offset = 0
    for param in space.parameters:
        importance[param.name] = float(np.sum(inverse[offset:offset + param.dims]))
        offset += param.dims
    total = sum(importance.values())
    if total <= 0:
        raise GPFitError("degenerate lengthscales: importance undefined")
    return {name: value / total for name, value in importance.items()}


def ranked_knobs(
    history: TrialHistory, space: ConfigSpace, seed: int = 0
) -> List[Tuple[str, float]]:
    """Knobs sorted most-important-first as (name, importance) pairs."""
    importance = knob_importance(history, space, seed=seed)
    return sorted(importance.items(), key=lambda pair: -pair[1])
