"""Constant-liar proposals — the BO side of parallel and async probing.

When a cluster has spare machines, a tuner can probe several
configurations concurrently.  Naively asking the acquisition for its top-k
candidates returns k near-duplicates; the standard fix is the *constant
liar*: propose one point, pretend it returned the incumbent value (the
"lie"), refit, and propose the next — k times.  The lies force diversity
because the fantasised observation kills the acquisition around each
already-chosen point.

This module is the proposal half of the session/executor architecture in
:mod:`repro.core.session`.  The execution half lives there, in two
flavours that call into here:

- :class:`~repro.core.session.ParallelExecutor` requests a whole round via
  :meth:`SearchStrategy.propose_batch` → :func:`propose_batch`;
- :class:`~repro.core.session.AsyncExecutor` requests one point per freed
  worker via :meth:`SearchStrategy.propose_async` → :func:`propose_async`,
  fantasising over the configurations still in flight on the other
  workers.

Both paths share the same lie computation (:func:`_fantasy_lies`) and
fantasy construction: the fantasy lies about the objective *and* the probe
cost (a zero cost would poison a cost-aware proposer's cost surrogate),
and its :class:`~repro.mlsim.Measurement` carries the fantasy's own typed
configuration, so consumers reading ``measurement.config`` (cost models,
importance analysis, logs) see the knob values that were actually
fantasised.

Each fantasy is an *append* to the working history, which is exactly the
case the proposer's persistent surrogate fast-paths: the k proposals of a
constant-liar round extend one cached Cholesky factor in O(n^2) apiece
(:meth:`~repro.core.gp.GaussianProcess.extend`) instead of refitting k
surrogates from scratch, and because fantasies carry the ``"fantasy"``
fidelity they never advance the proposer's hyperparameter-refit cadence —
a round costs at most one refit, not k (see :mod:`repro.core.bo`).

:func:`run_parallel_round` predates the executor layer and is kept as a
convenience for driving a bare proposer; new code should run a
``TuningSession`` with a ``ParallelExecutor`` or ``AsyncExecutor`` instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace, to_training_config
from repro.core.bo import BayesianProposer
from repro.core.trial import TrialHistory
from repro.mlsim import Measurement

#: Probe-cost lie used when the history records no probe at all (or only
#: zero-cost ones): one simulated minute — any positive value keeps the
#: log-cost surrogate finite; real costs replace it after the first probe.
DEFAULT_COST_LIE_S = 60.0


def _fantasy_lies(history: TrialHistory, lie: str) -> Tuple[Optional[float], float]:
    """The (objective lie, probe-cost lie) pair for fantasy trials.

    With no successful trial the objective lie is ``None`` — the fantasy
    is then recorded as a *failed* probe.  Any constant (0.0 included)
    would fabricate an objective scale the history does not contain; for
    negated objectives like time-to-accuracy, 0.0 would be *better* than
    every feasible value, attracting the acquisition toward the in-flight
    points instead of away from them.

    The cost lie falls back in order: median cost over successful probes;
    then median over *all* recorded probes (failed probes still burned
    machine time, so an all-failed history is evidence about cost, not an
    excuse for a zero-cost fantasy); then :data:`DEFAULT_COST_LIE_S`.
    Every step requires a *positive* median — a zero-cost fantasy is the
    surrogate poisoning the lie exists to avoid.
    """
    successes = history.successful()
    if successes:
        values = [t.objective for t in successes]
        lie_value: Optional[float] = (
            max(values) if lie == "incumbent" else float(np.mean(values))
        )
    else:
        lie_value = None
    cost_lie = 0.0
    for pool in (successes, history.trials):
        costs = [t.measurement.probe_cost_s for t in pool]
        if costs:
            cost_lie = float(np.median(costs))
        if cost_lie > 0.0:
            return lie_value, cost_lie
    return lie_value, DEFAULT_COST_LIE_S


def _append_fantasy(
    extended: TrialHistory,
    config: ConfigDict,
    lie_value: Optional[float],
    cost_lie: float,
    shard: Optional[str] = None,
) -> None:
    """Record one fantasy trial for ``config`` on the working history.

    A ``None`` lie (no successful trial to lie about) records the fantasy
    as a failed probe: it still documents that machine time is committed
    at ``config`` without fabricating an objective value.

    ``shard`` stamps the fantasy with the shard the probe will occupy, so
    a shard-conditioned cost surrogate encodes the (shard-scaled) cost lie
    at that shard's own weight — the batch path's fantasies can then carry
    *different* shards within one round, which the single target-weight
    fallback (:meth:`BayesianProposer._row_weight`) cannot express.  The
    stamp lives only on the cloned working history, so per-shard cost
    itemisation never sees a fantasy.
    """
    extended.record(
        config,
        Measurement(
            config=to_training_config(config),
            ok=lie_value is not None,
            fidelity="fantasy",
            objective=lie_value,
            probe_cost_s=cost_lie,
        ),
        shard=shard,
    )


def propose_batch(
    proposer: BayesianProposer,
    history: TrialHistory,
    rng: np.random.Generator,
    batch_size: int,
    lie: str = "incumbent",
    shards: Optional[Sequence] = None,
) -> List[ConfigDict]:
    """Propose ``batch_size`` diverse configurations for parallel probing.

    ``lie`` selects the fantasy value: ``"incumbent"`` (the constant liar —
    conservative, strongly diversifying) or ``"mean"`` (the mean of
    observed objectives — milder).

    ``shards`` carries the round's shard assignments (one
    :class:`~repro.core.fleet.ShardDescriptor` or ``None`` per member, in
    batch order) when the round fans across a heterogeneous pool.  Each
    member's proposal then scores candidates at its own shard's
    ``cost_multiplier``, and its fantasy commits the probe-cost lie scaled
    to that shard's speed and stamped with the shard name — so the round
    is no longer shard-blind: a member bound for a 1.5x shard lies about
    1.5x the machine seconds, at the right weight in a shard-conditioned
    cost surrogate.

    One metadata-preserving working copy of the history is built per call
    (:meth:`TrialHistory.clone`) and fantasies are appended to it
    incrementally — O(n + k) bookkeeping per round rather than the O(k·n)
    full replay a per-fantasy rebuild would cost, and the replayed trials
    keep their round/wall-clock stamps.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if lie not in ("incumbent", "mean"):
        raise ValueError(f"lie must be 'incumbent' or 'mean', got {lie!r}")
    if shards is not None and len(shards) < batch_size:
        raise ValueError(
            f"shards has {len(shards)} entries for a batch of {batch_size}"
        )

    lie_value, cost_lie = _fantasy_lies(history, lie)
    extended = history.clone()
    batch: List[ConfigDict] = []
    for member in range(batch_size):
        shard = shards[member] if shards is not None else None
        if shard is None:
            config = proposer.propose(extended, rng)
            _append_fantasy(extended, config, lie_value, cost_lie)
        else:
            config = proposer.propose(
                extended, rng, shard_weight=shard.cost_multiplier
            )
            _append_fantasy(
                extended,
                config,
                lie_value,
                cost_lie * shard.cost_multiplier,
                shard=shard.name,
            )
        batch.append(config)
    return batch


def propose_async(
    proposer: BayesianProposer,
    history: TrialHistory,
    pending: Sequence[ConfigDict],
    rng: np.random.Generator,
    lie: str = "incumbent",
    cost_scale: float = 1.0,
    shard_weight: Optional[float] = None,
) -> ConfigDict:
    """Propose one configuration conditioned on in-flight probes.

    The asynchronous analogue of :func:`propose_batch`: the worker that
    just freed up needs exactly one point, but the other workers are still
    probing ``pending`` — fantasising those as constant-liar observations
    steers the acquisition away from points already being evaluated.  With
    no pending probes this is a plain sequential proposal.

    ``cost_scale`` scales the probe-cost lie to the target shard's probe
    speed when the session fans across a heterogeneous
    :class:`~repro.core.fleet.EnvironmentPool` (a fantasy on a 1.5x shard
    commits 1.5x the median machine seconds); ``shard_weight`` is
    forwarded to the proposer so a shard-conditioned cost surrogate can
    predict probe cost *at the target shard* (see
    :class:`~repro.core.bo.BayesianProposer`).  Deliberate
    approximation: every pending fantasy is priced at the *target*
    shard's scale, not at the shard each in-flight probe actually
    occupies (the strategy-facing ``pending`` contract carries
    configurations only) — with the shard cost feature on, the fantasy
    rows are encoded at the same target weight, so the surrogate's
    weight→cost relationship stays internally consistent.
    """
    if lie not in ("incumbent", "mean"):
        raise ValueError(f"lie must be 'incumbent' or 'mean', got {lie!r}")
    if cost_scale <= 0:
        raise ValueError(f"cost_scale must be positive, got {cost_scale!r}")
    if not pending:
        return proposer.propose(history, rng, shard_weight=shard_weight)
    lie_value, cost_lie = _fantasy_lies(history, lie)
    extended = history.clone()
    for config in pending:
        _append_fantasy(extended, config, lie_value, cost_lie * cost_scale)
    return proposer.propose(extended, rng, shard_weight=shard_weight)


def run_parallel_round(
    proposer: BayesianProposer,
    env,
    space: ConfigSpace,
    history: TrialHistory,
    rng: np.random.Generator,
    batch_size: int,
) -> List:
    """Propose a batch, probe every member, and record the real results.

    Returns the recorded trials.  Probes are simulated sequentially (the
    simulation has no wall-clock), but the *cost accounting* is what a
    parallel deployment would see: the caller can divide the round's probe
    cost by ``batch_size`` when modelling wall-clock speedup.
    """
    batch = propose_batch(proposer, history, rng, batch_size)
    trials = []
    for config in batch:
        measurement = env.measure(to_training_config(config))
        trials.append(history.record(config, measurement))
    return trials
