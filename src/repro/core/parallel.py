"""Constant-liar batch proposals — the BO side of parallel probing.

When a cluster has spare machines, a tuner can probe several
configurations concurrently.  Naively asking the acquisition for its top-k
candidates returns k near-duplicates; the standard fix is the *constant
liar*: propose one point, pretend it returned the incumbent value (the
"lie"), refit, and propose the next — k times.  The lies force diversity
because the fantasised observation kills the acquisition around each
already-chosen point.

This module is the proposal half of the session/executor architecture in
:mod:`repro.core.session`.  The execution half lives there: a
:class:`~repro.core.session.TuningSession` drives the budget/history loop
and a :class:`~repro.core.session.ParallelExecutor` obtains each round's
batch through :meth:`SearchStrategy.propose_batch` — which
:class:`~repro.core.tuner.MLConfigTuner` (and the CherryPick baseline)
implement by calling :func:`propose_batch` here — then probes every
member, charging machine cost for all of them but wall-clock only for the
round's slowest probe.

:func:`propose_batch` wraps any :class:`~repro.core.bo.BayesianProposer`
without modifying it, by feeding it a history extended with fantasy
trials.  :func:`run_parallel_round` predates the executor layer and is
kept as a convenience for driving a bare proposer; new code should run a
``TuningSession`` with a ``ParallelExecutor`` instead.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.bo import BayesianProposer
from repro.core.trial import TrialHistory
from repro.mlsim import Measurement, TrainingConfig


def _with_fantasy(
    history: TrialHistory,
    space: ConfigSpace,
    fantasies: List[tuple],
    cost_lie: float,
) -> TrialHistory:
    """A copy of ``history`` extended with (config, lied objective) pairs.

    Fantasy trials carry ``cost_lie`` as their probe cost: a zero cost
    would poison a cost-aware proposer's cost surrogate (log-cost outliers
    around every fantasised point), so the lie covers both axes.
    """
    extended = TrialHistory()
    for trial in history.trials:
        extended.record(trial.config, trial.measurement)
    for config, lie in fantasies:
        extended.record(
            config,
            Measurement(
                config=TrainingConfig(),
                ok=True,
                fidelity="fantasy",
                objective=lie,
                probe_cost_s=cost_lie,
            ),
        )
    return extended


def propose_batch(
    proposer: BayesianProposer,
    history: TrialHistory,
    rng: np.random.Generator,
    batch_size: int,
    lie: str = "incumbent",
) -> List[ConfigDict]:
    """Propose ``batch_size`` diverse configurations for parallel probing.

    ``lie`` selects the fantasy value: ``"incumbent"`` (the constant liar —
    conservative, strongly diversifying) or ``"mean"`` (the mean of
    observed objectives — milder).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if lie not in ("incumbent", "mean"):
        raise ValueError(f"lie must be 'incumbent' or 'mean', got {lie!r}")

    successes = history.successful()
    if successes:
        values = [t.objective for t in successes]
        lie_value = max(values) if lie == "incumbent" else float(np.mean(values))
        cost_lie = float(np.median([t.measurement.probe_cost_s for t in successes]))
    else:
        lie_value = 0.0
        cost_lie = 0.0

    batch: List[ConfigDict] = []
    fantasies: List[tuple] = []
    for _ in range(batch_size):
        extended = _with_fantasy(history, proposer.space, fantasies, cost_lie)
        config = proposer.propose(extended, rng)
        batch.append(config)
        fantasies.append((config, lie_value))
    return batch


def run_parallel_round(
    proposer: BayesianProposer,
    env,
    space: ConfigSpace,
    history: TrialHistory,
    rng: np.random.Generator,
    batch_size: int,
) -> List:
    """Propose a batch, probe every member, and record the real results.

    Returns the recorded trials.  Probes are simulated sequentially (the
    simulation has no wall-clock), but the *cost accounting* is what a
    parallel deployment would see: the caller can divide the round's probe
    cost by ``batch_size`` when modelling wall-clock speedup.
    """
    from repro.configspace import to_training_config

    batch = propose_batch(proposer, history, rng, batch_size)
    trials = []
    for config in batch:
        measurement = env.measure(to_training_config(config))
        trials.append(history.record(config, measurement))
    return trials
