"""Acquisition functions for Bayesian optimisation.

All acquisitions follow the maximisation convention: the candidate with the
highest score is probed next.  Inputs are the GP posterior ``(mu, sigma)``
at the candidates and the incumbent (best observed objective).

``expected_improvement_per_cost`` implements the tuner's cost-aware variant:
improvement per unit of predicted probe cost, which biases the search toward
configurations that are both promising and cheap to evaluate — the knob that
matters when probe cost varies by an order of magnitude across the space
(slow configurations take proportionally longer to measure).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np
from scipy import special

AcquisitionFn = Callable[..., np.ndarray]

_EPS = 1e-12

#: sqrt(2*pi) — the standard-normal pdf normaliser (matches scipy's
#: ``_norm_pdf_C``, so the closed forms below are bit-identical to
#: ``stats.norm.pdf``/``cdf`` without their per-call distribution-object
#: overhead, which dominated acquisition time on 512-candidate batches).
_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    return special.ndtr(z)


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-(z * z) / 2.0) / _SQRT_2PI


def _validate(mu: np.ndarray, sigma: np.ndarray) -> tuple:
    mu = np.asarray(mu, dtype=float).ravel()
    sigma = np.asarray(sigma, dtype=float).ravel()
    if mu.shape != sigma.shape:
        raise ValueError(f"mu shape {mu.shape} != sigma shape {sigma.shape}")
    if np.any(sigma < 0):
        raise ValueError("sigma must be non-negative")
    return mu, np.maximum(sigma, _EPS)


def expected_improvement(
    mu: np.ndarray, sigma: np.ndarray, incumbent: float, xi: float = 0.0
) -> np.ndarray:
    """EI over the incumbent, with optional exploration margin ``xi``."""
    mu, sigma = _validate(mu, sigma)
    gap = mu - incumbent - xi
    z = gap / sigma
    return gap * _norm_cdf(z) + sigma * _norm_pdf(z)


def probability_of_improvement(
    mu: np.ndarray, sigma: np.ndarray, incumbent: float, xi: float = 0.0
) -> np.ndarray:
    """Probability the candidate beats the incumbent by at least ``xi``."""
    mu, sigma = _validate(mu, sigma)
    return _norm_cdf((mu - incumbent - xi) / sigma)


def upper_confidence_bound(
    mu: np.ndarray, sigma: np.ndarray, incumbent: float = 0.0, beta: float = 2.0
) -> np.ndarray:
    """GP-UCB: ``mu + beta * sigma`` (incumbent ignored)."""
    if beta < 0:
        raise ValueError("beta must be non-negative")
    mu, sigma = _validate(mu, sigma)
    return mu + beta * sigma


def expected_improvement_per_cost(
    mu: np.ndarray,
    sigma: np.ndarray,
    incumbent: float,
    cost: np.ndarray,
    xi: float = 0.0,
) -> np.ndarray:
    """EI divided by predicted probe cost (cost-aware acquisition)."""
    cost = np.asarray(cost, dtype=float).ravel()
    if np.any(cost <= 0):
        raise ValueError("predicted costs must be positive")
    return expected_improvement(mu, sigma, incumbent, xi) / cost


ACQUISITIONS: Dict[str, AcquisitionFn] = {
    "ei": expected_improvement,
    "pi": probability_of_improvement,
    "ucb": upper_confidence_bound,
    "eipc": expected_improvement_per_cost,
}


def get_acquisition(name: str) -> AcquisitionFn:
    """Look up an acquisition by name."""
    try:
        return ACQUISITIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown acquisition {name!r}; choose from {sorted(ACQUISITIONS)}"
        ) from None
