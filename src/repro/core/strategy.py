"""The search-strategy interface shared by the tuner and all baselines.

Every tuner in this repository — the paper's BO tuner and each comparator —
implements the same contract: given a training environment, a configuration
space, and a budget, run probes and return a :class:`TuningResult`.  The
harness treats them uniformly, which is what makes the head-to-head
evaluation fair (identical spaces, identical budgets, identical noise).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace, to_training_config
from repro.core.trial import Trial, TrialHistory
from repro.mlsim import TrainingEnvironment


@dataclass(frozen=True)
class TuningBudget:
    """Caps on a tuning session.

    ``max_trials`` bounds the number of probes; ``max_cost_s`` bounds the
    cumulative *simulated* probe cost (machine time, all workers summed);
    ``max_wall_clock_s`` bounds the session's simulated wall-clock — the
    axis asynchronous execution actually optimises, since K workers can
    burn machine-seconds K times faster than the stopwatch advances.  Any
    cap may be None (unbounded), but at least one must be set.
    """

    max_trials: Optional[int] = 40
    max_cost_s: Optional[float] = None
    max_wall_clock_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.max_trials is None
            and self.max_cost_s is None
            and self.max_wall_clock_s is None
        ):
            raise ValueError("budget must bound trials, cost, or wall-clock")
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        if self.max_cost_s is not None and self.max_cost_s <= 0:
            raise ValueError("max_cost_s must be positive")
        if self.max_wall_clock_s is not None and self.max_wall_clock_s <= 0:
            raise ValueError("max_wall_clock_s must be positive")

    def exhausted(self, history: TrialHistory) -> bool:
        """True once another probe would exceed the budget."""
        if self.max_trials is not None and len(history) >= self.max_trials:
            return True
        if self.max_cost_s is not None and history.total_cost_s >= self.max_cost_s:
            return True
        if (
            self.max_wall_clock_s is not None
            and history.total_wall_clock_s >= self.max_wall_clock_s
        ):
            return True
        return False


@dataclass
class TuningResult:
    """Outcome of one tuning session."""

    strategy: str
    history: TrialHistory
    best_trial: Optional[Trial]
    environment: dict

    @property
    def best_config(self) -> Optional[ConfigDict]:
        """The best configuration found, or None if every probe failed."""
        return self.best_trial.config if self.best_trial else None

    @property
    def best_objective(self) -> Optional[float]:
        """The best measured objective, or None."""
        return self.best_trial.objective if self.best_trial else None

    @property
    def num_trials(self) -> int:
        return len(self.history)

    @property
    def total_cost_s(self) -> float:
        """Cumulative machine-seconds spent probing (all workers summed)."""
        return self.history.total_cost_s

    @property
    def total_wall_clock_s(self) -> float:
        """Session wall-clock seconds (max per round under parallel probing)."""
        return self.history.total_wall_clock_s

    @property
    def num_rounds(self) -> int:
        return self.history.num_rounds


class SearchStrategy(ABC):
    """Template for all tuners: propose → probe → record, until budget.

    Subclasses implement :meth:`propose`; the run loop, budget accounting,
    and trial recording live in :class:`~repro.core.session.TuningSession`
    and are shared so every strategy pays identical costs for identical
    behaviour.  :meth:`run` is a compatibility shim that executes a serial
    session; pass ``executor=ParallelExecutor(k)`` (or build a
    ``TuningSession`` directly) for K-way parallel probing.
    """

    name: str = "strategy"

    @abstractmethod
    def propose(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
    ) -> ConfigDict:
        """Return the next configuration to probe."""

    def propose_batch(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
        k: int,
        shards: Optional[Sequence] = None,
    ) -> List[ConfigDict]:
        """Hook: return up to ``k`` configurations to probe concurrently.

        The default makes ``k`` sequential :meth:`propose` calls against
        the same history — only safe when :meth:`propose` has no side
        effects that :meth:`measure`/:meth:`finished` depend on.  Cursor
        strategies override to stay within their structure (grid stops at
        exhaustion, successive halving stays within one rung) and
        model-based strategies override with a diversifying scheme — the
        BO tuner uses constant-liar fantasisation
        (:mod:`repro.core.parallel`).

        ``shards`` carries the round's shard assignments — one
        :class:`~repro.core.fleet.ShardDescriptor` (or ``None``) per
        member, in batch order — when the session fans across an
        :class:`~repro.core.fleet.EnvironmentPool`.  Cost-aware strategies
        use it to condition each member's proposal and constant-liar
        fantasy on the shard that member will actually occupy; the default
        ignores it.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return [self.propose(history, space, rng) for _ in range(k)]

    def propose_async(
        self,
        history: TrialHistory,
        pending: Sequence[ConfigDict],
        space: ConfigSpace,
        rng: np.random.Generator,
        shard=None,
    ) -> Optional[ConfigDict]:
        """Hook: one configuration for a worker that just freed up.

        ``pending`` holds the configurations still in flight on the other
        workers (launch order) so model-based strategies can condition on
        them — the BO tuner fantasises them away with the constant liar
        (:func:`repro.core.parallel.propose_async`), which keeps an
        asynchronous session from re-proposing a point already running.

        ``shard`` is the :class:`~repro.core.fleet.ShardDescriptor` of the
        environment shard the launch will run on when the session fans
        across an :class:`~repro.core.fleet.EnvironmentPool` (``None``
        otherwise).  Cost-aware strategies use it to lie about in-flight
        probe cost at the *target shard's* probe speed and to condition
        their cost surrogate on the shard — a probe that takes 60s on the
        baseline replica takes 90s on a 1.5x shard, and a fantasy that
        ignores that skews the cost model's view of committed machine
        time.

        Returning ``None`` declines to launch for now: the executor leaves
        the worker idle until the next in-flight probe completes and asks
        again.  Strategies whose structure gates on complete cohorts use
        this — successive halving refuses to cross a rung boundary while
        rung-mates are still in flight, since promotion must see the whole
        rung.

        The default ignores ``pending`` and ``shard`` and delegates to
        :meth:`propose`, which is correct for stateless samplers and for
        pure cursor strategies like grid: the cursor already moved past
        the pending points, so a plain ``propose`` never duplicates them.
        """
        return self.propose(history, space, rng)

    def observe(self, trial: Trial) -> None:
        """Hook: called after each probe (for stateful strategies)."""

    def finished(self, history: TrialHistory, space: ConfigSpace) -> bool:
        """Hook: strategies may stop early (e.g. grid exhausted)."""
        return False

    def reset(self) -> None:
        """Hook: clear per-session state (called at the start of every run).

        Stateful strategies must override this so a reused instance does
        not leak incumbents, proposers, or counters from a previous
        environment into the next session.
        """

    def snapshot_state(self) -> Optional[dict]:
        """Hook: a JSON-serialisable audit snapshot of per-session state.

        Written into checkpoint snapshots (:mod:`repro.core.checkpoint`)
        for offline inspection — incumbents, queue depths, surrogate-cache
        fingerprints.  It is **never used to restore**: resume rebuilds
        all strategy state bit-identically by replaying the recorded probe
        stream through the normal propose→observe loop, which is the only
        mechanism that reproduces RNG streams and surrogate caches at the
        bit level.  The default (``None``) means "rebuild from history" —
        stateless strategies need nothing else.
        """
        return None

    def run(
        self,
        env: Optional[TrainingEnvironment],
        space: ConfigSpace,
        budget: TuningBudget,
        seed: int = 0,
        executor: Optional["Executor"] = None,
        callbacks: Sequence["SessionCallback"] = (),
    ) -> TuningResult:
        """Execute a tuning session (thin shim over ``TuningSession``).

        With the default ``executor`` (serial) the produced history is
        trial-for-trial identical to the pre-session seed loop.  ``env``
        may be ``None`` when ``executor`` carries an
        :class:`~repro.core.fleet.EnvironmentPool`.
        """
        from repro.core.session import TuningSession

        session = TuningSession(self, executor=executor, callbacks=callbacks)
        return session.run(env, space, budget, seed=seed)

    def measure(self, env: TrainingEnvironment, config: ConfigDict):
        """Probe one configuration (hook for early-termination tuners)."""
        return env.measure(to_training_config(config))
