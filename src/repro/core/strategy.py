"""The search-strategy interface shared by the tuner and all baselines.

Every tuner in this repository — the paper's BO tuner and each comparator —
implements the same contract: given a training environment, a configuration
space, and a budget, run probes and return a :class:`TuningResult`.  The
harness treats them uniformly, which is what makes the head-to-head
evaluation fair (identical spaces, identical budgets, identical noise).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace, to_training_config
from repro.core.trial import Trial, TrialHistory
from repro.mlsim import TrainingEnvironment


@dataclass(frozen=True)
class TuningBudget:
    """Caps on a tuning session.

    ``max_trials`` bounds the number of probes; ``max_cost_s`` bounds the
    cumulative *simulated* probe cost (machine time).  Either may be None
    (unbounded), but not both.
    """

    max_trials: Optional[int] = 40
    max_cost_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_trials is None and self.max_cost_s is None:
            raise ValueError("budget must bound trials or cost")
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        if self.max_cost_s is not None and self.max_cost_s <= 0:
            raise ValueError("max_cost_s must be positive")

    def exhausted(self, history: TrialHistory) -> bool:
        """True once another probe would exceed the budget."""
        if self.max_trials is not None and len(history) >= self.max_trials:
            return True
        if self.max_cost_s is not None and history.total_cost_s >= self.max_cost_s:
            return True
        return False


@dataclass
class TuningResult:
    """Outcome of one tuning session."""

    strategy: str
    history: TrialHistory
    best_trial: Optional[Trial]
    environment: dict

    @property
    def best_config(self) -> Optional[ConfigDict]:
        """The best configuration found, or None if every probe failed."""
        return self.best_trial.config if self.best_trial else None

    @property
    def best_objective(self) -> Optional[float]:
        """The best measured objective, or None."""
        return self.best_trial.objective if self.best_trial else None

    @property
    def num_trials(self) -> int:
        return len(self.history)

    @property
    def total_cost_s(self) -> float:
        return self.history.total_cost_s


class SearchStrategy(ABC):
    """Template for all tuners: propose → probe → record, until budget.

    Subclasses implement :meth:`propose`; the run loop, budget accounting,
    and trial recording are shared so every strategy pays identical costs
    for identical behaviour.
    """

    name: str = "strategy"

    @abstractmethod
    def propose(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
    ) -> ConfigDict:
        """Return the next configuration to probe."""

    def observe(self, trial: Trial) -> None:
        """Hook: called after each probe (for stateful strategies)."""

    def finished(self, history: TrialHistory, space: ConfigSpace) -> bool:
        """Hook: strategies may stop early (e.g. grid exhausted)."""
        return False

    def run(
        self,
        env: TrainingEnvironment,
        space: ConfigSpace,
        budget: TuningBudget,
        seed: int = 0,
    ) -> TuningResult:
        """Execute the tuning session."""
        rng = np.random.default_rng(seed)
        history = TrialHistory()
        while not budget.exhausted(history) and not self.finished(history, space):
            config = self.propose(history, space, rng)
            measurement = self.measure(env, config)
            trial = history.record(config, measurement)
            self.observe(trial)
        return TuningResult(
            strategy=self.name,
            history=history,
            best_trial=history.best(),
            environment=env.describe(),
        )

    def measure(self, env: TrainingEnvironment, config: ConfigDict):
        """Probe one configuration (hook for early-termination tuners)."""
        return env.measure(to_training_config(config))
