"""The paper's contribution: the BO-based distributed-ML configuration tuner.

:class:`MLConfigTuner` wires together the pieces this package provides:

- a Gaussian-process surrogate over the encoded configuration space
  (:mod:`repro.core.gp`, :mod:`repro.core.kernels`);
- a cost-aware acquisition function (:mod:`repro.core.acquisition`),
  defaulting to expected improvement per predicted probe second;
- a Latin-hypercube initial design and acquisition hill-climbing
  (:mod:`repro.core.bo`);
- **early termination** of clearly-bad probes: every candidate first runs a
  short probe; only candidates whose noisy short-probe objective is within
  a margin of the incumbent are promoted to the full measurement.  Rejected
  candidates cost a fraction of a full probe, which is where most of the
  search-cost savings over CherryPick-style tuning come from (ablation A2).

Typical use::

    from repro import MLConfigTuner, TuningBudget
    from repro.cluster import homogeneous
    from repro.configspace import ml_config_space
    from repro.mlsim import TrainingEnvironment
    from repro.workloads import get_workload

    env = TrainingEnvironment(get_workload("resnet50-imagenet"), homogeneous(16))
    space = ml_config_space(16)
    result = MLConfigTuner().run(env, space, TuningBudget(max_trials=40))
    print(result.best_config, result.best_objective)
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace, to_training_config
from repro.core.bo import BayesianProposer
from repro.core.parallel import propose_async as constant_liar_async
from repro.core.parallel import propose_batch as constant_liar_batch
from repro.core.strategy import SearchStrategy
from repro.core.trial import TrialHistory
from repro.mlsim import Measurement, TrainingEnvironment


class MLConfigTuner(SearchStrategy):
    """BO tuner with cost-aware acquisition and early termination.

    Parameters
    ----------
    acquisition:
        Acquisition function: ``"eipc"`` (default, cost-aware), ``"ei"``,
        ``"pi"``, or ``"ucb"``.
    n_initial:
        Latin-hypercube initial design size.
    early_termination:
        Enable the short-probe gate described above.
    short_probe_fraction:
        Fraction of the full probe length used by the gate.
    rejection_margin:
        A short probe is rejected when its objective falls more than
        ``rejection_margin * |incumbent|`` below the incumbent.  The margin
        absorbs short-probe noise; 0.25 keeps the false-rejection rate
        negligible at the default noise level.
    batch_lie:
        Fantasy value used when a parallel executor requests a batch:
        ``"incumbent"`` (constant liar, strongly diversifying) or
        ``"mean"`` (milder).  See :mod:`repro.core.parallel`.
    shard_cost_feature:
        On a heterogeneous :class:`~repro.core.fleet.EnvironmentPool`,
        condition the cost surrogate on the shard each probe ran on and
        predict probe cost at the target shard (see
        :class:`~repro.core.bo.BayesianProposer`).  Off by default.
    fit_workers:
        Fan each GP hyperparameter refit's multi-start restarts across
        ``fit_workers`` processes (bit-identical results to serial; see
        :class:`~repro.core.gp.GaussianProcess`).  Surfaced on the CLI as
        ``--fit-workers``.
    vectorized_candidates:
        Keep proposal candidates in encoded form end-to-end (the fast
        default); ``False`` restores the scalar per-config candidate loop
        — the benchmark baseline (see
        :class:`~repro.core.bo.BayesianProposer`).
    sparse_threshold / max_inducing:
        Surrogate tier policy for long sessions: past ``sparse_threshold``
        trials the GP surrogates switch to the inducing-point sparse tier
        capped at ``max_inducing`` points, keeping proposal latency flat
        as the history grows (see
        :class:`~repro.core.gp.SurrogateFactory`).  ``sparse_threshold=None``
        keeps the exact tier at every size.  Surfaced on the CLI as
        ``--sparse-threshold`` / ``--max-inducing``.
    prior_mean:
        Optional fixed predictor of the normalised objective surface (a
        :class:`~repro.core.transfer.TransferPrior`): the objective
        surrogate then starts from the prior instead of from flat — the
        repository warm-start path the :class:`~repro.core.service.TuningService`
        installs before a tenant session starts.  Must be set before the
        first proposal.
    n_candidates / kernel / xi / beta / seed:
        Forwarded to :class:`~repro.core.bo.BayesianProposer`.
    """

    def __init__(
        self,
        acquisition: str = "eipc",
        n_initial: int = 8,
        early_termination: bool = True,
        short_probe_fraction: float = 0.25,
        rejection_margin: float = 0.25,
        batch_lie: str = "incumbent",
        shard_cost_feature: bool = False,
        fit_workers: int = 1,
        vectorized_candidates: bool = True,
        sparse_threshold: Optional[int] = 512,
        max_inducing: int = 256,
        prior_mean=None,
        n_candidates: int = 512,
        kernel: str = "matern52",
        xi: float = 0.01,
        beta: float = 2.0,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 < short_probe_fraction < 1.0:
            raise ValueError("short_probe_fraction must be in (0, 1)")
        if rejection_margin < 0:
            raise ValueError("rejection_margin must be non-negative")
        if batch_lie not in ("incumbent", "mean"):
            raise ValueError("batch_lie must be 'incumbent' or 'mean'")
        if fit_workers < 1:
            raise ValueError("fit_workers must be >= 1")
        self.acquisition = acquisition
        self.n_initial = n_initial
        self.early_termination = early_termination
        self.short_probe_fraction = short_probe_fraction
        self.rejection_margin = rejection_margin
        self.batch_lie = batch_lie
        self.shard_cost_feature = shard_cost_feature
        self.fit_workers = fit_workers
        self.vectorized_candidates = vectorized_candidates
        self.sparse_threshold = sparse_threshold
        self.max_inducing = max_inducing
        self.prior_mean = prior_mean
        self.n_candidates = n_candidates
        self.kernel = kernel
        self.xi = xi
        self.beta = beta
        self.seed = seed
        self.name = name or f"mlconfig-bo[{acquisition}]"
        self._proposer: Optional[BayesianProposer] = None
        self._incumbent: Optional[float] = None
        self._shard_weights: dict = {}
        self._reprobe_queue: list = []
        self._refresh_remaining = 0
        self._pending_retune: Optional[tuple] = None
        self.probes_terminated_early = 0

    # -- SearchStrategy hooks ------------------------------------------------

    def reset(self) -> None:
        """Clear per-session state so a reused tuner instance starts fresh.

        Without this, ``_incumbent`` (and with it the early-termination
        gate), the fitted proposer, and the early-termination counter leak
        from one ``run()`` into the next — a stale incumbent from a fast
        environment would reject every short probe in a slower one.
        """
        self._proposer = None
        self._incumbent = None
        self._shard_weights = {}
        self._reprobe_queue = []
        self._refresh_remaining = 0
        self._pending_retune = None
        self.probes_terminated_early = 0

    def snapshot_state(self) -> Optional[dict]:
        """Audit snapshot of the tuner's per-session state (not a restore
        path — resume replays; see :meth:`SearchStrategy.snapshot_state`).

        Includes a surrogate-cache fingerprint (training-set size and
        fitted kernel hypers) so a checkpoint inspection can see how far
        the GP had been trained when the snapshot was taken.
        """
        state: dict = {
            "incumbent": self._incumbent,
            "probes_terminated_early": self.probes_terminated_early,
            "reprobe_queue": [dict(c) for c in self._reprobe_queue],
            "refresh_remaining": self._refresh_remaining,
            "shard_weights": dict(self._shard_weights),
        }
        proposer = self._proposer
        if proposer is not None:
            cache = getattr(proposer, "_objective_cache", None)
            fingerprint: dict = {}
            if cache is not None:
                y = getattr(cache, "_y", None)
                if y is not None:
                    fingerprint["n"] = int(y.shape[0])
                hypers = getattr(cache, "hypers", None)
                if hypers is not None:
                    fingerprint["hypers"] = [float(h) for h in hypers]
            state["surrogate"] = fingerprint
        return state

    def apply_retuning(
        self,
        before_index: int,
        discount: Optional[float] = None,
        reprobe: Optional[ConfigDict] = None,
        refresh_initial: int = 0,
    ) -> None:
        """React to a detected change-point: forget what no longer holds.

        Trials before ``before_index`` are marked stale in the proposer
        (evicted when ``discount`` is None, noise-inflated by
        ``1/discount`` otherwise) and its surrogate caches are reset.  The
        early-termination incumbent is dropped — a pre-drift incumbent
        would reject every short probe in a degraded environment.
        ``reprobe`` (typically the incumbent configuration) is queued to
        be proposed next, re-measuring it under the new regime;
        ``refresh_initial`` queues that many fresh random exploration
        points behind it.  Safe to call before the first proposal: the
        marking is stashed and applied when the proposer is built.
        """
        if refresh_initial < 0:
            raise ValueError("refresh_initial must be non-negative")
        if self._proposer is not None:
            self._proposer.apply_retuning(before_index, discount=discount)
        else:
            self._pending_retune = (before_index, discount)
        self._incumbent = None
        if reprobe is not None:
            self._reprobe_queue.append(dict(reprobe))
        self._refresh_remaining += refresh_initial

    def _queued_point(
        self, space: ConfigSpace, rng: np.random.Generator
    ) -> Optional[ConfigDict]:
        """The next queued re-tuning probe, or None when the queue is dry.

        Consumes no RNG when nothing is queued, so sessions that never
        detect a change-point replay bit-identically.
        """
        if self._reprobe_queue:
            return self._reprobe_queue.pop(0)
        if self._refresh_remaining > 0:
            self._refresh_remaining -= 1
            return space.sample(rng)
        return None

    def _ensure_proposer(self, space: ConfigSpace) -> BayesianProposer:
        if self._proposer is None or self._proposer.space is not space:
            self._proposer = BayesianProposer(
                space,
                acquisition=self.acquisition,
                n_initial=self.n_initial,
                n_candidates=self.n_candidates,
                kernel=self.kernel,
                xi=self.xi,
                beta=self.beta,
                shard_cost_feature=self.shard_cost_feature,
                fit_workers=self.fit_workers,
                vectorized_candidates=self.vectorized_candidates,
                sparse_threshold=self.sparse_threshold,
                max_inducing=self.max_inducing,
                prior_mean=self.prior_mean,
                seed=self.seed,
            )
            if self._pending_retune is not None:
                before_index, discount = self._pending_retune
                self._proposer.apply_retuning(before_index, discount=discount)
                self._pending_retune = None
        return self._proposer

    def propose(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
    ) -> ConfigDict:
        queued = self._queued_point(space, rng)
        if queued is not None:
            return queued
        return self._ensure_proposer(space).propose(history, rng)

    def propose_batch(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
        k: int,
        shards=None,
    ) -> list:
        """Constant-liar batch: k diverse points for parallel probing.

        With ``shards`` (the round's shard assignments, one descriptor per
        member), each member's proposal and its fantasy condition on that
        member's own shard: the probe-cost lie scales by the shard's
        ``cost_multiplier``, the fantasy carries the shard name so a
        shard-conditioned cost surrogate encodes it at the right weight,
        and the member's candidates are scored at the target shard — the
        synchronous analogue of what :meth:`propose_async` already does.
        """
        proposer = self._ensure_proposer(space)
        if shards is not None:
            for shard in shards:
                if shard is not None:
                    self._shard_weights[shard.name] = shard.cost_multiplier
            proposer.set_shard_weights(self._shard_weights)
        queued: list = []
        while len(queued) < k:
            point = self._queued_point(space, rng)
            if point is None:
                break
            queued.append(point)
        if queued:
            if len(queued) == k:
                return queued
            rest = constant_liar_batch(
                proposer,
                history,
                rng,
                k - len(queued),
                lie=self.batch_lie,
                shards=shards[len(queued) :] if shards is not None else None,
            )
            return queued + rest
        return constant_liar_batch(
            proposer, history, rng, k, lie=self.batch_lie, shards=shards
        )

    def propose_async(
        self,
        history: TrialHistory,
        pending,
        space: ConfigSpace,
        rng: np.random.Generator,
        shard=None,
    ) -> ConfigDict:
        """One point for a freed worker, constant-lying over in-flight probes.

        When the launch targets a fleet shard, the constant-liar fantasies
        lie with the probe cost scaled to that shard's speed, and the
        shard's cost multiplier is registered with the proposer so the
        (optional) shard-conditioned cost surrogate both encodes past
        probes' shards and predicts at the target shard.
        """
        proposer = self._ensure_proposer(space)
        queued = self._queued_point(space, rng)
        if queued is not None:
            return queued
        cost_scale = 1.0
        shard_weight = None
        if shard is not None:
            self._shard_weights[shard.name] = shard.cost_multiplier
            proposer.set_shard_weights(self._shard_weights)
            cost_scale = shard.cost_multiplier
            shard_weight = shard.cost_multiplier
        return constant_liar_async(
            proposer,
            history,
            pending,
            rng,
            lie=self.batch_lie,
            cost_scale=cost_scale,
            shard_weight=shard_weight,
        )

    def observe(self, trial) -> None:
        if trial.ok and (self._incumbent is None or trial.objective > self._incumbent):
            self._incumbent = trial.objective

    def measure(self, env: TrainingEnvironment, config: ConfigDict) -> Measurement:
        """Probe with the early-termination gate when enabled."""
        training_config = to_training_config(config)
        if not self.early_termination or self._incumbent is None:
            return env.measure(training_config)

        short_iters = max(2, int(round(env.probe_iterations * self.short_probe_fraction)))
        short = env.measure(training_config, probe_iterations=short_iters)
        if not short.ok:
            return short
        threshold = self._incumbent - self.rejection_margin * abs(self._incumbent)
        if short.objective < threshold:
            # Clearly dominated: kill the probe, keep the cheap estimate.
            self.probes_terminated_early += 1
            return short

        # Promising: continue the same job to the full probe length.  The
        # continuation is charged without a second startup, and the final
        # measurement's cost covers the whole (short + remaining) run.
        remaining = max(2, env.probe_iterations - short_iters)
        full = env.measure(
            training_config, probe_iterations=remaining, charge_startup=False
        )
        if not full.ok:
            return full
        return dc_replace(full, probe_cost_s=full.probe_cost_s + short.probe_cost_s)
