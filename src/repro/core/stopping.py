"""Composable stopping rules for tuning sessions.

A real tuning service rarely runs to a fixed trial count: it stops when
progress stalls, when the expected improvement no longer justifies probe
cost, or when a good-enough configuration is in hand.  These rules plug
into any :class:`~repro.core.strategy.SearchStrategy` via
:class:`StoppedStrategy`, which wraps a strategy and ends the session when
any rule fires — without touching the strategy's own logic.

Example
-------
>>> from repro.core import MLConfigTuner
>>> from repro.core.stopping import PlateauRule, StoppedStrategy
>>> tuner = StoppedStrategy(MLConfigTuner(), [PlateauRule(patience=8)])
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.strategy import SearchStrategy
from repro.core.trial import TrialHistory


class StoppingRule(ABC):
    """A predicate over the tuning history."""

    @abstractmethod
    def should_stop(self, history: TrialHistory) -> bool:
        """True once the session should end."""

    def reason(self) -> str:
        """Human-readable description (for session logs)."""
        return type(self).__name__


class PlateauRule(StoppingRule):
    """Stop when the best objective has not improved for ``patience`` trials.

    ``min_relative_gain`` filters noise: an improvement below this fraction
    of the incumbent does not reset the counter.
    """

    def __init__(self, patience: int = 10, min_relative_gain: float = 0.01) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_relative_gain < 0:
            raise ValueError("min_relative_gain must be non-negative")
        self.patience = patience
        self.min_relative_gain = min_relative_gain

    def should_stop(self, history: TrialHistory) -> bool:
        series = history.best_so_far_series()
        if len(series) <= self.patience:
            return False
        current = series[-1]
        earlier = series[-1 - self.patience]
        if current is None:
            return False
        if earlier is None:
            return False
        threshold = abs(earlier) * self.min_relative_gain
        return (current - earlier) <= threshold

    def reason(self) -> str:
        return f"no improvement for {self.patience} trials"


class TargetRule(StoppingRule):
    """Stop once the best objective reaches an absolute target."""

    def __init__(self, target: float) -> None:
        self.target = target

    def should_stop(self, history: TrialHistory) -> bool:
        best = history.best_objective()
        return best is not None and best >= self.target

    def reason(self) -> str:
        return f"objective target {self.target} reached"


class CostCapRule(StoppingRule):
    """Stop once cumulative probe cost exceeds a cap (simulated seconds).

    Redundant with ``TuningBudget.max_cost_s`` when used alone; provided so
    cost caps compose with other rules in one place.
    """

    def __init__(self, max_cost_s: float) -> None:
        if max_cost_s <= 0:
            raise ValueError("max_cost_s must be positive")
        self.max_cost_s = max_cost_s

    def should_stop(self, history: TrialHistory) -> bool:
        return history.total_cost_s >= self.max_cost_s

    def reason(self) -> str:
        return f"probe cost cap {self.max_cost_s:.0f}s reached"


class WallClockCapRule(StoppingRule):
    """Stop once session wall-clock exceeds a cap (simulated seconds).

    The stopwatch axis: under parallel or asynchronous execution this is
    the cap a person waiting on the tuning session would set, as opposed
    to :class:`CostCapRule`'s cluster bill.  Redundant with
    ``TuningBudget.max_wall_clock_s`` when used alone; provided so
    wall-clock caps compose with other rules in one place.
    """

    def __init__(self, max_wall_clock_s: float) -> None:
        if max_wall_clock_s <= 0:
            raise ValueError("max_wall_clock_s must be positive")
        self.max_wall_clock_s = max_wall_clock_s

    def should_stop(self, history: TrialHistory) -> bool:
        return history.total_wall_clock_s >= self.max_wall_clock_s

    def reason(self) -> str:
        return f"wall-clock cap {self.max_wall_clock_s:.0f}s reached"


class FailureStreakRule(StoppingRule):
    """Stop after ``streak`` consecutive crashed probes.

    A long failure streak usually means the environment itself is broken
    (quota exhausted, image unpullable) — burning budget helps nobody.
    """

    def __init__(self, streak: int = 8) -> None:
        if streak < 1:
            raise ValueError("streak must be >= 1")
        self.streak = streak

    def should_stop(self, history: TrialHistory) -> bool:
        trials = history.trials
        if len(trials) < self.streak:
            return False
        return all(not t.ok for t in trials[-self.streak:])

    def reason(self) -> str:
        return f"{self.streak} consecutive failed probes"


class StoppedStrategy(SearchStrategy):
    """Wrap a strategy with stopping rules (OR-combined).

    Delegates proposals/measurement/observation to the inner strategy and
    additionally ends the session when any rule fires.  The firing rule is
    recorded in :attr:`stop_reason`.
    """

    def __init__(self, inner: SearchStrategy, rules: Sequence[StoppingRule]) -> None:
        if not rules:
            raise ValueError("need at least one stopping rule")
        self.inner = inner
        self.rules = list(rules)
        self.name = f"{inner.name}+stop"
        self.stop_reason: Optional[str] = None

    def reset(self) -> None:
        self.inner.reset()
        self.stop_reason = None

    def snapshot_state(self) -> Optional[dict]:
        inner_state = self.inner.snapshot_state()
        if inner_state is None and self.stop_reason is None:
            return None
        return {"inner": inner_state, "stop_reason": self.stop_reason}

    def propose(
        self, history: TrialHistory, space: ConfigSpace, rng: np.random.Generator
    ) -> ConfigDict:
        return self.inner.propose(history, space, rng)

    def propose_batch(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
        k: int,
        shards=None,
    ) -> List[ConfigDict]:
        return self.inner.propose_batch(history, space, rng, k, shards=shards)

    def propose_async(
        self,
        history: TrialHistory,
        pending: Sequence[ConfigDict],
        space: ConfigSpace,
        rng: np.random.Generator,
        shard=None,
    ) -> Optional[ConfigDict]:
        return self.inner.propose_async(history, pending, space, rng, shard=shard)

    def observe(self, trial) -> None:
        self.inner.observe(trial)

    def measure(self, env, config):
        return self.inner.measure(env, config)

    def finished(self, history: TrialHistory, space: ConfigSpace) -> bool:
        if self.inner.finished(history, space):
            self.stop_reason = f"inner strategy {self.inner.name} finished"
            return True
        for rule in self.rules:
            if rule.should_stop(history):
                self.stop_reason = rule.reason()
                return True
        return False
