"""Tuning-as-a-service: N tenant sessions multiplexed over one fleet.

PRs 1–6 made one :class:`~repro.core.session.TuningSession` fast across a
sharded fleet; this module inverts the architecture for the "millions of
users" direction — many concurrent tenant sessions sharing fixed fleet
capacity, each warm-started from prior tunings of similar workloads:

- :class:`ShardTemplate` describes the fleet's *shape* (shard names,
  capacities, cost multipliers, and how to build a tenant's environment
  on each shard); the service owns the aggregate slot count.
- :class:`TenantSpec` is one tenant's request: a strategy factory, a
  budget, a seed, a guaranteed slot count (``slots``), an optional
  elastic ceiling (``max_slots``), a fair-share ``weight``, and the
  workload being tuned (the warm-start key).
- :class:`TuningService` performs **admission control** (a tenant
  demanding more slots than the fleet has — or arriving past
  ``max_tenants`` — is rejected with :class:`AdmissionError`; aggregate
  oversubscription queues instead), schedules admitted tenants by
  **virtual time** (always stepping the tenant whose session clock is
  furthest behind, so simulated wall-clocks interleave exactly as N real
  concurrent sessions would), and enforces capacity through **leases**
  (:meth:`~repro.core.fleet.EnvironmentPool.set_lease`): each scheduling
  round recomputes a weighted fair-share allocation — every active
  tenant's guarantee first, then spare slots handed work-conservingly to
  the most weight-underserved tenants, never past a tenant's ceiling —
  and caps each tenant's pool at its share.
- Completed sessions are recorded into a persistent
  :class:`~repro.core.transfer.HistoryRepository`; a new tenant's
  workload fingerprint is matched to the nearest prior workload and a
  :class:`~repro.core.transfer.TransferPrior` is installed as the
  strategy's surrogate prior mean
  (:class:`~repro.core.gp.PriorMeanGP`), so tenant N+1's posterior starts
  from the repository instead of from flat.

Isolation and determinism
-------------------------
Each tenant gets a *private* :class:`~repro.core.fleet.EnvironmentPool`:
its own environment instances (seeded from the tenant seed), its own
scheduler instance, and RNG streams derived from its own seed — the fleet
templates are replicated per tenant, modelling each tenant's probes
running in its own reserved slice of the shared fleet.  Physical slot
*contention* is modelled purely through the lease widths (whose sum never
exceeds the fleet's capacity), not through shard-level mutual exclusion
between tenants — two tenants may hold leases covering the same template
concurrently, which is exact for capacity accounting and wall-clock
simulation but deliberately does not model per-slot queueing noise.  The
payoff is hard isolation: one tenant's cost-cap cancellation, failure, or
scheduling order cannot perturb another tenant's RNG streams or
accounting, and a tenant whose width is *pinned* (``max_slots`` equal to
``slots``) produces a bit-identical trajectory whether it runs alongside
other tenants or alone (:meth:`TuningService.run_standalone` — the
regression anchor ``tests/test_service.py`` pins).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.configspace import ConfigSpace
from repro.core.checkpoint import CheckpointConfig
from repro.core.fleet import (
    EnvironmentPool,
    EnvironmentShard,
    RoundRobinScheduler,
    ShardScheduler,
)
from repro.core.session import (
    AsyncExecutor,
    SerialExecutor,
    SessionCallback,
    TuningSession,
)
from repro.core.strategy import SearchStrategy, TuningBudget, TuningResult
from repro.core.transfer import (
    HistoryRepository,
    build_prior,
    workload_fingerprint,
)


class AdmissionError(RuntimeError):
    """A tenant the service refuses to admit (over-capacity or invalid)."""


@dataclass(frozen=True)
class ShardTemplate:
    """One shard of the fleet's shape, replicated per tenant.

    ``env_factory(spec, shard_index)`` builds the tenant's environment for
    this shard; for replayable service runs it must be a pure function of
    the tenant spec and the shard index (derive environment seeds from
    ``spec.seed`` and ``shard_index``, never from global state).
    """

    name: str
    env_factory: Callable[["TenantSpec", int], object]
    capacity: int = 1
    cost_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard template name must be non-empty")
        if self.capacity < 1:
            raise ValueError(f"shard template {self.name!r}: capacity must be >= 1")
        if self.cost_multiplier <= 0:
            raise ValueError(
                f"shard template {self.name!r}: cost_multiplier must be positive"
            )


def training_shard_templates(
    nodes: int = 16,
    cost_multipliers: Sequence[float] = (1.0,),
    capacities: Optional[Sequence[int]] = None,
    node_type: str = "std-cpu",
    transient_failure_rate: float = 0.0,
    drift=None,
) -> List[ShardTemplate]:
    """Standard fleet templates over simulated training clusters.

    One template per entry of ``cost_multipliers``; each builds a
    :class:`~repro.mlsim.TrainingEnvironment` for the tenant's *own*
    workload (``spec.workload`` is required) on a homogeneous
    ``nodes``-node cluster, seeded from the tenant seed and shard index.
    ``transient_failure_rate`` and ``drift`` (a
    :class:`~repro.mlsim.DriftSchedule`) are forwarded to every built
    environment; the defaults keep the stationary, failure-free fleet.
    """
    from repro.cluster import homogeneous
    from repro.mlsim import TrainingEnvironment

    if capacities is None:
        capacities = [1] * len(cost_multipliers)
    if len(capacities) != len(cost_multipliers):
        raise ValueError("capacities and cost_multipliers must have equal length")

    def factory(spec: "TenantSpec", shard_index: int):
        if spec.workload is None:
            raise ValueError(
                f"tenant {spec.name!r} has no workload; training_shard_templates "
                "builds environments from spec.workload"
            )
        return TrainingEnvironment(
            spec.workload,
            homogeneous(nodes, node_type),
            seed=spec.seed + shard_index,
            transient_failure_rate=transient_failure_rate,
            drift=drift,
        )

    return [
        ShardTemplate(
            name=f"shard{i}",
            env_factory=factory,
            capacity=int(capacity),
            cost_multiplier=float(multiplier),
        )
        for i, (multiplier, capacity) in enumerate(zip(cost_multipliers, capacities))
    ]


EXECUTOR_MODES = ("async", "serial")


@dataclass
class TenantSpec:
    """One tenant's tuning request.

    ``slots`` is the guaranteed width (admission reserves it);
    ``max_slots`` the elastic ceiling idle-slot reclaim may grow the
    tenant to (``None`` pins the width at ``slots`` — the configuration
    whose trajectory is bit-identical to running alone).  ``weight``
    biases how spare slots are shared among elastic tenants.
    """

    name: str
    strategy_factory: Callable[[], SearchStrategy]
    budget: TuningBudget
    seed: int = 0
    weight: float = 1.0
    slots: int = 1
    max_slots: Optional[int] = None
    workload: Optional[object] = None
    executor_mode: str = "async"
    callbacks: Sequence[SessionCallback] = ()
    #: Zero-argument callable returning a fresh per-session callback —
    #: typically a :class:`~repro.core.detect.ChangePointDetector` — so
    #: each (re)built session gets its own detector state rather than
    #: sharing one stateful instance across tenants.
    detector_factory: Optional[Callable[[], SessionCallback]] = None

    @property
    def ceiling(self) -> int:
        return self.slots if self.max_slots is None else self.max_slots


class TenantHandle:
    """The service's live record of one submitted tenant.

    ``state`` walks ``queued`` → ``active`` → ``done`` (or ``failed``).
    ``started_at`` / ``finished_at`` are service virtual times (seconds on
    the shared simulated clock); ``lease`` is the tenant's current
    fair-share slot allocation; ``warm`` / ``mapped_from`` describe the
    repository warm start, if one was installed.
    """

    def __init__(self, spec: TenantSpec, order: int) -> None:
        self.spec = spec
        self.order = order
        self.state = "queued"
        self.session: Optional[TuningSession] = None
        self.strategy: Optional[SearchStrategy] = None
        self.pool: Optional[EnvironmentPool] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[TuningResult] = None
        self.error: Optional[BaseException] = None
        self.lease: int = 0
        self.warm = False
        self.mapped_from: Optional[str] = None
        #: Times this tenant was restarted from its checkpoint.
        self.recoveries: int = 0
        #: Snapshot path when the service checkpoints per tenant.
        self.checkpoint_path: Optional[str] = None
        # Warm-start prior stash: recovery must rebuild the strategy with
        # the *originally built* prior — the repository may have gained
        # sessions since, and a different prior would diverge the replay.
        self._prior_built = False
        self._stashed_prior = None

    @property
    def history(self):
        """The tenant session's live trial history (None before start)."""
        return None if self.session is None else self.session.history

    @property
    def virtual_now(self) -> float:
        """The tenant's position on the service's virtual clock."""
        if self.started_at is None:
            return 0.0
        wall = 0.0 if self.history is None else self.history.total_wall_clock_s
        return self.started_at + wall


@dataclass
class ServiceResult:
    """Outcome of one :meth:`TuningService.run` drain."""

    tenants: List[TenantHandle]
    makespan_s: float

    @property
    def completed(self) -> List[TenantHandle]:
        return [handle for handle in self.tenants if handle.state == "done"]

    @property
    def failed(self) -> List[TenantHandle]:
        return [handle for handle in self.tenants if handle.state == "failed"]

    def sessions_per_hour(self) -> float:
        """Completed sessions per hour of fleet virtual time."""
        if not self.completed or self.makespan_s <= 0:
            return 0.0
        return len(self.completed) / (self.makespan_s / 3600.0)


class _LedgerCallback(SessionCallback):
    """Accrues every recorded probe's machine cost into the service ledger."""

    def __init__(self, service: "TuningService") -> None:
        self._service = service

    def on_trial_end(self, trial) -> None:
        ledger = self._service._recorded_cost_by_shard
        ledger[trial.shard] = ledger.get(trial.shard, 0.0) + float(
            trial.measurement.probe_cost_s
        )


class TuningService:
    """Multiplexes N tenant tuning sessions over one fleet's capacity.

    Parameters
    ----------
    templates:
        The fleet shape (:class:`ShardTemplate` per shard); the aggregate
        capacity is the sum of template capacities.
    space:
        The configuration space every tenant searches.
    repository:
        Optional persistent :class:`~repro.core.transfer.HistoryRepository`.
        When set, completed tenant sessions are recorded into it
        (``record_sessions``) and new tenants are warm-started from their
        nearest prior workload (``warm_start``).
    warm_start / warm_n_initial:
        Warm-start switch, and the initial-design size a warm-started
        strategy is trimmed to (a tenant starting from an informative
        prior needs fewer space-filling probes; clamped to >= 2;
        ``None`` leaves the strategy's design untouched).
    record_sessions:
        Record each completed tenant's real (non-fantasy) successes into
        the repository, keyed by workload name and fingerprint.
    max_tenants:
        Admission cap on total submissions (``None`` = unlimited).
    scheduler_factory:
        Builds each tenant pool's private placement scheduler (default
        :class:`~repro.core.fleet.RoundRobinScheduler`).
    checkpoint_dir:
        When set, every tenant session checkpoints to
        ``<dir>/<tenant>.ckpt`` (see :mod:`repro.core.checkpoint`), and a
        tenant whose session *crashes* mid-run is restarted from its last
        checkpoint instead of being marked failed: its strategy is
        rebuilt with the originally-installed warm-start prior, its
        session replays the durable probe prefix (bit-identical, no
        machine time re-spent), its fleet lease is re-acquired at the
        next scheduling round, and every neighbouring tenant is
        unperturbed (private pools and RNG streams mean the interleaving
        order cannot leak across tenants).
    max_recoveries:
        Restart attempts per tenant before a crash is surfaced as a real
        failure — a deterministic strategy bug would otherwise crash
        again at the same trial forever.
    """

    def __init__(
        self,
        templates: Sequence[ShardTemplate],
        space: ConfigSpace,
        repository: Optional[HistoryRepository] = None,
        warm_start: bool = True,
        warm_n_initial: Optional[int] = 4,
        record_sessions: bool = True,
        max_tenants: Optional[int] = None,
        scheduler_factory: Optional[Callable[[], ShardScheduler]] = None,
        checkpoint_dir: Optional[str] = None,
        max_recoveries: int = 1,
    ) -> None:
        templates = list(templates)
        if not templates:
            raise ValueError("service needs at least one shard template")
        names = [template.name for template in templates]
        if len(set(names)) != len(names):
            raise ValueError(f"shard template names must be unique, got {names}")
        if max_tenants is not None and max_tenants < 1:
            raise ValueError("max_tenants must be >= 1 (or None)")
        self.templates = templates
        self.space = space
        self.repository = repository
        self.warm_start = warm_start
        self.warm_n_initial = warm_n_initial
        self.record_sessions = record_sessions
        self.max_tenants = max_tenants
        self.scheduler_factory = (
            scheduler_factory if scheduler_factory is not None else RoundRobinScheduler
        )
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        self.checkpoint_dir = checkpoint_dir
        self.max_recoveries = max_recoveries
        self.total_capacity = sum(template.capacity for template in templates)
        self._handles: List[TenantHandle] = []
        self._clock = 0.0
        self._recorded_cost_by_shard: Dict[Optional[str], float] = {}
        self._ledger_callback = _LedgerCallback(self)

    # -- admission ---------------------------------------------------------

    def submit(self, spec: TenantSpec) -> TenantHandle:
        """Admit a tenant (queued until capacity frees) or reject it.

        Rejection (:class:`AdmissionError`) is immediate and clean: a
        tenant whose *guarantee* cannot ever be met (more slots than the
        fleet has), an invalid spec, or a submission past ``max_tenants``.
        Aggregate oversubscription is not a rejection — the tenant queues
        and activates when enough guaranteed slots free up.
        """
        if not spec.name:
            raise AdmissionError("tenant name must be non-empty")
        if any(handle.spec.name == spec.name for handle in self._handles):
            raise AdmissionError(f"tenant name {spec.name!r} already submitted")
        if self.max_tenants is not None and len(self._handles) >= self.max_tenants:
            raise AdmissionError(
                f"tenant {spec.name!r} rejected: service is at its "
                f"max_tenants limit ({self.max_tenants})"
            )
        if spec.slots < 1:
            raise AdmissionError(f"tenant {spec.name!r}: slots must be >= 1")
        if spec.ceiling < spec.slots:
            raise AdmissionError(
                f"tenant {spec.name!r}: max_slots ({spec.max_slots}) is below "
                f"the guaranteed slots ({spec.slots})"
            )
        if spec.slots > self.total_capacity:
            raise AdmissionError(
                f"tenant {spec.name!r} rejected: demands {spec.slots} guaranteed "
                f"slots but the fleet has {self.total_capacity}"
            )
        if spec.weight <= 0:
            raise AdmissionError(f"tenant {spec.name!r}: weight must be positive")
        if spec.executor_mode not in EXECUTOR_MODES:
            raise AdmissionError(
                f"tenant {spec.name!r}: executor_mode must be one of "
                f"{EXECUTOR_MODES}, got {spec.executor_mode!r}"
            )
        handle = TenantHandle(spec, order=len(self._handles))
        self._handles.append(handle)
        return handle

    # -- tenant construction ----------------------------------------------

    def _build_strategy(self, handle: TenantHandle) -> SearchStrategy:
        """The tenant's strategy, warm-started from the repository if possible.

        The built prior (or the decision not to build one) is stashed on
        the handle: a recovery rebuild reuses the stash verbatim rather
        than querying the repository again — neighbours may have finished
        sessions in the meantime, and a different prior would diverge the
        checkpoint replay.
        """
        spec = handle.spec
        strategy = spec.strategy_factory()
        # Wrappers (e.g. StoppedStrategy) hold the real tuner as .inner;
        # warm-start the innermost strategy that accepts a prior mean.
        target = strategy
        while not hasattr(target, "prior_mean") and hasattr(target, "inner"):
            target = target.inner
        if handle._prior_built:
            prior = handle._stashed_prior
            if prior is None or not hasattr(target, "prior_mean"):
                return strategy
            target.prior_mean = prior
            if self.warm_n_initial is not None and hasattr(target, "n_initial"):
                target.n_initial = max(2, min(target.n_initial, self.warm_n_initial))
            return strategy
        handle._prior_built = True
        if (
            self.repository is None
            or not self.warm_start
            or spec.workload is None
            or not hasattr(target, "prior_mean")
            or len(self.repository) == 0
        ):
            return strategy
        fingerprint = workload_fingerprint(spec.workload)
        source = self.repository.nearest(fingerprint)
        if source is None:
            return strategy
        prior = build_prior(self.repository, source, self.space, seed=spec.seed)
        if prior is None:
            return strategy
        target.prior_mean = prior
        if self.warm_n_initial is not None and hasattr(target, "n_initial"):
            # An informative prior replaces most of the space-filling
            # design; keep >= 2 (the proposer's floor).
            target.n_initial = max(2, min(target.n_initial, self.warm_n_initial))
        handle.warm = True
        handle.mapped_from = source
        handle._stashed_prior = prior
        return strategy

    def _build_pool(self, spec: TenantSpec) -> EnvironmentPool:
        """The tenant's private fleet view: fresh envs, scheduler, RNGs."""
        shards = [
            EnvironmentShard(
                template.name,
                template.env_factory(spec, index),
                capacity=template.capacity,
                cost_multiplier=template.cost_multiplier,
            )
            for index, template in enumerate(self.templates)
        ]
        return EnvironmentPool(shards, scheduler=self.scheduler_factory())

    def _tenant_checkpoint(self, spec: TenantSpec) -> Optional[CheckpointConfig]:
        if self.checkpoint_dir is None:
            return None
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", spec.name)
        return CheckpointConfig(os.path.join(self.checkpoint_dir, f"{safe}.ckpt"))

    def _build_session(
        self,
        handle: TenantHandle,
        with_ledger: bool = True,
        resume: bool = False,
    ) -> TuningSession:
        spec = handle.spec
        handle.strategy = self._build_strategy(handle)
        handle.pool = self._build_pool(spec)
        if spec.executor_mode == "serial":
            executor = SerialExecutor(pool=handle.pool)
        else:
            executor = AsyncExecutor(pool=handle.pool)
        callbacks = list(spec.callbacks)
        if spec.detector_factory is not None:
            callbacks.append(spec.detector_factory())
        if with_ledger:
            callbacks.append(self._ledger_callback)
        session = TuningSession(handle.strategy, executor=executor, callbacks=callbacks)
        handle.session = session
        checkpoint = self._tenant_checkpoint(spec) if with_ledger else None
        if checkpoint is not None:
            handle.checkpoint_path = checkpoint.path
        if resume:
            if checkpoint is None:
                raise ValueError("resume requires a checkpoint_dir")
            session.restore(checkpoint, None, self.space)
        else:
            session.start(
                None, self.space, spec.budget, seed=spec.seed, checkpoint=checkpoint
            )
        return session

    # -- fair-share allocation --------------------------------------------

    def _allocation(self, active: Sequence[TenantHandle]) -> Dict[TenantHandle, int]:
        """Weighted fair-share slot widths for the active tenants.

        Invariants (pinned by ``tests/test_service.py``): every tenant
        gets at least its guarantee and at most its ceiling; the sum never
        exceeds the fleet capacity; spare slots are reclaimed
        work-conservingly — they stay idle only when every tenant is at
        its ceiling.  Spare slots go one at a time to the tenant with the
        highest weight-per-held-slot ratio (ties: earliest admission), a
        deterministic proportional-fairness rule.
        """
        allocation = {handle: handle.spec.slots for handle in active}
        spare = self.total_capacity - sum(allocation.values())
        while spare > 0:
            wanting = [
                handle for handle in active if allocation[handle] < handle.spec.ceiling
            ]
            if not wanting:
                break
            pick = max(
                wanting,
                key=lambda h: (h.spec.weight / (allocation[h] + 1), -h.order),
            )
            allocation[pick] += 1
            spare -= 1
        return allocation

    # -- the scheduling loop ----------------------------------------------

    def _active(self) -> List[TenantHandle]:
        return [handle for handle in self._handles if handle.state == "active"]

    def _activate_ready(self) -> None:
        """Start queued tenants whose guarantees fit the free capacity."""
        reserved = sum(handle.spec.slots for handle in self._active())
        for handle in self._handles:
            if handle.state != "queued":
                continue
            if reserved + handle.spec.slots > self.total_capacity:
                continue
            self._build_session(handle)
            handle.state = "active"
            handle.started_at = self._clock
            reserved += handle.spec.slots

    def _finalize(self, handle: TenantHandle) -> None:
        result = handle.session.finish()
        handle.result = result
        handle.finished_at = handle.started_at + result.history.total_wall_clock_s
        handle.state = "done"
        handle.pool.set_lease(0)
        self._clock = max(self._clock, handle.finished_at)
        self._record(handle, result)

    def _fail(self, handle: TenantHandle, error: BaseException) -> None:
        handle.error = error
        handle.state = "failed"
        handle.finished_at = handle.virtual_now
        handle.pool.set_lease(0)
        self._clock = max(self._clock, handle.finished_at)

    def _try_recover(self, handle: TenantHandle, error: BaseException) -> bool:
        """Restart a crashed tenant from its checkpoint, if possible.

        Returns True when the tenant is live again (state stays
        ``active``; the next scheduling round re-grants its lease).  The
        crashed session's recorded probe costs are rolled back from the
        service ledger first — the replay re-accrues them trial by trial,
        so without the rollback every recovery would double-count.
        """
        if self.checkpoint_dir is None or handle.recoveries >= self.max_recoveries:
            return False
        path = handle.checkpoint_path
        if path is None or not os.path.exists(path + ".wal"):
            return False
        crashed = handle.history
        old_session, old_strategy, old_pool = (
            handle.session,
            handle.strategy,
            handle.pool,
        )
        try:
            self._build_session(handle, resume=True)
        except Exception:  # noqa: BLE001 - surface the original crash instead
            handle.session = old_session
            handle.strategy = old_strategy
            handle.pool = old_pool
            return False
        # The rebuilt session is live: roll the crashed session's recorded
        # probe costs out of the ledger before the replay re-accrues them.
        if crashed is not None:
            for trial in crashed:
                cost = float(trial.measurement.probe_cost_s)
                remaining = self._recorded_cost_by_shard.get(trial.shard, 0.0) - cost
                self._recorded_cost_by_shard[trial.shard] = remaining
        handle.recoveries += 1
        return True

    def _record(self, handle: TenantHandle, result: TuningResult) -> None:
        spec = handle.spec
        if (
            self.repository is None
            or not self.record_sessions
            or spec.workload is None
        ):
            return
        observations = [
            (trial.config, trial.objective)
            for trial in result.history.successful()
            if trial.measurement.fidelity not in ("fantasy", "transfer")
        ]
        if len(observations) < 2:
            return
        self.repository.add_session(
            spec.workload.name,
            observations,
            fingerprint=workload_fingerprint(spec.workload),
            metadata={
                "tenant": spec.name,
                "seed": spec.seed,
                "trials": len(observations),
                "best_objective": result.best_objective,
                "warm": handle.warm,
                "mapped_from": handle.mapped_from,
            },
        )

    def run(self) -> ServiceResult:
        """Drain every submitted tenant and return the service outcome.

        The loop always steps the active tenant furthest behind on the
        virtual clock (ties: earliest admission), recomputing fair-share
        leases whenever the active set changes — the deterministic
        simulated equivalent of N concurrent sessions sharing the fleet.
        One tenant's failure marks it ``failed`` and frees its slots; the
        other tenants are untouched.
        """
        self._activate_ready()
        active = self._active()
        while active:
            allocation = self._allocation(active)
            for handle, width in allocation.items():
                handle.lease = width
                handle.pool.set_lease(width)
            handle = min(active, key=lambda h: (h.virtual_now, h.order))
            try:
                progressed = handle.session.step()
            except Exception as error:  # noqa: BLE001 - tenant isolation boundary
                if self._try_recover(handle, error):
                    # The tenant restarts from its checkpoint: history
                    # rebuilds from zero, so its virtual time is minimal
                    # and the scheduler fast-forwards it through the
                    # (free) replay before touching the other tenants.
                    active = self._active()
                    continue
                self._fail(handle, error)
                self._activate_ready()
                active = self._active()
                continue
            if not progressed:
                self._finalize(handle)
                self._activate_ready()
            active = self._active()
        done_times = [
            handle.finished_at
            for handle in self._handles
            if handle.finished_at is not None
        ]
        return ServiceResult(
            tenants=list(self._handles),
            makespan_s=max(done_times) if done_times else 0.0,
        )

    def run_standalone(self, spec: TenantSpec) -> TuningResult:
        """Run one tenant alone on the fleet (the isolation baseline).

        Builds exactly the pieces :meth:`submit` + :meth:`run` would build
        for this spec — same strategy factory, warm-start lookup against
        the repository's *current* state, private pool, executor, seed —
        and runs the session to completion at the allocation the tenant
        would receive with no contention (its ceiling, capped by the
        fleet).  A pinned-width tenant's concurrent trajectory is
        bit-identical to this baseline; nothing is recorded into the
        repository or the service ledger.
        """
        handle = TenantHandle(spec, order=-1)
        session = self._build_session(handle, with_ledger=False)
        handle.pool.set_lease(min(spec.ceiling, self.total_capacity))
        while session.step():
            pass
        return session.finish()

    # -- accounting --------------------------------------------------------

    def cost_by_shard(self) -> Dict[Optional[str], float]:
        """Machine seconds per shard name, aggregated over every tenant.

        Tenant histories itemise recorded *and* cancelled probe cost per
        shard, so the per-shard sums always equal the pool-level totals —
        the accounting invariant ``tests/test_service.py`` pins against
        :attr:`recorded_cost_by_shard` plus cancellations.
        """
        totals: Dict[Optional[str], float] = {}
        for handle in self._handles:
            history = handle.history
            if history is None:
                continue
            for shard, cost in history.cost_by_shard().items():
                totals[shard] = totals.get(shard, 0.0) + float(cost)
        return totals

    def total_cost_s(self) -> float:
        """Machine seconds across every tenant (recorded + cancelled)."""
        return sum(
            handle.history.total_cost_s
            for handle in self._handles
            if handle.history is not None
        )

    @property
    def recorded_cost_by_shard(self) -> Dict[Optional[str], float]:
        """The live ledger of *recorded* probe cost per shard (no cancellations)."""
        return dict(self._recorded_cost_by_shard)
