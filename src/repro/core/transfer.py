"""Cross-session transfer learning: workload repositories, mapping, priors.

OtterTune-style transfer (Van Aken et al., SIGMOD'17) lived inside the
baseline strategy (:mod:`repro.baselines.ottertune`); the tuning service
needs the same machinery independent of any one strategy, so it moved
here:

- :class:`WorkloadRepository` — in-memory store of past (config,
  normalised objective) observations keyed by workload name.  The exact
  class the OtterTune baseline has always used (the baseline re-exports
  it).
- :func:`landmark_set` / :func:`map_workload` / :func:`augment_history` —
  the landmark-probing mapping pipeline, extracted verbatim from the
  baseline: probe a few shared landmark configurations, compare their
  normalised responses against a quick GP prediction per stored workload,
  import the best match's observations as synthetic ``"transfer"``
  -fidelity measurements.
- :class:`HistoryRepository` — the *persistent* tier: completed sessions
  stored as JSON lines on disk (atomic tempfile+rename writes, the same
  discipline as the experiment cache), each keyed by a numeric workload
  fingerprint (:func:`workload_fingerprint`) so a new tenant can be
  matched to the nearest prior workload *before* spending any probes on
  landmarks.
- :class:`TransferPrior` / :func:`build_prior` — a deterministic
  normalised-response predictor fitted once to a mapped workload's stored
  observations; installed as a surrogate prior mean
  (:class:`~repro.core.gp.PriorMeanGP` via
  ``BayesianProposer(prior_mean=...)``) it warm-starts a new session's
  posterior from the repository instead of from flat.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.gp import GaussianProcess, GPFitError
from repro.core.kernels import make_kernel
from repro.core.trial import TrialHistory


class WorkloadRepository:
    """Past tuning observations, keyed by workload name.

    Observations are stored with objectives normalised to zero mean / unit
    variance per workload, so cross-workload comparison is scale-free.
    """

    def __init__(self) -> None:
        self._data: Dict[str, List[Tuple[ConfigDict, float]]] = {}

    def add_session(
        self, workload_name: str, observations: Sequence[Tuple[ConfigDict, float]]
    ) -> None:
        """Store a finished tuning session's (config, objective) pairs."""
        if len(observations) < 2:
            raise ValueError("need at least 2 observations to normalise")
        values = np.array([obj for _, obj in observations], dtype=float)
        mean, std = float(values.mean()), float(values.std())
        if std <= 0:
            std = 1.0
        normalised = [
            (dict(config), (obj - mean) / std) for config, obj in observations
        ]
        self._data.setdefault(workload_name, []).extend(normalised)

    def workloads(self) -> List[str]:
        """Names of workloads with stored sessions."""
        return sorted(self._data)

    def observations(self, workload_name: str) -> List[Tuple[ConfigDict, float]]:
        """Stored (config, normalised objective) pairs for a workload."""
        return list(self._data.get(workload_name, []))

    def __len__(self) -> int:
        return len(self._data)


# -- landmark mapping (extracted from the OtterTune baseline) ---------------


def landmark_set(
    space: ConfigSpace, n_landmarks: int, seed: int
) -> List[ConfigDict]:
    """The deterministic landmark configurations for a session seed.

    Every repository entry is assumed to have measured (or to be able to
    predict) these configurations; similarity between workloads is judged
    on their responses here.
    """
    rng = np.random.default_rng(seed + 101)
    return space.latin_hypercube(rng, n_landmarks)


def map_workload(
    repository,
    history: TrialHistory,
    space: ConfigSpace,
    n_landmarks: int,
    seed: int,
) -> Optional[str]:
    """The repository workload whose landmark responses match the target's.

    ``repository`` is anything with the :class:`WorkloadRepository`
    read surface (``workloads()`` / ``observations()``).  Returns ``None``
    while fewer than two landmark probes have succeeded, or when no stored
    workload has enough observations to compare against.
    """
    landmark_trials = [t for t in history.trials[:n_landmarks] if t.ok]
    if len(landmark_trials) < 2:
        return None
    target = np.array([t.objective for t in landmark_trials])
    target = (target - target.mean()) / (target.std() if target.std() > 0 else 1.0)
    target_x = [space.encode(t.config) for t in landmark_trials]

    best_name, best_dist = None, np.inf
    for name in repository.workloads():
        observations = repository.observations(name)
        if len(observations) < 3:
            continue
        # Predict the prior workload's (normalised) response at the
        # landmark configs with a quick GP, then compare shapes.
        x = np.array([space.encode(c) for c, _ in observations])
        y = np.array([v for _, v in observations])
        try:
            surrogate = GaussianProcess(
                kernel=make_kernel("matern52", space.dims), seed=seed
            ).fit(x, y, optimize_hypers=False)
            mu, _ = surrogate.predict(np.array(target_x))
        except GPFitError:
            continue
        dist = float(np.linalg.norm(mu - target))
        if dist < best_dist:
            best_name, best_dist = name, dist
    return best_name


def augment_history(
    history: TrialHistory,
    space: ConfigSpace,
    repository,
    workload_name: Optional[str],
) -> TrialHistory:
    """History + rescaled observations from the mapped workload.

    The mapped workload's normalised observations are imported as
    synthetic ``"transfer"``-fidelity measurements rescaled to the
    target's observed objective range; historical data costs nothing now
    (``probe_cost_s=0.0``).  With no mapping (or fewer than two target
    successes to rescale against) the history is returned untouched.
    """
    if workload_name is None:
        return history
    successes = history.successful()
    if len(successes) < 2:
        return history
    values = np.array([t.objective for t in successes])
    mean, std = float(values.mean()), float(values.std())
    if std <= 0:
        std = abs(mean) * 0.1 + 1.0

    from repro.mlsim import Measurement
    from repro.mlsim.config import TrainingConfig

    augmented = TrialHistory()
    for trial in history.trials:
        augmented.record(trial.config, trial.measurement)
    for config, norm_obj in repository.observations(workload_name):
        if not space.is_valid(config):
            continue
        synthetic = Measurement(
            config=TrainingConfig.from_dict(config),
            ok=True,
            fidelity="transfer",
            objective=mean + norm_obj * std,
            probe_cost_s=0.0,  # historical data costs nothing now
        )
        augmented.record(config, synthetic)
    return augmented


# -- workload fingerprints ---------------------------------------------------


def workload_fingerprint(workload) -> Dict[str, float]:
    """Numeric features identifying a workload for nearest-prior matching.

    The features are the static model/dataset characteristics that drive
    the simulator's response surface — compute per sample, model size,
    activation traffic, the compute/communication ratio the paper calls
    the tuning fingerprint, and the dataset shape.  All strictly positive
    quantities are compared in log space by :meth:`HistoryRepository.nearest`,
    so fingerprints spanning orders of magnitude still rank sensibly.
    """
    model, dataset = workload.model, workload.dataset
    return {
        "flops_per_sample": float(model.flops_per_sample),
        "param_bytes": float(model.param_bytes),
        "activation_bytes_per_sample": float(model.activation_bytes_per_sample),
        "compute_comm_ratio": float(workload.compute_comm_ratio),
        "num_samples": float(dataset.num_samples),
        "bytes_per_sample": float(dataset.bytes_per_sample),
        "sample_cost_cv": float(dataset.sample_cost_cv),
    }


def _feature_value(value: float) -> float:
    """Distance-space transform: log10 for positive values, linear near 0."""
    value = float(value)
    if value > 1e-9:
        return math.log10(value)
    return value


# -- the persistent tier -----------------------------------------------------


def _json_default(value):
    """Serialize numpy scalars the way the experiment cache does."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


class HistoryRepository:
    """Completed tuning sessions persisted as JSON lines on disk.

    One line per stored session: the workload name, its numeric
    fingerprint, the raw (config, objective) observations, and free-form
    metadata.  Objectives are stored *raw* and normalised on read (the
    same per-session zero-mean/unit-variance convention as
    :class:`WorkloadRepository`), so the file is also useful to offline
    analysis at its original scale.

    Writes are atomic — the whole file is rewritten to a temp file in the
    same directory and swapped in with ``os.replace`` (the experiment
    cache's discipline), so a crash mid-write can never leave a truncated
    repository behind.  Loading tolerates a missing file (an empty
    repository); corrupt lines (external edits, torn copies) are
    *quarantined* rather than fatal — each bad line is appended to a
    ``<path>.quarantine`` sidecar and skipped, with one warning naming
    the first bad ``file:line`` and the count, so one damaged record
    cannot take every future warm-started tenant down with it.  Pass
    ``strict=True`` to restore the old fail-loud behaviour.
    """

    def __init__(self, path: str, strict: bool = False) -> None:
        self.path = path
        self.strict = strict
        self.quarantined_lines = 0
        self._entries: List[dict] = []
        if os.path.exists(path):
            bad: List[Tuple[int, str]] = []
            with open(path) as handle:
                for line_number, line in enumerate(handle, start=1):
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        entry = json.loads(stripped)
                        if not isinstance(entry, dict):
                            raise ValueError("repository line is not an object")
                    except ValueError as exc:
                        if strict:
                            raise ValueError(
                                f"{path}:{line_number}: corrupt repository "
                                f"line ({exc})"
                            ) from None
                        bad.append((line_number, stripped))
                        continue
                    self._entries.append(entry)
            if bad:
                with open(self.quarantine_path, "a") as sidecar:
                    for _, stripped in bad:
                        sidecar.write(stripped + "\n")
                self.quarantined_lines = len(bad)
                warnings.warn(
                    f"{path}:{bad[0][0]}: quarantined {len(bad)} corrupt "
                    f"repository line(s) to {self.quarantine_path}; "
                    f"continuing with {len(self._entries)} intact session(s)",
                    stacklevel=2,
                )

    @property
    def quarantine_path(self) -> str:
        """Sidecar file corrupt lines are moved to."""
        return self.path + ".quarantine"

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".history-tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                for entry in self._entries:
                    handle.write(json.dumps(entry, default=_json_default) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def add_session(
        self,
        workload_name: str,
        observations: Sequence[Tuple[ConfigDict, float]],
        fingerprint: Optional[Dict[str, float]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        """Persist a finished session's raw (config, objective) pairs."""
        if len(observations) < 2:
            raise ValueError("need at least 2 observations to normalise")
        entry = {
            "workload": str(workload_name),
            "fingerprint": dict(fingerprint) if fingerprint else {},
            "observations": [
                [dict(config), float(objective)] for config, objective in observations
            ],
            "metadata": dict(metadata) if metadata else {},
        }
        self._entries.append(entry)
        self._flush()

    def sessions(self) -> List[dict]:
        """Stored session records, in insertion order (copies)."""
        return [dict(entry) for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def workloads(self) -> List[str]:
        """Names of workloads with stored sessions."""
        return sorted({entry["workload"] for entry in self._entries})

    def observations(self, workload_name: str) -> List[Tuple[ConfigDict, float]]:
        """(config, normalised objective) pairs for a workload.

        Normalisation is per stored session (each session's objectives get
        zero mean / unit variance before merging), matching what
        :meth:`WorkloadRepository.add_session` would have produced for the
        same sequence of sessions.
        """
        pairs: List[Tuple[ConfigDict, float]] = []
        for entry in self._entries:
            if entry["workload"] != workload_name:
                continue
            values = np.array(
                [objective for _, objective in entry["observations"]], dtype=float
            )
            mean, std = float(values.mean()), float(values.std())
            if std <= 0:
                std = 1.0
            pairs.extend(
                (dict(config), (float(objective) - mean) / std)
                for config, objective in entry["observations"]
            )
        return pairs

    def fingerprint(self, workload_name: str) -> Dict[str, float]:
        """The stored fingerprint for a workload (feature-wise mean)."""
        rows = [
            entry["fingerprint"]
            for entry in self._entries
            if entry["workload"] == workload_name and entry["fingerprint"]
        ]
        if not rows:
            return {}
        keys = sorted({key for row in rows for key in row})
        return {
            key: float(np.mean([row[key] for row in rows if key in row]))
            for key in keys
        }

    def nearest(
        self,
        fingerprint: Dict[str, float],
        exclude: Sequence[str] = (),
    ) -> Optional[str]:
        """The stored workload with the closest fingerprint, or ``None``.

        Distance is Euclidean over features shared by the query and the
        candidate, each transformed to log space (positive values) and
        z-scored across the stored workloads so no single
        order-of-magnitude feature dominates.  Ties break by workload
        name; workloads named in ``exclude`` are skipped.
        """
        if not fingerprint:
            return None
        excluded = set(exclude)
        candidates = {
            name: self.fingerprint(name)
            for name in self.workloads()
            if name not in excluded
        }
        candidates = {name: fp for name, fp in candidates.items() if fp}
        if not candidates:
            return None
        features = sorted(
            set(fingerprint)
            & {key for fp in candidates.values() for key in fp}
        )
        if not features:
            return None
        # Per-feature z-normalisation over the stored population plus the
        # query, in log-distance space.
        table = {
            name: [_feature_value(fp.get(key, 0.0)) for key in features]
            for name, fp in candidates.items()
        }
        query = [_feature_value(fingerprint[key]) for key in features]
        matrix = np.array(list(table.values()) + [query], dtype=float)
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std <= 0] = 1.0
        query_z = (np.array(query) - mean) / std
        best_name, best_dist = None, np.inf
        for name in sorted(table):
            row_z = (np.array(table[name]) - mean) / std
            dist = float(np.linalg.norm(row_z - query_z))
            if dist < best_dist:
                best_name, best_dist = name, dist
        return best_name

    def to_workload_repository(self) -> WorkloadRepository:
        """An in-memory :class:`WorkloadRepository` view of the store.

        Replays every persisted session through
        :meth:`WorkloadRepository.add_session`, so landmark mapping code
        written against the in-memory class works on the persistent store
        unchanged.
        """
        repository = WorkloadRepository()
        for entry in self._entries:
            repository.add_session(
                entry["workload"],
                [(config, objective) for config, objective in entry["observations"]],
            )
        return repository


# -- transfer priors ---------------------------------------------------------


class TransferPrior:
    """A fixed normalised-response predictor over a mapped workload.

    Fitted once at construction to a prior workload's (config, normalised
    objective) observations; thereafter a pure deterministic function of
    the encoded input, safe to install as a surrogate prior mean for a
    whole session (:class:`~repro.core.gp.PriorMeanGP` rescales its
    normalised output to the target's observed objective range at every
    surrogate fit).
    """

    def __init__(
        self,
        space: ConfigSpace,
        observations: Sequence[Tuple[ConfigDict, float]],
        seed: int = 0,
        kernel: str = "matern52",
    ) -> None:
        if len(observations) < 3:
            raise ValueError("need at least 3 observations to fit a prior")
        x = np.array([space.encode(config) for config, _ in observations])
        z = np.array([value for _, value in observations], dtype=float)
        self.source: Optional[str] = None
        self.num_observations = int(z.shape[0])
        self._gp = GaussianProcess(kernel=make_kernel(kernel, space.dims), seed=seed)
        self._gp.fit(x, z, optimize_hypers=True)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Predicted normalised response at encoded rows ``x``."""
        return self._gp.predict_mean(np.atleast_2d(np.asarray(x, dtype=float)))


def _config_fits_space(space: ConfigSpace, config: ConfigDict) -> bool:
    """Whether a stored config belongs to this space.

    A persistent repository outlives the space it was recorded under;
    validity checks on a config with missing or foreign knobs raise
    rather than return False, so treat any such config as non-matching.
    """
    try:
        return bool(space.is_valid(config))
    except (KeyError, TypeError, ValueError):
        return False


def build_prior(
    repository,
    workload_name: str,
    space: ConfigSpace,
    seed: int = 0,
    kernel: str = "matern52",
) -> Optional[TransferPrior]:
    """A :class:`TransferPrior` over a repository workload, or ``None``.

    ``repository`` is anything with the :class:`WorkloadRepository` read
    surface.  Returns ``None`` when the workload has too few valid
    observations or the prior GP cannot be fitted (degenerate data) —
    callers fall back to a cold start.
    """
    observations = [
        (config, value)
        for config, value in repository.observations(workload_name)
        if _config_fits_space(space, config)
    ]
    if len(observations) < 3:
        return None
    try:
        prior = TransferPrior(space, observations, seed=seed, kernel=kernel)
    except (GPFitError, ValueError):
        return None
    prior.source = workload_name
    return prior
