"""CherryPick-style Bayesian optimisation baseline (Alipourfard et al., NSDI'17).

CherryPick tunes cloud configurations with a plain-EI GP and a confidence-
based stopping rule: stop once the best candidate's expected improvement
falls below a fraction of the incumbent.  Compared to the paper's tuner it
lacks the cost-aware acquisition and early termination — exactly the deltas
the ablations isolate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.bo import BayesianProposer
from repro.core.parallel import propose_async as constant_liar_async
from repro.core.parallel import propose_batch as constant_liar_batch
from repro.core.strategy import SearchStrategy
from repro.core.trial import TrialHistory


class CherryPick(SearchStrategy):
    """GP + plain EI + EI-threshold stopping, no early termination."""

    name = "cherrypick"

    def __init__(
        self,
        n_initial: int = 8,
        ei_stop_fraction: float = 0.02,
        min_trials: int = 12,
        n_candidates: int = 512,
        fit_workers: int = 1,
        sparse_threshold: Optional[int] = 512,
        max_inducing: int = 256,
        prior_mean=None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= ei_stop_fraction < 1.0:
            raise ValueError("ei_stop_fraction must be in [0, 1)")
        if fit_workers < 1:
            raise ValueError("fit_workers must be >= 1")
        self.n_initial = n_initial
        self.ei_stop_fraction = ei_stop_fraction
        self.min_trials = min_trials
        self.n_candidates = n_candidates
        self.fit_workers = fit_workers
        self.sparse_threshold = sparse_threshold
        self.max_inducing = max_inducing
        self.prior_mean = prior_mean
        self.seed = seed
        self._proposer: Optional[BayesianProposer] = None
        self._stopped = False

    def reset(self) -> None:
        self._proposer = None
        self._stopped = False

    def _ensure_proposer(self, space: ConfigSpace) -> BayesianProposer:
        if self._proposer is None or self._proposer.space is not space:
            self._proposer = BayesianProposer(
                space,
                acquisition="ei",
                n_initial=self.n_initial,
                n_candidates=self.n_candidates,
                fit_workers=self.fit_workers,
                sparse_threshold=self.sparse_threshold,
                max_inducing=self.max_inducing,
                prior_mean=self.prior_mean,
                seed=self.seed,
            )
        return self._proposer

    def propose(
        self, history: TrialHistory, space: ConfigSpace, rng: np.random.Generator
    ) -> ConfigDict:
        config = self._ensure_proposer(space).propose(history, rng)
        self._maybe_stop(history)
        return config

    def propose_batch(
        self,
        history: TrialHistory,
        space: ConfigSpace,
        rng: np.random.Generator,
        k: int,
        shards=None,
    ) -> List[ConfigDict]:
        """Constant-liar batch, same as the paper's tuner uses.

        The EI-threshold stopping rule still applies: the check runs on
        the last (fantasy-extended) fit, so a parallel session stops at
        the same convergence signal a serial one would.  On a fleet, each
        member's fantasy lies with its own shard's probe speed.
        """
        batch = constant_liar_batch(
            self._ensure_proposer(space), history, rng, k, shards=shards
        )
        self._maybe_stop(history)
        return batch

    def propose_async(
        self,
        history: TrialHistory,
        pending,
        space: ConfigSpace,
        rng: np.random.Generator,
        shard=None,
    ) -> ConfigDict:
        """Constant-liar single proposal over in-flight probes.

        The EI-threshold check runs on the fantasy-extended fit, so an
        asynchronous session converges on the same signal as a serial one.
        On a fleet, the fantasies lie with the target shard's probe speed.
        """
        config = constant_liar_async(
            self._ensure_proposer(space),
            history,
            pending,
            rng,
            cost_scale=shard.cost_multiplier if shard is not None else 1.0,
        )
        self._maybe_stop(history)
        return config

    def _maybe_stop(self, history: TrialHistory) -> None:
        if len(history) < self.min_trials:
            return
        diagnostics = self._proposer.last_fit_diagnostics
        if not diagnostics:
            return
        incumbent = diagnostics.get("incumbent")
        acq = diagnostics.get("acquisition_value")
        if incumbent is None or acq is None or incumbent == 0:
            return
        if acq < self.ei_stop_fraction * abs(incumbent):
            self._stopped = True

    def finished(self, history: TrialHistory, space: ConfigSpace) -> bool:
        return self._stopped
