"""OtterTune-style baseline: GP tuning with workload mapping (SIGMOD'17).

OtterTune accelerates tuning of a new workload by *mapping* it onto the most
similar previously-tuned workload and seeding the surrogate with that
workload's observations.  The adaptation here:

1. a :class:`WorkloadRepository` stores (config, normalised objective)
   observations from past tuning sessions, keyed by workload name;
2. when tuning a new workload, the first few probes are *landmark*
   configurations that every repository entry has also measured;
3. similarity = Euclidean distance between normalised landmark responses;
4. the best-matching workload's observations are imported (rescaled to the
   target's observed range) as extra GP training data with inflated noise.

The warm-start ablation (A3) compares this against cold-start BO.

The repository/landmark/mapping machinery itself lives in
:mod:`repro.core.transfer` (the tuning service reuses it for persistent
cross-session warm starts); this module is the strategy-shaped shim over
it, behaviour-identical to when the code lived here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.bo import BayesianProposer
from repro.core.transfer import (
    WorkloadRepository,
    augment_history,
    landmark_set,
    map_workload,
)
from repro.core.strategy import SearchStrategy
from repro.core.trial import TrialHistory

__all__ = ["OtterTuneStyle", "WorkloadRepository"]


class OtterTuneStyle(SearchStrategy):
    """GP tuning warm-started by workload mapping."""

    name = "ottertune"

    def __init__(
        self,
        repository: Optional[WorkloadRepository] = None,
        n_landmarks: int = 4,
        n_initial: int = 6,
        transfer_noise_inflation: float = 4.0,
        n_candidates: int = 512,
        seed: int = 0,
    ) -> None:
        if n_landmarks < 2:
            raise ValueError("n_landmarks must be >= 2")
        self.repository = repository or WorkloadRepository()
        self.n_landmarks = n_landmarks
        self.n_initial = n_initial
        self.transfer_noise_inflation = transfer_noise_inflation
        self.n_candidates = n_candidates
        self.seed = seed
        self._landmarks: Optional[List[ConfigDict]] = None
        self.mapped_workload: Optional[str] = None

    def reset(self) -> None:
        """Clear per-session state; the cross-session repository is kept."""
        self._landmarks = None
        self.mapped_workload = None

    # -- landmark probing and mapping ------------------------------------

    def _landmark_set(self, space: ConfigSpace) -> List[ConfigDict]:
        if self._landmarks is None:
            self._landmarks = landmark_set(space, self.n_landmarks, self.seed)
        return self._landmarks

    def _map_workload(self, history: TrialHistory, space: ConfigSpace) -> None:
        """Pick the repository workload whose landmark responses match."""
        if self.mapped_workload is not None or not len(self.repository):
            return
        self.mapped_workload = map_workload(
            self.repository, history, space, self.n_landmarks, self.seed
        )

    # -- proposals ---------------------------------------------------------

    def propose(
        self, history: TrialHistory, space: ConfigSpace, rng: np.random.Generator
    ) -> ConfigDict:
        landmarks = self._landmark_set(space)
        if len(history) < len(landmarks):
            return dict(landmarks[len(history)])
        self._map_workload(history, space)
        proposer = BayesianProposer(
            space,
            acquisition="ei",
            n_initial=max(2, self.n_initial - len(landmarks)),
            n_candidates=self.n_candidates,
            seed=self.seed,
        )
        augmented = self._augment_history(history, space)
        return proposer.propose(augmented, rng)

    def _augment_history(
        self, history: TrialHistory, space: ConfigSpace
    ) -> TrialHistory:
        """History + rescaled observations from the mapped workload."""
        return augment_history(history, space, self.repository, self.mapped_workload)
