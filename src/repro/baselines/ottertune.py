"""OtterTune-style baseline: GP tuning with workload mapping (SIGMOD'17).

OtterTune accelerates tuning of a new workload by *mapping* it onto the most
similar previously-tuned workload and seeding the surrogate with that
workload's observations.  The adaptation here:

1. a :class:`WorkloadRepository` stores (config, normalised objective)
   observations from past tuning sessions, keyed by workload name;
2. when tuning a new workload, the first few probes are *landmark*
   configurations that every repository entry has also measured;
3. similarity = Euclidean distance between normalised landmark responses;
4. the best-matching workload's observations are imported (rescaled to the
   target's observed range) as extra GP training data with inflated noise.

The warm-start ablation (A3) compares this against cold-start BO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.configspace import ConfigDict, ConfigSpace
from repro.core.bo import BayesianProposer
from repro.core.gp import GaussianProcess, GPFitError
from repro.core.kernels import make_kernel
from repro.core.strategy import SearchStrategy
from repro.core.trial import TrialHistory


class WorkloadRepository:
    """Past tuning observations, keyed by workload name.

    Observations are stored with objectives normalised to zero mean / unit
    variance per workload, so cross-workload comparison is scale-free.
    """

    def __init__(self) -> None:
        self._data: Dict[str, List[Tuple[ConfigDict, float]]] = {}

    def add_session(
        self, workload_name: str, observations: Sequence[Tuple[ConfigDict, float]]
    ) -> None:
        """Store a finished tuning session's (config, objective) pairs."""
        if len(observations) < 2:
            raise ValueError("need at least 2 observations to normalise")
        values = np.array([obj for _, obj in observations], dtype=float)
        mean, std = float(values.mean()), float(values.std())
        if std <= 0:
            std = 1.0
        normalised = [
            (dict(config), (obj - mean) / std) for config, obj in observations
        ]
        self._data.setdefault(workload_name, []).extend(normalised)

    def workloads(self) -> List[str]:
        """Names of workloads with stored sessions."""
        return sorted(self._data)

    def observations(self, workload_name: str) -> List[Tuple[ConfigDict, float]]:
        """Stored (config, normalised objective) pairs for a workload."""
        return list(self._data.get(workload_name, []))

    def __len__(self) -> int:
        return len(self._data)


class OtterTuneStyle(SearchStrategy):
    """GP tuning warm-started by workload mapping."""

    name = "ottertune"

    def __init__(
        self,
        repository: Optional[WorkloadRepository] = None,
        n_landmarks: int = 4,
        n_initial: int = 6,
        transfer_noise_inflation: float = 4.0,
        n_candidates: int = 512,
        seed: int = 0,
    ) -> None:
        if n_landmarks < 2:
            raise ValueError("n_landmarks must be >= 2")
        self.repository = repository or WorkloadRepository()
        self.n_landmarks = n_landmarks
        self.n_initial = n_initial
        self.transfer_noise_inflation = transfer_noise_inflation
        self.n_candidates = n_candidates
        self.seed = seed
        self._landmarks: Optional[List[ConfigDict]] = None
        self.mapped_workload: Optional[str] = None

    def reset(self) -> None:
        """Clear per-session state; the cross-session repository is kept."""
        self._landmarks = None
        self.mapped_workload = None

    # -- landmark probing and mapping ------------------------------------

    def _landmark_set(self, space: ConfigSpace) -> List[ConfigDict]:
        if self._landmarks is None:
            rng = np.random.default_rng(self.seed + 101)
            self._landmarks = space.latin_hypercube(rng, self.n_landmarks)
        return self._landmarks

    def _map_workload(self, history: TrialHistory, space: ConfigSpace) -> None:
        """Pick the repository workload whose landmark responses match."""
        if self.mapped_workload is not None or not len(self.repository):
            return
        landmark_trials = [t for t in history.trials[: self.n_landmarks] if t.ok]
        if len(landmark_trials) < 2:
            return
        target = np.array([t.objective for t in landmark_trials])
        target = (target - target.mean()) / (target.std() if target.std() > 0 else 1.0)
        target_x = [space.encode(t.config) for t in landmark_trials]

        best_name, best_dist = None, np.inf
        for name in self.repository.workloads():
            observations = self.repository.observations(name)
            if len(observations) < 3:
                continue
            # Predict the prior workload's (normalised) response at the
            # landmark configs with a quick GP, then compare shapes.
            x = np.array([space.encode(c) for c, _ in observations])
            y = np.array([v for _, v in observations])
            try:
                surrogate = GaussianProcess(
                    kernel=make_kernel("matern52", space.dims), seed=self.seed
                ).fit(x, y, optimize_hypers=False)
                mu, _ = surrogate.predict(np.array(target_x))
            except GPFitError:
                continue
            dist = float(np.linalg.norm(mu - target))
            if dist < best_dist:
                best_name, best_dist = name, dist
        self.mapped_workload = best_name

    # -- proposals ---------------------------------------------------------

    def propose(
        self, history: TrialHistory, space: ConfigSpace, rng: np.random.Generator
    ) -> ConfigDict:
        landmarks = self._landmark_set(space)
        if len(history) < len(landmarks):
            return dict(landmarks[len(history)])
        self._map_workload(history, space)
        proposer = BayesianProposer(
            space,
            acquisition="ei",
            n_initial=max(2, self.n_initial - len(landmarks)),
            n_candidates=self.n_candidates,
            seed=self.seed,
        )
        augmented = self._augment_history(history, space)
        return proposer.propose(augmented, rng)

    def _augment_history(
        self, history: TrialHistory, space: ConfigSpace
    ) -> TrialHistory:
        """History + rescaled observations from the mapped workload."""
        if self.mapped_workload is None:
            return history
        successes = history.successful()
        if len(successes) < 2:
            return history
        values = np.array([t.objective for t in successes])
        mean, std = float(values.mean()), float(values.std())
        if std <= 0:
            std = abs(mean) * 0.1 + 1.0

        from repro.mlsim import Measurement
        from repro.mlsim.config import TrainingConfig

        augmented = TrialHistory()
        for trial in history.trials:
            augmented.record(trial.config, trial.measurement)
        for config, norm_obj in self.repository.observations(self.mapped_workload):
            if not space.is_valid(config):
                continue
            synthetic = Measurement(
                config=TrainingConfig.from_dict(config),
                ok=True,
                fidelity="transfer",
                objective=mean + norm_obj * std,
                probe_cost_s=0.0,  # historical data costs nothing now
            )
            augmented.record(config, synthetic)
        return augmented
